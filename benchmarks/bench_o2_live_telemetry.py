"""O2 — live telemetry overhead: window + SLO + sampler + one subscriber.

Claims (live telemetry subsystem, this PR's tentpole):

1. **Identity** — the E1 all-sources workload served through
   :class:`~repro.service.MixingService` answers bitwise identically
   with the full live-telemetry stack enabled (60×1 s rolling window,
   SLO engine, runtime resource sampler, and one real WebSocket
   subscriber on ``/v1/debug/stream``) and with all of it disabled
   (``live_buckets=0``).  The window records on the completion path and
   the stream only *reads* — neither ever enters the computation.
2. **Overhead** — the enabled stack costs **< 3 %** wall clock against
   the disabled path on the same workload, timed min-of-``2·REPEATS``
   with alternating pair order (same protocol as the O1 flight-recorder
   gate: alternation cancels drift bias, the minimum shrugs scheduler
   spikes).  The subscriber is live *while the queries run* — the gate
   prices the telemetry an operator would actually have open.
3. **Coverage** — the paid-for telemetry exists: the window holds one
   observation per query with interpolated quantiles, the SLO verdict
   evaluates over real traffic, the sampler has published runtime
   gauges, and the subscriber received at least one versioned frame.
4. **Perf trajectory** — the run distills into a history entry
   (``results/history/o2_live.jsonl``) that the regression comparator
   must accept against itself — the invariant CI's
   ``tools/bench_track.py check`` builds on.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance;
the identity and overhead gates run everywhere.
"""

import asyncio
import hashlib
import pathlib
import time

from repro.engine import batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import SLO, BenchReporter
from repro.obs.export import TELEMETRY_VERSION
from repro.obs.history import append_entry, compare, extract_entry
from repro.service import GraphRegistry, MixingQuery, MixingService
from repro.service.wire import WireServer, stream_telemetry
from repro.utils import format_table

BETA = 4
REPEATS = 3
OVERHEAD_GATE = 0.03

HISTORY_DIR = pathlib.Path(__file__).parent / "results" / "history"


async def _drain_stream(server, frames):
    """One live subscriber: consume pushed frames for as long as the
    serving run lasts, collecting them into ``frames``."""
    async for frame in stream_telemetry(
        server.host, server.port, interval=0.1
    ):
        frames.append(frame)


def serve_all_sources(g, *, telemetry: bool):
    """Answer the all-sources E1 workload through a fresh MixingService
    behind a WireServer (cache off, immediate flush — every query costs
    its own solve).  ``telemetry=True`` turns on the full live stack —
    window, SLO engine, resource sampler — and keeps one WebSocket
    stream subscriber attached for the duration; ``False`` disables all
    of it.  Returns (results, closed service, received frames)."""

    async def main():
        reg = GraphRegistry()
        reg.register("g", g)
        kw = dict(
            registry=reg, window=0.0, cache_size=0, flight_capacity=0
        )
        if telemetry:
            kw.update(
                live_buckets=60,
                sampler_interval=0.25,
                slo=SLO(target_latency=60.0, availability=0.5),
            )
        else:
            kw["live_buckets"] = 0
        frames = []
        async with MixingService(**kw) as svc:
            async with WireServer(svc) as server:
                sub = None
                if telemetry:
                    sub = asyncio.ensure_future(
                        _drain_stream(server, frames)
                    )
                results = [
                    await svc.submit(MixingQuery("g", s, beta=BETA))
                    for s in range(g.n)
                ]
                if sub is not None:
                    sub.cancel()
                    try:
                        await sub
                    except asyncio.CancelledError:
                        pass
        return results, svc, frames

    return asyncio.run(main())


def test_o2_live_telemetry_overhead(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    g = random_regular(n, d, seed=1)
    rep = BenchReporter("o2_live")
    direct = batched_local_mixing_times(g, BETA)

    serve_all_sources(g, telemetry=False)  # warm-up: caches, pools

    # Same protocol as the O1 flight gate: alternating pair order
    # cancels slow drift, min-of-N shrugs scheduler spikes.
    repeats = 2 * REPEATS
    res_on = res_off = svc_on = frames_on = None
    for i in range(repeats):
        modes = [("off", False), ("on", True)]
        if i % 2:
            modes.reverse()
        for label, enabled in modes:
            with rep.section(f"live_{label}:rep{i}"):
                res, svc, frames = serve_all_sources(g, telemetry=enabled)
            if enabled:
                res_on, svc_on, frames_on = res, svc, frames
            else:
                res_off = res
    t_off = min(rep.seconds(f"live_off:rep{i}") for i in range(repeats))
    t_on = min(rep.seconds(f"live_on:rep{i}") for i in range(repeats))

    # Identity: live telemetry is a pure observer — on, off, and the
    # direct engine call all agree bitwise.
    assert res_on == res_off == direct, (
        "results diverged between live telemetry on / off / direct"
    )

    overhead = t_on / t_off - 1.0
    assert overhead < OVERHEAD_GATE, (
        f"live telemetry overhead {overhead:+.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate (off {t_off:.3f}s, on {t_on:.3f}s, "
        f"min of {repeats})"
    )

    # Coverage: the paid-for telemetry exists.
    window = svc_on.live.snapshot()
    assert window["total"] == g.n  # one observation per query, lifetime
    assert window["quantiles"]["p50"] is not None
    verdict = svc_on.slo_engine.evaluate()
    assert verdict.status == "ok"  # generous SLO: healthy traffic
    sampler = svc_on.sampler.values()
    assert sampler["rss_bytes"] > 0
    assert "repro_runtime_coalescer_depth" in sampler
    assert frames_on, "the stream subscriber received no frames"
    assert all(f["v"] == TELEMETRY_VERSION for f in frames_on)
    assert frames_on[-1]["gauges"]["stream_subscribers"] == 1

    # Perf trajectory: distill this run into a history entry and require
    # the comparator to accept it against itself.
    digest = hashlib.blake2b(
        repr(direct).encode(), digest_size=8
    ).hexdigest()
    rep.record_identity(
        result_digest=digest,
        n_queries=g.n,
        window_total=window["total"],
    )
    entry = extract_entry(
        rep.snapshot(), quick=quick_mode, recorded_at=time.time()
    )
    append_entry(str(HISTORY_DIR), entry)
    assert compare(entry, [entry]) == []

    table = format_table(
        ["mode", f"wall s (min of {repeats})", "overhead", "frames"],
        [
            ["telemetry off", f"{t_off:.3f}", "-", "-"],
            [
                "telemetry on", f"{t_on:.3f}", f"{overhead:+.1%}",
                str(len(frames_on)),
            ],
        ],
        title=(
            f"O2: live-telemetry overhead (window + SLO + sampler + one "
            f"stream subscriber), E1 workload via MixingService "
            f"(n={g.n}, d={d}, tau(beta={BETA})) — bitwise identity "
            f"asserted, gate < {OVERHEAD_GATE:.0%}, history entry "
            f"appended to results/history/o2_live.jsonl"
        ),
    )
    record_table("o2_live", table, metrics=rep.snapshot())
