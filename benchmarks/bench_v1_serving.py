"""V1 — the async serving front end: coalesced vs per-query dispatch.

Claims (serving subsystem):

1. **Serving identity** — for every concurrency level C ∈ {1, 8, 64} and
   both dispatch modes, every answer the service returns is identical —
   same τ, set sizes, bitwise-equal deviations, same counters — to the
   direct :func:`batched_local_mixing_times` result for that source
   (asserted unconditionally, in quick mode too);
2. **Coalescing throughput** — 64 concurrent clients micro-batched into
   block solves complete ≥ 3× faster than the same 64 clients dispatched
   per-query (``max_batch=1``: one engine call each, the cost model of a
   naive front end).  The gain stacks two effects: the algorithmic one
   (one ``n × 64`` block trajectory against 64 independent ``n × 1``
   trajectories) and — on a multi-core host — the parallel one (a
   coalesced batch is a *sharded* solve on the service's persistent
   worker pool, which a stream of single-source calls can never exploit).
   The ≥ 3× assertion is therefore gated on the schedulable core count
   (``>= 2``; a single-core runner caps the stack at the algorithmic
   share) and skipped in quick mode; identity still runs everywhere.

The result cache is disabled throughout (``cache_size=0``) so the table
measures coalescing, not memoization; every client queries a distinct
source (the worst case for caching, the natural case for coalescing).
Both modes are timed after a warm-up round, so pool spawn and graph
publication are setup cost, not serving cost.
"""

import asyncio
import os

from repro.engine import batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import BenchReporter
from repro.service import MixingQuery, MixingService
from repro.utils import format_table

BETA = 4.0
CLIENT_COUNTS = (1, 8, 64)


def serve(g, sources, *, max_batch, window, n_workers=None,
          reporter, label):
    """Answer one query per source on a fresh service; returns
    (results, wall seconds, service stats), timing the serving round as
    ``reporter`` section ``label``.  With ``n_workers`` the service
    shards coalesced batches on its own persistent pool (warmed — along
    with the thread pool — by an untimed round first)."""

    async def main():
        async with MixingService(
            cache_size=0,
            window=window,
            max_batch=max_batch,
            n_workers=n_workers,
        ) as svc:
            await svc.submit_many(
                [MixingQuery(g, s, beta=BETA) for s in sources[:2]]
            )
            warm_batches = svc.stats()["coalescer"]["batches"]
            with reporter.section(label):
                res = await svc.submit_many(
                    [MixingQuery(g, s, beta=BETA) for s in sources]
                )
            stats = svc.stats()
            stats["timed_batches"] = (
                stats["coalescer"]["batches"] - warm_batches
            )
            return res, reporter.seconds(label), stats

    return asyncio.run(main())


def test_v1_serving(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    g = random_regular(n, d, seed=1)
    rep = BenchReporter("v1_serving")
    with rep.section("direct"):
        direct = batched_local_mixing_times(g, BETA)

    if hasattr(os, "sched_getaffinity"):
        cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - macOS/Windows
        cores = os.cpu_count() or 1

    # The coalesced service shards its batches on a worker pool when the
    # host can actually parallelize (per-query batches are single-source,
    # so a pool could never help that mode).
    workers = min(4, cores) if cores >= 2 and not quick_mode else None
    rows = []
    speedups = {}
    for c in CLIENT_COUNTS:
        sources = [s % g.n for s in range(c)]
        per_query, t_pq, _ = serve(
            g, sources, max_batch=1, window=0.0,
            reporter=rep, label=f"per_query:C={c}",
        )
        coalesced, t_co, stats = serve(
            g, sources, max_batch=c, window=0.005, n_workers=workers,
            reporter=rep, label=f"coalesced:C={c}",
        )
        # Identity is unconditional: any batch composition must reproduce
        # the direct engine call bitwise, source by source.
        expect = [direct[s] for s in sources]
        assert per_query == expect, f"C={c}: per-query dispatch diverged"
        assert coalesced == expect, f"C={c}: coalesced dispatch diverged"
        speedups[c] = t_pq / t_co
        rows.append(
            [
                f"C={c}",
                stats["timed_batches"],
                c,
                f"{t_pq:.3f}",
                f"{t_co:.3f}",
                f"{c / t_pq:.1f}",
                f"{c / t_co:.1f}",
                f"{speedups[c]:.2f}x",
            ]
        )

    if not quick_mode and cores >= 2:
        assert speedups[64] >= 3.0, (
            f"64-client coalescing speedup {speedups[64]:.2f}x below the "
            f"3x target on {cores} cores"
        )

    table = format_table(
        [
            "clients",
            "engine calls",
            "(per-query)",
            "per-query s",
            "coalesced s",
            "q/s per-query",
            "q/s coalesced",
            "speedup",
        ],
        rows,
        title=(
            f"V1: serving throughput, coalesced vs per-query dispatch — "
            f"distinct-source clients on a {n}-node {d}-regular graph, "
            f"tau(beta={BETA}) per query, result cache off (identity vs "
            f"the direct engine asserted at every C; host cores: {cores})"
        ),
    )
    record_table("v1_serving", table, metrics=rep.snapshot())
