"""P1 — Theorem 3: push–pull partial information spreading.

Empirical hitting rounds for (δ,β)-partial spreading vs the τ(β,ε)·ln n
bound, the success probability at the Theorem 3 horizon, and the
weak-conductance bound (log n + log 1/δ)/Φ_β on the barbell where Φ_β has
a closed form.
"""

import math

from repro.analysis import theorem3_round_bound
from repro.constants import DEFAULT_EPS
from repro.gossip import (
    rounds_to_partial_spreading,
    spreading_success_probability,
)
from repro.graphs import generators as gen
from repro.spectral import barbell_weak_conductance
from repro.utils import format_table
from repro.walks import local_mixing_time


def run_all():
    rows = []
    cases = [
        ("barbell(4,16)", gen.beta_barbell(4, 16), 4, 16),
        ("barbell(8,16)", gen.beta_barbell(8, 16), 8, 16),
        ("expander(128)", gen.random_regular(128, 8, seed=8), 4, None),
    ]
    for name, g, beta, clique in cases:
        # τ(β,ε): sample sources (homogeneous families; paper §1 note)
        tau = max(
            local_mixing_time(g, s, beta=beta).time
            for s in range(0, g.n, max(g.n // 8, 1))
        )
        bound = theorem3_round_bound(tau, g.n)
        hits = [
            rounds_to_partial_spreading(g, beta, seed=s) for s in range(5)
        ]
        horizon = math.ceil(3 * tau * math.log(g.n))
        p_succ = spreading_success_probability(
            g, beta, horizon, trials=20, seed=99
        )
        if clique is not None:
            phi_b = barbell_weak_conductance(beta, clique)
            wc_bound = math.log(g.n) * 2 / phi_b  # delta = 1/n
        else:
            wc_bound = float("nan")
        rows.append(
            [name, g.n, beta, tau, round(bound), min(hits), max(hits),
             horizon, p_succ, wc_bound]
        )
    return rows


def test_p1_partial_spreading(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[6] <= 4 * r[4] + 8, "hitting time within O(tau log n)"
        assert r[8] >= 0.9, "Theorem 3 horizon succeeds whp"
    table = format_table(
        ["graph", "n", "beta", "tau_local", "thm3 bound", "hit_min",
         "hit_max", "horizon(3tau ln n)", "success_prob", "weak-cond bound"],
        rows,
        title="P1: Theorem 3 — push-pull partial spreading vs tau(beta)*log n",
    )
    record_table("p1_partial_spreading", table)
