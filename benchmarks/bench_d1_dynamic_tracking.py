"""D1 — incremental dynamic tracking vs per-snapshot recomputation.

Claim (dynamic subsystem): tracking ``τ(β,ε)`` over all sources across a
200-event churn trace on a 400-node β-barbell is ≥ 5× faster with the
incremental :class:`~repro.dynamic.tracker.MixingTracker` (structural memo +
locality pruning + fused bound prefilter) than recomputing every snapshot
from scratch with :func:`~repro.engine.batch.batched_local_mixing_times` —
with **identical** per-source results on every snapshot (same times, set
sizes, bitwise-equal deviations and counters).

The trace is the bridge-surgery schedule: shortcut bridges between cliques
appear, hold while cross-clique rewires churn, then vanish — the locality
pruning's worst-ish case (structures never repeat, so the memo never fires;
all the speedup is pruning + kernel).

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance and
relaxes the timing assertion, since shared runners time unreliably.
"""

from repro.dynamic import DynamicGraph, barbell_bridge_schedule, track_local_mixing
from repro.engine import batched_local_mixing_times
from repro.obs import BenchReporter
from repro.utils import format_table

BETA = 4
T_MAX = 5000


def run_compare(
    clique_size: int, cycles: int, hold: int, seed: int = 1, reporter=None
):
    rep = reporter if reporter is not None else BenchReporter("d1")
    base, schedule = barbell_bridge_schedule(
        BETA, clique_size, cycles=cycles, hold=hold, seed=seed
    )
    with rep.section("tracker"):
        trace = track_local_mixing(base, schedule, beta=BETA, t_max=T_MAX)

    with rep.section("scratch"):
        dyn = DynamicGraph(base)
        scratch = [
            batched_local_mixing_times(dyn.snapshot(), BETA, t_max=T_MAX)
        ]
        for upd in schedule:
            dyn.apply(upd)
            scratch.append(
                batched_local_mixing_times(dyn.snapshot(), BETA, t_max=T_MAX)
            )
    return (
        base, schedule, trace, scratch,
        rep.seconds("tracker"), rep.seconds("scratch"),
    )


def test_d1_dynamic_tracking(record_table, quick_mode):
    # Quick mode flaps bridges without rewires: cross-clique rewires on a
    # small clique push the uniform-target τ toward the global scale (degree
    # irregularity, see examples/dynamic_mixing.py) and the from-scratch
    # baseline alone would take minutes.
    clique, cycles, hold = (25, 8, 0) if quick_mode else (100, 25, 6)
    rep = BenchReporter("d1_dynamic_tracking")
    base, schedule, trace, scratch, t_track, t_scratch = run_compare(
        clique, cycles, hold, reporter=rep
    )

    # Identity on every snapshot of the trace (the acceptance criterion:
    # LocalMixingResult equality covers time, set_size, bitwise deviation,
    # threshold and both counters).
    assert len(trace.snapshots) == len(scratch) == len(schedule) + 1
    for snap, ref in zip(trace.snapshots, scratch):
        assert list(snap.results) == ref, f"mismatch at event {snap.index}"

    speedup = t_scratch / t_track
    assert speedup >= (1.5 if quick_mode else 5.0), (
        f"incremental tracking speedup {speedup:.1f}x below target "
        f"(from-scratch {t_scratch:.2f}s, tracker {t_track:.2f}s)"
    )

    stats = trace.stats
    total_queries = sum(s.graph.n for s in trace.snapshots)
    table = format_table(
        ["n", "events", "tau range", "solved", "reused", "memo",
         "scratch s", "tracker s", "speedup"],
        [[
            base.n,
            len(schedule),
            f"{min(trace.tau_trace)}..{max(trace.tau_trace)}",
            f"{stats['solved_sources']}/{total_queries}",
            stats["reused_sources"],
            stats["memo_hits"],
            f"{t_scratch:.2f}",
            f"{t_track:.2f}",
            f"{speedup:.1f}x",
        ]],
        title=(
            "D1: incremental MixingTracker vs per-snapshot recomputation "
            "(identical per-source results asserted on every snapshot)"
        ),
    )
    record_table("d1_dynamic_tracking", table, metrics=rep.snapshot())
