"""X1 — §1 applications: maximum coverage, leader election, and the
partial-vs-full spreading contrast."""

import numpy as np

from repro.gossip import (
    distributed_max_coverage,
    full_information_spreading,
    leader_election,
    rounds_to_partial_spreading,
)
from repro.graphs import generators as gen
from repro.utils import format_table


def run_all():
    rng = np.random.default_rng(77)
    rows = []
    for name, g, beta in [
        ("barbell(4,16)", gen.beta_barbell(4, 16), 4),
        ("expander(64)", gen.random_regular(64, 8, seed=13), 4),
    ]:
        partial = rounds_to_partial_spreading(g, beta, seed=2)
        full = full_information_spreading(g, seed=2).rounds
        sets = [
            set(rng.choice(200, size=12, replace=False).tolist())
            for _ in range(g.n)
        ]
        cov = distributed_max_coverage(g, sets, k=5, rounds=3 * partial + 8, seed=3)
        le = leader_election(g, seed=4)
        rows.append(
            [name, g.n, beta, partial, full, round(full / max(partial, 1), 1),
             cov.ratio, le.rounds]
        )
    return rows


def test_x1_applications(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[4] >= r[3], "full spreading is never faster than partial"
        assert r[6] >= 0.8, "coverage after partial spreading near-greedy"
    # the bottlenecked barbell should show a bigger partial/full gap
    assert rows[0][5] >= rows[1][5]
    table = format_table(
        ["graph", "n", "beta", "partial rounds", "full rounds", "full/partial",
         "coverage ratio", "leader rounds"],
        rows,
        title="X1: applications — coverage, leader election, partial vs full",
    )
    record_table("x1_applications", table)
