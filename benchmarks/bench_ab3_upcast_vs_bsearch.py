"""AB3 — ablation: §3.1's design choice — binary search vs naive upcast.

The paper rejects upcast because congestion makes it Ω(n) on deep trees.
The ablation measures both costs for the same k-smallest-sum query across
tree shapes: on deep trees (path) the binary search's O(height·log) beats
the upcast's O(height + size) only when size ≫ height·log — the crossover
the paper's remark is about; on shallow trees the naive version can win.
"""

import numpy as np

from repro.congest import (
    CongestNetwork,
    build_bfs_tree,
    k_smallest_sum,
    k_smallest_sum_upcast,
)
from repro.graphs import generators as gen
from repro.utils import format_table


def run_all():
    rng = np.random.default_rng(3)
    rows = []
    cases = [
        ("path(64)", gen.path_graph(64), 0),
        ("path(256)", gen.path_graph(256), 0),
        ("barbell(4,16)", gen.beta_barbell(4, 16), 0),
        ("expander(256)", gen.random_regular(256, 8, seed=4), 0),
        ("star-ish K1,127", gen.star_graph(128), 0),
    ]
    for name, g, src in cases:
        vals = rng.random(g.n)
        k = max(g.n // 4, 1)

        net_a = CongestNetwork(g)
        tree_a = build_bfs_tree(net_a, src)
        net_a.reset_ledger()
        k_smallest_sum_upcast(net_a, tree_a, vals, k, 16)
        naive_rounds = net_a.ledger.rounds

        net_b = CongestNetwork(g)
        tree_b = build_bfs_tree(net_b, src)
        net_b.reset_ledger()
        res = k_smallest_sum(net_b, tree_b, vals, k, seed=6)
        search_rounds = net_b.ledger.rounds

        rows.append(
            [name, g.n, tree_a.height, k, naive_rounds, search_rounds,
             res.iterations,
             "search" if search_rounds < naive_rounds else "upcast"]
        )
    return rows


def test_ab3_upcast_vs_bsearch(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    by_name = {r[0]: r for r in rows}
    # On the bushy expander and the star, upcast is linear in n while the
    # search pays height * probes — the search should win on the expander
    # (big n, tiny height-but-log probes)… measure, don't assume; assert
    # only the paper's directional claim on the star (height 1-2, n large):
    assert by_name["expander(256)"][7] == "search"
    assert by_name["star-ish K1,127"][7] == "search"
    # …and loses on deep trees, where each probe repays the whole depth.
    assert by_name["path(256)"][7] == "upcast"
    table = format_table(
        ["graph", "n", "tree height", "k", "upcast rounds",
         "bsearch rounds", "probes", "winner"],
        rows,
        title="AB3: naive upcast vs Section 3.1 binary search (same query)",
    )
    record_table("ab3_upcast_vs_bsearch", table)
