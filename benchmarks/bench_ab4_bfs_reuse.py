"""AB4 — ablation: footnote 8 (BFS reuse) in the exact algorithm.

The paper's footnote 8 proposes building one full-depth BFS tree up front
instead of one per iteration "to simplify the algorithm", at an extra O(D)
additive cost.  The measurement shows the real trade-off is sharper: with
per-iteration trees every aggregation runs over a radius-ℓ tree (height
≤ ℓ), so when τ ≪ D the rebuilt shallow trees are *much* cheaper than
aggregating over the full-depth tree every iteration.
"""

from repro.algorithms import exact_local_mixing_time_congest
from repro.congest import CongestNetwork
from repro.graphs import generators as gen
from repro.graphs.properties import diameter
from repro.utils import format_table


def run_all():
    rows = []
    cases = [
        ("barbell(4,16)", gen.beta_barbell(4, 16), 4),   # tau << D
        ("barbell(8,8)", gen.beta_barbell(8, 8), 8),     # tau << D
        ("expander(64)", gen.random_regular(64, 8, seed=6), 2),  # tau ~ D
    ]
    for name, g, beta in cases:
        a = exact_local_mixing_time_congest(
            CongestNetwork(g), 0, beta=beta, seed=9
        )
        b = exact_local_mixing_time_congest(
            CongestNetwork(g), 0, beta=beta, seed=9, reuse_bfs=True
        )
        rows.append(
            [name, g.n, diameter(g), a.time, a.rounds, b.rounds,
             round(b.rounds / max(a.rounds, 1), 2)]
        )
    return rows


def test_ab4_bfs_reuse(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        tau, d = r[3], r[2]
        if tau * 2 < d:
            assert r[5] > r[4], (
                "full-depth reuse must lose when tau << D (aggregations pay "
                "the whole diameter)"
            )
    table = format_table(
        ["graph", "n", "D", "tau", "rounds (rebuild)", "rounds (reuse)",
         "reuse/rebuild"],
        rows,
        title="AB4: footnote 8 — per-iteration BFS vs one full-depth tree",
    )
    record_table("ab4_bfs_reuse", table)
