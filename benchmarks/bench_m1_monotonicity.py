"""M1 — Lemma 1 vs the §3 non-monotonicity remark.

The global distance ‖p_t − π‖₁ is non-increasing (Lemma 1); the *restricted*
best local deviation min_R min_S Σ|p_t − 1/R| is **not** monotone — the
concrete reason Algorithm 2 doubles ℓ instead of binary-searching it.
"""

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.spectral import stationary_distribution
from repro.utils import format_table
from repro.walks import distribution_trajectory, l1_distance
from repro.walks.local_mixing import local_mixing_profile


def run_all():
    g = gen.beta_barbell(4, 16)
    t_max = 64
    pi = stationary_distribution(g)
    global_dist = [
        l1_distance(p, pi)
        for _, p in distribution_trajectory(g, 0, t_max=t_max)
    ]
    local_best = local_mixing_profile(g, 0, beta=4, sizes="grid", t_max=t_max)

    global_viol = sum(
        1 for a, b in zip(global_dist, global_dist[1:]) if b > a + 1e-12
    )
    local_incr = [
        (t, float(local_best[t]), float(local_best[t + 1]))
        for t in range(t_max)
        if local_best[t + 1] > local_best[t] + 1e-9
    ]
    rows = [
        ["global ||p_t - pi||", global_viol, "0 (Lemma 1)", global_viol == 0],
        ["local best deviation", len(local_incr),
         ">= 1 (non-monotone)", len(local_incr) >= 1],
    ]
    witness = local_incr[0] if local_incr else None
    return rows, witness


def test_m1_monotonicity(benchmark, record_table):
    rows, witness = benchmark.pedantic(run_all, iterations=1, rounds=1)
    assert rows[0][3], "Lemma 1 must hold for the global distance"
    assert rows[1][3], "restricted deviation must exhibit an increase"
    title = "M1: monotone global distance vs non-monotone local deviation"
    if witness:
        t, a, b = witness
        title += f" (witness: t={t}: {a:.4f} -> {b:.4f})"
    table = format_table(
        ["quantity", "#increases (64 steps)", "expected", "ok"],
        rows,
        title=title,
    )
    record_table("m1_monotonicity", table)
