"""AB1 — ablation: the (1+ε) set-size grid granularity.

Algorithm 2 scans log_{1+g} β set sizes per length.  A finer grid costs
proportionally more k-smallest searches but can stop at smaller relaxed
thresholds; Lemma 3 says the ε-grid with the 4ε check already covers every
intermediate size, so the output should be *insensitive* to the factor
while the rounds scale ~ 1/log(1+g).
"""

from repro.algorithms import local_mixing_time_congest
from repro.analysis import grid_length
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.utils import format_table


FACTORS = (0.02, DEFAULT_EPS, 0.1, 0.25, 0.5)


def run_all():
    g = gen.clique_chain_of_expanders(4, 32, d=8, seed=2)
    rows = []
    for factor in FACTORS:
        net = CongestNetwork(g)
        res = local_mixing_time_congest(
            net, 0, beta=4, grid_factor=factor, seed=5
        )
        rows.append(
            [factor, round(grid_length(4, factor), 1), res.time,
             res.set_size, res.rounds]
        )
    return rows


def test_ab1_grid_factor(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    outputs = {r[2] for r in rows}
    assert max(outputs) <= 2 * min(outputs), (
        "output must be grid-insensitive (within the doubling quantum)"
    )
    # rounds increase as the grid gets finer
    assert rows[0][4] >= rows[-1][4]
    table = format_table(
        ["grid factor", "log_{1+g} beta", "output", "set size", "rounds"],
        rows,
        title="AB1: set-size grid granularity (expander chain, beta=4)",
    )
    record_table("ab1_grid_factor", table)
