"""A1 — Algorithm 1 / Lemma 2: fixed-point flooding error.

Measured max-node error of p̃_t against the exact p_t, vs the Lemma 2 bound
t·n^{-c}; plus the CONGEST message width ⌈c·log₂ n⌉+1 against the per-edge
budget.
"""

import numpy as np

from repro.algorithms import FloodingEstimator
from repro.congest import CongestNetwork, fixed_point_bits
from repro.graphs import generators as gen
from repro.utils import format_table
from repro.walks import distribution_at


def run_all():
    rows = []
    cases = [
        ("barbell(4,16)", gen.beta_barbell(4, 16)),
        ("rr(64,8)", gen.random_regular(64, 8, seed=1)),
        ("cycle(65)", gen.cycle_graph(65)),
    ]
    for c in (4, 6):
        for name, g in cases:
            net = CongestNetwork(g)
            est = FloodingEstimator(net, 0, c=c)
            worst_ratio = 0.0
            t_report = (1, 8, 32)
            errs = {}
            for t in range(1, 33):
                p_tilde = est.step(1)
                if t in t_report:
                    p = distribution_at(g, 0, t)
                    err = float(np.abs(p_tilde - p).max())
                    bound = t * float(g.n) ** (-c)
                    errs[t] = (err, bound)
                    worst_ratio = max(worst_ratio, err / bound if bound else 0)
            for t, (err, bound) in errs.items():
                rows.append(
                    [name, g.n, c, t, err, bound, err <= bound,
                     fixed_point_bits(g.n, c), net.bandwidth_bits]
                )
    return rows


def test_a1_lemma2_error(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    assert all(r[6] for r in rows), "Lemma 2 bound must hold everywhere"
    assert all(r[7] <= r[8] for r in rows), "messages must fit CONGEST budget"
    table = format_table(
        ["graph", "n", "c", "t", "max_err", "bound t*n^-c", "holds",
         "msg_bits", "budget_bits"],
        rows,
        title="A1: Algorithm 1 rounding error vs Lemma 2 bound",
    )
    record_table("a1_probability_error", table)
