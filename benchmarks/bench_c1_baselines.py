"""C1 — baseline comparison (the paper's §1/§1.2 motivation).

On graphs where τ_local ≪ τ_mix, Algorithm 2 finishes in far fewer rounds
than *any* mixing-time estimator has to spend, because the latter must run
walks of length ~τ_mix:

* Algorithm 2 (this paper)      — O(τ_local·log²n·log β) rounds;
* Molla–Pandurangan ICDCN'17    — O(τ_mix·log n) rounds (token walks);
* Das Sarma et al. JACM'13      — Õ(√n + n^{1/4}√(D·τ_mix)) (charged model);
* Kempe–McSherry JCSS'08        — O(τ_mix·log²n) (charged model).
"""

from repro.algorithms import (
    local_mixing_time_congest,
    mixing_time_dassarma,
    mixing_time_mp,
    spectral_mixing_kempe,
)
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.utils import format_table
from repro.walks import mixing_time


def run_all():
    rows = []
    for beta, clique in ((4, 12), (8, 12)):
        g = gen.beta_barbell(beta, clique)
        tau_mix = mixing_time(g, 0, DEFAULT_EPS)

        net = CongestNetwork(g)
        alg2 = local_mixing_time_congest(net, 0, beta=beta, seed=31)

        mp = mixing_time_mp(CongestNetwork(g), 0, seed=31)
        ds = mixing_time_dassarma(g, 0, seed=31)
        ke = spectral_mixing_kempe(g, DEFAULT_EPS, seed=31)

        rows.append(
            [
                g.name,
                g.n,
                tau_mix,
                alg2.time,
                alg2.rounds,
                mp.time,
                mp.rounds,
                ds.time,
                ds.rounds_model,
                round(ke.mixing_upper),
                ke.rounds_model,
            ]
        )
    return rows


def test_c1_baselines(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        alg2_rounds, mp_rounds, kempe_rounds = r[4], r[6], r[10]
        # the motivation claim: computing the LOCAL quantity is much
        # cheaper than any global mixing estimation on these graphs
        assert alg2_rounds < mp_rounds
        assert alg2_rounds < kempe_rounds
    table = format_table(
        ["graph", "n", "tau_mix", "alg2 out", "alg2 rounds", "MP est",
         "MP rounds", "DS est", "DS rounds*", "KM tau_up", "KM rounds*"],
        rows,
        title=(
            "C1: baselines — rounds to estimate local vs global mixing "
            "(*: charged from published formulas, DESIGN.md §5)"
        ),
    )
    record_table("c1_baselines", table)
