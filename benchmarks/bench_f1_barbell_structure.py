"""F1 — Figure 1: the β-barbell graph.

Regenerates the figure's object structurally: β equal-sized cliques chained
by bridge edges, with the properties table (n, m, degree profile, diameter
= Θ(β)) that the figure caption implies.
"""

import numpy as np

from repro.graphs import beta_barbell
from repro.graphs.properties import degree_histogram, diameter
from repro.utils import format_table


def build_rows():
    rows = []
    for beta in (2, 4, 8, 16):
        for k in (8, 16):
            g = beta_barbell(beta, k)
            rows.append(
                [
                    beta,
                    k,
                    g.n,
                    g.m,
                    beta * k * (k - 1) // 2 + (beta - 1),
                    int(g.degrees.min()),
                    int(g.degrees.max()),
                    diameter(g),
                    2 * beta - 1,  # exact: 1 intra-hop per clique + bridges
                ]
            )
    return rows


def test_f1_barbell_structure(benchmark, record_table):
    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    for r in rows:
        assert r[3] == r[4], "edge count must match the closed form"
        assert r[7] == r[8], "barbell diameter is exactly 2*beta - 1"
    table = format_table(
        ["beta", "clique", "n", "m", "m_formula", "deg_min", "deg_max",
         "diameter", "diam_exact(2b-1)"],
        rows,
        title="F1: beta-barbell (Figure 1) structure — path of beta cliques",
    )
    record_table("f1_barbell_structure", table)
