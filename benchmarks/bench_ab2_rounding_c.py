"""AB2 — ablation: Algorithm 1's fixed-point exponent c.

The paper requires c ≥ 6 so that the cumulative error t·n^{-c} stays
negligible out to t = O(n³).  The ablation shows the trade-off concretely:
message width grows linearly in c while the error shrinks geometrically —
and at c = 1 the estimate visibly degrades at moderate t.
"""

import numpy as np

from repro.algorithms import FloodingEstimator
from repro.congest import CongestNetwork, fixed_point_bits
from repro.graphs import generators as gen
from repro.utils import format_table
from repro.walks import distribution_at


T_PROBE = 64


def run_all():
    g = gen.beta_barbell(4, 16)
    p_exact = distribution_at(g, 0, T_PROBE)
    rows = []
    for c in (1, 2, 4, 6, 8):
        net = CongestNetwork(g)
        est = FloodingEstimator(net, 0, c=c)
        p_tilde = est.run(T_PROBE)
        err = float(np.abs(p_tilde - p_exact).max())
        bound = T_PROBE * float(g.n) ** (-c)
        rows.append(
            [c, fixed_point_bits(g.n, c), err, bound, err <= bound + 1e-18,
             float(np.abs(p_tilde.sum() - 1.0))]
        )
    return rows


def test_ab2_rounding_c(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[4], "Lemma 2 must hold at every c"
    errs = [r[2] for r in rows]
    assert errs[0] > errs[-1] * 10, "error must shrink sharply with c"
    bits = [r[1] for r in rows]
    assert bits == sorted(bits), "message width grows with c"
    table = format_table(
        ["c", "msg bits", f"max err @ t={T_PROBE}", "Lemma2 bound", "holds",
         "|sum p - 1| (mass drift)"],
        rows,
        title="AB2: fixed-point exponent c — error vs message width",
    )
    record_table("ab2_rounding_c", table)
