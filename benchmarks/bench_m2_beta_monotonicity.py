"""M2 — §2.3 first remark: τ_s(β,ε) is non-increasing in β (larger β allows
smaller sets, which can only mix sooner)."""

from repro.graphs import generators as gen
from repro.utils import format_table
from repro.walks import local_mixing_time


def run_all():
    rows = []
    cases = [
        ("barbell(8,16)", gen.beta_barbell(8, 16), (1, 2, 4, 8), 0.25, False, "degree"),
        ("expander(128)", gen.random_regular(128, 8, seed=12), (1, 2, 4, 8),
         0.25, False, "uniform"),
        ("path(96)", gen.path_graph(96), (2, 4, 8), 0.4, True, "uniform"),
    ]
    for name, g, betas, eps, lazy, target in cases:
        times = [
            local_mixing_time(
                g, g.n // 2, beta=b, eps=eps, lazy=lazy, target=target
            ).time
            for b in betas
        ]
        rows.append([name, eps] + times + [times == sorted(times, reverse=True)])
    return rows


def test_m2_beta_monotonicity(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[-1], f"beta-monotonicity violated on {r[0]}"
    # rows have different beta grids; render generically
    table = format_table(
        ["graph", "eps", "tau(b1)", "tau(b2)", "tau(b3)", "tau(b4)/ok",
         "monotone"],
        [r if len(r) == 7 else r[:5] + ["-"] + r[5:] for r in rows],
        title="M2: beta-monotonicity of the local mixing time",
    )
    record_table("m2_beta_monotonicity", table)
