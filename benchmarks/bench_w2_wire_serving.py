"""W2 — the wire front door under load: a socket-level generator driving
the HTTP/WebSocket server with concurrent client herds.

Claims (wire subsystem):

1. **Wire identity** — every answer decoded off the socket, at every
   concurrency level, dispatch mode and churn phase, is identical — same
   τ, set sizes, bitwise-equal deviations, same counters — to the direct
   :func:`batched_local_mixing_times` result for that source (asserted
   unconditionally, quick mode included);
2. **Coalescing survives the wire** — C concurrent *socket* clients
   micro-batched by the server complete faster than the same C clients
   against a per-query server (``max_batch=1``): the transport does not
   break the batching economics (reported; asserted ≥ 1 in full mode on
   multi-core hosts only — socket overhead, unlike in-process dispatch,
   is paid by both modes);
3. **Herd absorption** — a hot-key herd (every client asking for the
   same few sources) collapses into in-flight dedup + cache hits: engine
   calls stay near the number of *distinct* sources, not the number of
   queries;
4. **Exact accounting under churn** — with a registered
   :class:`~repro.dynamic.DynamicGraph` mutating between query waves on
   live connections, each wave's answers match the direct call on that
   wave's snapshot, and the wire counters close exactly
   (``requests = admitted + rejected``,
   ``admitted = answered + expired + errored``) over the whole run.

Full mode drives thousands of client sessions (bounded to a few hundred
concurrent sockets so the fd budget survives); quick mode shrinks every
axis but asserts the same identities.
"""

import asyncio
import os

from repro.dynamic import DynamicGraph
from repro.engine import batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import BenchReporter
from repro.service import GraphRegistry, MixingQuery, MixingService
from repro.service.wire import WireClient, WireServer
from repro.utils import format_table

BETA = 4.0
MAX_SOCKETS = 256  # concurrent-connection bound (fd budget)


def wire_query(source):
    return MixingQuery("g", source, beta=BETA)


async def run_clients(server, source_lists):
    """One WebSocket client session per source list (len(source_lists)
    clients), at most MAX_SOCKETS connected at once; returns the answers
    in client order."""
    gate = asyncio.Semaphore(MAX_SOCKETS)

    async def one(sources):
        async with gate:
            async with WireClient(server.host, server.port) as client:
                return await asyncio.gather(
                    *(client.submit(wire_query(s)) for s in sources)
                )

    return await asyncio.gather(*(one(s) for s in source_lists))


def serve_wire(g, source_lists, *, max_batch, window, reporter, label):
    """Answer every client's queries through a fresh wire stack; returns
    (per-client results, seconds, server stats, service stats)."""

    async def main():
        reg = GraphRegistry()
        reg.register("g", g)
        async with MixingService(
            registry=reg, cache_size=0, window=window, max_batch=max_batch
        ) as svc:
            async with WireServer(
                svc, max_pending=len(source_lists) * 4 + 8
            ) as server:
                # Untimed warm-up: thread pool, listener, first solve.
                await run_clients(server, [[0]])
                with reporter.section(label):
                    results = await run_clients(server, source_lists)
                return results, server.stats(), svc.stats()

    results, wire_stats, svc_stats = asyncio.run(main())
    return results, reporter.seconds(label), wire_stats, svc_stats


def check_accounting(stats):
    assert stats["requests"] == stats["admitted"] + stats["rejected"]
    assert stats["admitted"] == (
        stats["answered"] + stats["expired"] + stats["errored"]
    )
    assert stats["expired"] == 0 and stats["errored"] == 0


def test_w2_wire_serving(record_table, quick_mode):
    n, d = (60, 4) if quick_mode else (200, 6)
    g = random_regular(n, d, seed=1)
    rep = BenchReporter("w2_wire_serving")
    with rep.section("direct"):
        direct = batched_local_mixing_times(g, BETA)

    if hasattr(os, "sched_getaffinity"):
        cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - macOS/Windows
        cores = os.cpu_count() or 1

    rows = []

    # ---- coalesced vs per-query over real sockets ---------------------- #
    herd = 16 if quick_mode else 64
    sources = [[s % g.n] for s in range(herd)]
    expect = [[direct[s[0]]] for s in sources]
    per_query, t_pq, pq_stats, _ = serve_wire(
        g, sources, max_batch=1, window=0.0,
        reporter=rep, label=f"per_query:C={herd}",
    )
    assert per_query == expect, "wire per-query dispatch diverged"
    check_accounting(pq_stats)
    coalesced, t_co, co_stats, co_svc = serve_wire(
        g, sources, max_batch=herd, window=0.005,
        reporter=rep, label=f"coalesced:C={herd}",
    )
    assert coalesced == expect, "wire coalesced dispatch diverged"
    check_accounting(co_stats)
    speedup = t_pq / t_co
    if not quick_mode and cores >= 2:
        assert speedup >= 1.0, (
            f"coalescing lost its advantage over the wire: {speedup:.2f}x"
        )
    rows.append(["coalesced-vs-per-query", herd, herd,
                 co_svc["coalescer"]["batches"],
                 f"{t_co:.3f}", f"{herd / t_co:.1f}", f"{speedup:.2f}x"])

    # ---- hot-key herd: thousands of sessions, a handful of sources ----- #
    n_sessions = 60 if quick_mode else 2000
    hot = [0, 3, 7]
    herd_lists = [[hot[i % len(hot)]] for i in range(n_sessions)]

    async def herd_run():
        reg = GraphRegistry()
        reg.register("g", g)
        async with MixingService(registry=reg, window=0.002) as svc:
            async with WireServer(
                svc, max_pending=n_sessions + 8
            ) as server:
                with rep.section(f"herd:S={n_sessions}"):
                    results = await run_clients(server, herd_lists)
                return results, server.stats(), svc.stats()

    herd_results, herd_stats, herd_svc = asyncio.run(herd_run())
    for sources_i, got in zip(herd_lists, herd_results):
        assert got == [direct[sources_i[0]]], "herd answer diverged"
    check_accounting(herd_stats)
    assert herd_stats["answered"] == n_sessions
    # Absorption: every query was either absorbed before the engine
    # (cache hit, in-flight dedup) or entered a coalesced batch — and the
    # engine solved ~|hot| times, not ~n_sessions times.
    engine_calls = herd_svc["coalescer"]["batches"]
    absorbed = (
        herd_svc["cache"]["hits"]
        + herd_svc["cache"]["inflight_hits"]
    )
    assert herd_svc["coalescer"]["queries"] + absorbed == n_sessions
    assert engine_calls <= len(hot) * 4, (
        f"herd was not absorbed: {engine_calls} engine batches for "
        f"{n_sessions} sessions on {len(hot)} hot sources"
    )
    t_herd = rep.seconds(f"herd:S={n_sessions}")
    rows.append([f"hot-key herd ({len(hot)} keys)", n_sessions, n_sessions,
                 engine_calls, f"{t_herd:.3f}",
                 f"{n_sessions / t_herd:.1f}", "-"])

    # ---- graph churn mid-stream ---------------------------------------- #
    waves = 3 if quick_mode else 6
    clients_per_wave = 8 if quick_mode else 32
    dg = DynamicGraph(random_regular(n, d, seed=5))

    async def churn_run():
        reg = GraphRegistry()
        reg.register("g", dg)
        totals = 0
        async with MixingService(registry=reg, window=0.002) as svc:
            async with WireServer(
                svc, max_pending=clients_per_wave * 2 + 8
            ) as server:
                with rep.section("churn"):
                    for wave in range(waves):
                        snap = dg.snapshot()
                        wave_sources = [
                            [(wave * clients_per_wave + i) % dg.n]
                            for i in range(clients_per_wave)
                        ]
                        got = await run_clients(server, wave_sources)
                        expect_wave = batched_local_mixing_times(
                            snap, BETA,
                            sources=[s[0] for s in wave_sources],
                        )
                        assert [r[0] for r in got] == expect_wave, (
                            f"wave {wave} diverged from its snapshot"
                        )
                        totals += clients_per_wave
                        # Mutate the registered graph under the open
                        # server: rewire one edge per wave.
                        u, v = next(iter(dg.edges()))
                        w = next(
                            w for w in range(dg.n)
                            if w != u and not dg.has_edge(u, w)
                        )
                        dg.rewire(u, v, w)
                return totals, server.stats()

    total_churn, churn_stats = asyncio.run(churn_run())
    check_accounting(churn_stats)
    assert churn_stats["answered"] == total_churn
    t_churn = rep.seconds("churn")
    rows.append([f"graph churn ({waves} waves)",
                 waves * clients_per_wave, total_churn, "-",
                 f"{t_churn:.3f}", f"{total_churn / t_churn:.1f}", "-"])

    table = format_table(
        [
            "phase",
            "sessions",
            "queries",
            "engine calls",
            "seconds",
            "q/s",
            "speedup",
        ],
        rows,
        title=(
            f"W2: wire serving under load — WebSocket clients against the "
            f"HTTP/WS front door, tau(beta={BETA}) per query on a {n}-node "
            f"{d}-regular graph (bitwise identity vs the direct engine "
            f"asserted in every phase; host cores: {cores})"
        ),
    )
    record_table("w2_wire_serving", table, metrics=rep.snapshot())
