"""T3 — §2.3(d): barbell sweep over β with fixed clique size.

Claim: τ_mix = Ω(β²) while τ_local stays O(1); for β = √n the gap is Θ(n).
"""

from repro.constants import DEFAULT_EPS
from repro.engine import batched_local_mixing_times, batched_mixing_times
from repro.graphs import beta_barbell
from repro.utils import format_table, loglog_slope

CLIQUE = 16
BETAS = (2, 4, 8, 16)


def run_sweep():
    # Both measurements per β ride the batched engine (identical to the
    # per-source calls; one shared spectral cache entry per graph).
    rows = []
    for beta in BETAS:
        g = beta_barbell(beta, CLIQUE)
        tm = batched_mixing_times(g, DEFAULT_EPS, sources=[0])[0]
        tl = batched_local_mixing_times(g, beta, sources=[0])[0].time
        rows.append([beta, g.n, tm, tl, tm / max(tl, 1)])
    return rows


def test_t3_barbell_scaling(benchmark, record_table):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    fit = loglog_slope([r[0] for r in rows], [r[2] for r in rows])
    assert fit.exponent >= 1.5, "tau_mix must grow at least ~ beta^1.5"
    assert all(r[3] <= 3 for r in rows), "tau_local must stay O(1)"
    table = format_table(
        ["beta", "n", "tau_mix", "tau_local", "gap"],
        rows,
        title=(
            "T3: barbell sweep (clique=16) — tau_mix exponent in beta: "
            f"{fit.exponent:.2f} (claim >= 2 up to log factors); "
            "tau_local constant (claim O(1))"
        ),
    )
    record_table("t3_barbell_scaling", table)
