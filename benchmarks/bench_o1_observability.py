"""O1 — observability overhead: the instrumented engine, switch on vs off.

Claims (observability subsystem):

1. **Identity** — ``batched_local_mixing_times`` on the E1 all-sources
   workload returns results identical — same τ, set sizes, bitwise-equal
   deviations, same counters — with observability enabled and disabled
   (asserted unconditionally, in quick mode too).  Instrumentation is a
   pure observer: spans and kernel profiling wrap the computation, they
   never enter it.
2. **Overhead** — enabling the full instrumentation stack (query/engine
   spans, per-kernel call/wall-time profiling, screening counters,
   latency histograms) costs **< 3 %** wall clock against the disabled
   path on the same workload.  Both modes are timed min-of-``REPEATS``
   after a warm-up solve, interleaved so drift hits both alike; the
   minimum is robust to scheduler noise, which is what a shared CI
   runner contributes.
3. **Coverage** — the enabled runs actually produce the telemetry the
   overhead pays for: the kernel profiler holds per-backend call counts
   and the process registry renders ``repro_engine_solve_seconds`` and
   ``repro_kernel_seconds_total`` in Prometheus text form.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance;
the identity and overhead gates run everywhere.
"""

from repro.engine import batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import (
    BenchReporter,
    default_registry,
    kernel_profiler,
    observability,
)
from repro.utils import format_table

BETA = 4
REPEATS = 3
OVERHEAD_GATE = 0.03


def timed_repeats(rep, g, *, enabled: bool):
    """Solve the all-sources workload ``REPEATS`` times with
    observability forced to ``enabled``; returns (results of the last
    run, min wall seconds across the repeats)."""
    label = "enabled" if enabled else "disabled"
    res = None
    for i in range(REPEATS):
        with observability(enabled):
            with rep.section(f"{label}:rep{i}"):
                res = batched_local_mixing_times(g, BETA)
    return res, min(rep.seconds(f"{label}:rep{i}") for i in range(REPEATS))


def test_o1_observability(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    g = random_regular(n, d, seed=1)
    rep = BenchReporter("o1_observability")

    # Warm-up: shared caches (walk bounds, backend singletons, thread
    # pools) are setup cost, not instrumentation cost.
    with observability(False):
        batched_local_mixing_times(g, BETA)

    off_res, t_off = timed_repeats(rep, g, enabled=False)
    on_res, t_on = timed_repeats(rep, g, enabled=True)

    # Identity: the instrumented solve is the same solve.
    assert on_res == off_res, (
        "results diverged between observability enabled and disabled"
    )

    overhead = t_on / t_off - 1.0
    assert overhead < OVERHEAD_GATE, (
        f"instrumentation overhead {overhead:+.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate (disabled {t_off:.3f}s, "
        f"enabled {t_on:.3f}s, min of {REPEATS})"
    )

    # Coverage: the enabled runs recorded the telemetry they paid for.
    profile = kernel_profiler().snapshot()["kernels"]
    assert any(key.endswith("/step_block") for key in profile), profile
    rendered = default_registry().render()
    assert "repro_engine_solve_seconds" in rendered
    assert "repro_kernel_seconds_total" in rendered

    table = format_table(
        ["mode", f"wall s (min of {REPEATS})", "overhead"],
        [
            ["disabled", f"{t_off:.3f}", "-"],
            ["enabled", f"{t_on:.3f}", f"{overhead:+.1%}"],
        ],
        title=(
            f"O1: observability overhead on the E1 all-sources workload "
            f"(n={g.n}, d={d}, tau(beta={BETA})) — identical results "
            f"asserted, gate < {OVERHEAD_GATE:.0%}"
        ),
    )
    record_table("o1_observability", table, metrics=rep.snapshot())
