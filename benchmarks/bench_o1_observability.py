"""O1 — observability overhead: the instrumented engine, switch on vs off.

Claims (observability subsystem):

1. **Identity** — ``batched_local_mixing_times`` on the E1 all-sources
   workload returns results identical — same τ, set sizes, bitwise-equal
   deviations, same counters — with observability enabled and disabled
   (asserted unconditionally, in quick mode too).  Instrumentation is a
   pure observer: spans and kernel profiling wrap the computation, they
   never enter it.
2. **Overhead** — enabling the full instrumentation stack (query/engine
   spans, per-kernel call/wall-time profiling, screening counters,
   latency histograms) costs **< 3 %** wall clock against the disabled
   path on the same workload.  Both modes are timed min-of-``REPEATS``
   after a warm-up solve, interleaved so drift hits both alike; the
   minimum is robust to scheduler noise, which is what a shared CI
   runner contributes.
3. **Coverage** — the enabled runs actually produce the telemetry the
   overhead pays for: the kernel profiler holds per-backend call counts
   and the process registry renders ``repro_engine_solve_seconds`` and
   ``repro_kernel_seconds_total`` in Prometheus text form.

4. **Flight recorder** (``test_o1_flight_recorder_service_overhead``) —
   the same E1 workload pushed through :class:`~repro.service.\
   MixingService` answers bitwise identically with the always-on flight
   recorder at its default capacity and with ``flight_capacity=0``
   (recorder off), and the recorder + latency-exemplar overhead stays
   **< 3 %** (interleaved min-of-``REPEATS``).  The run then feeds the
   perf-trajectory: its reporter snapshot is distilled into a history
   entry (``results/history/o1_flight.jsonl``, see
   :mod:`repro.obs.history`), which the regression comparator must
   accept against itself — the self-consistency check CI's
   ``tools/bench_track.py check`` builds on.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance;
the identity and overhead gates run everywhere.
"""

import asyncio
import hashlib
import pathlib
import time

from repro.engine import batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import (
    BenchReporter,
    default_registry,
    kernel_profiler,
    observability,
)
from repro.obs.history import append_entry, compare, extract_entry
from repro.service import GraphRegistry, MixingQuery, MixingService
from repro.utils import format_table

BETA = 4
REPEATS = 3
OVERHEAD_GATE = 0.03

HISTORY_DIR = pathlib.Path(__file__).parent / "results" / "history"


def timed_repeats(rep, g, *, enabled: bool):
    """Solve the all-sources workload ``REPEATS`` times with
    observability forced to ``enabled``; returns (results of the last
    run, min wall seconds across the repeats)."""
    label = "enabled" if enabled else "disabled"
    res = None
    for i in range(REPEATS):
        with observability(enabled):
            with rep.section(f"{label}:rep{i}"):
                res = batched_local_mixing_times(g, BETA)
    return res, min(rep.seconds(f"{label}:rep{i}") for i in range(REPEATS))


def test_o1_observability(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    g = random_regular(n, d, seed=1)
    rep = BenchReporter("o1_observability")

    # Warm-up: shared caches (walk bounds, backend singletons, thread
    # pools) are setup cost, not instrumentation cost.
    with observability(False):
        batched_local_mixing_times(g, BETA)

    off_res, t_off = timed_repeats(rep, g, enabled=False)
    on_res, t_on = timed_repeats(rep, g, enabled=True)

    # Identity: the instrumented solve is the same solve.
    assert on_res == off_res, (
        "results diverged between observability enabled and disabled"
    )

    overhead = t_on / t_off - 1.0
    assert overhead < OVERHEAD_GATE, (
        f"instrumentation overhead {overhead:+.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate (disabled {t_off:.3f}s, "
        f"enabled {t_on:.3f}s, min of {REPEATS})"
    )

    # Coverage: the enabled runs recorded the telemetry they paid for.
    profile = kernel_profiler().snapshot()["kernels"]
    assert any(key.endswith("/step_block") for key in profile), profile
    rendered = default_registry().render()
    assert "repro_engine_solve_seconds" in rendered
    assert "repro_kernel_seconds_total" in rendered

    table = format_table(
        ["mode", f"wall s (min of {REPEATS})", "overhead"],
        [
            ["disabled", f"{t_off:.3f}", "-"],
            ["enabled", f"{t_on:.3f}", f"{overhead:+.1%}"],
        ],
        title=(
            f"O1: observability overhead on the E1 all-sources workload "
            f"(n={g.n}, d={d}, tau(beta={BETA})) — identical results "
            f"asserted, gate < {OVERHEAD_GATE:.0%}"
        ),
    )
    record_table("o1_observability", table, metrics=rep.snapshot())


def serve_all_sources(g, flight_capacity):
    """Answer the all-sources E1 workload through a fresh MixingService
    (cache off, immediate flush — every query costs its own solve);
    returns (results, closed service)."""

    async def main():
        reg = GraphRegistry()
        reg.register("g", g)
        async with MixingService(
            registry=reg, window=0.0, cache_size=0,
            flight_capacity=flight_capacity,
        ) as svc:
            results = [
                await svc.submit(MixingQuery("g", s, beta=BETA))
                for s in range(g.n)
            ]
        return results, svc

    return asyncio.run(main())


def test_o1_flight_recorder_service_overhead(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    g = random_regular(n, d, seed=1)
    rep = BenchReporter("o1_flight")
    direct = batched_local_mixing_times(g, BETA)

    serve_all_sources(g, 0)  # warm-up: caches, pools, backend singletons

    # The per-query service path is short (~ms) and dominated by event
    # loop + worker handoff, so this gate needs more repeats than the
    # raw-engine test AND an alternating pair order: the second run of a
    # back-to-back pair is systematically a hair slower (allocator /
    # frequency drift), which would otherwise masquerade as recorder
    # overhead.  Alternating cancels the bias; min-of-N shrugs spikes.
    repeats = 2 * REPEATS
    res_on = res_off = svc_on = svc_off = None
    for i in range(repeats):
        modes = [("off", 0), ("on", 1024)]
        if i % 2:
            modes.reverse()
        for label, cap in modes:
            with rep.section(f"flight_{label}:rep{i}"):
                res, svc = serve_all_sources(g, cap)
            if cap:
                res_on, svc_on = res, svc
            else:
                res_off, svc_off = res, svc
    t_off = min(rep.seconds(f"flight_off:rep{i}") for i in range(repeats))
    t_on = min(rep.seconds(f"flight_on:rep{i}") for i in range(repeats))

    # Identity: the recorder is a pure observer — on, off, and the
    # direct engine call all agree bitwise.
    assert res_on == res_off == direct, (
        "results diverged between flight recorder on / off / direct"
    )

    overhead = t_on / t_off - 1.0
    assert overhead < OVERHEAD_GATE, (
        f"flight recorder overhead {overhead:+.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate (off {t_off:.3f}s, on {t_on:.3f}s, "
        f"min of {repeats})"
    )

    # Coverage: the paid-for telemetry exists — one record per query,
    # latency-bucket exemplars carrying flight trace ids.
    on_stats = svc_on.flight.stats()
    assert on_stats["records"] == g.n
    assert svc_off.flight.stats()["records"] == 0
    series = svc_on.metrics.snapshot()["repro_service_query_seconds"][
        "series"
    ][0]
    assert series["exemplars"], "latency histogram carries no exemplars"

    # Perf trajectory: distill this run into a history entry and require
    # the comparator to accept the entry against itself (identity fields
    # exact, timings at ratio 1.0) — the invariant CI's
    # `bench_track.py check` builds on.
    digest = hashlib.blake2b(
        repr(direct).encode(), digest_size=8
    ).hexdigest()
    rep.record_identity(
        result_digest=digest,
        n_queries=g.n,
        flight_records=on_stats["records"],
    )
    entry = extract_entry(
        rep.snapshot(), quick=quick_mode, recorded_at=time.time()
    )
    append_entry(str(HISTORY_DIR), entry)
    assert compare(entry, [entry]) == []

    table = format_table(
        ["mode", f"wall s (min of {repeats})", "overhead", "records"],
        [
            ["flight off", f"{t_off:.3f}", "-", "0"],
            [
                "flight on", f"{t_on:.3f}", f"{overhead:+.1%}",
                str(on_stats["records"]),
            ],
        ],
        title=(
            f"O1b: flight-recorder overhead, E1 workload via "
            f"MixingService (n={g.n}, d={d}, tau(beta={BETA})) — bitwise "
            f"identity asserted, gate < {OVERHEAD_GATE:.0%}, history "
            f"entry appended to results/history/o1_flight.jsonl"
        ),
    )
    record_table("o1_flight", table, metrics=rep.snapshot())
