"""A2 — Theorem 1: Algorithm 2's output quality and round complexity.

Per instance: the distributed output ℓ vs the centralized grid-exact
stopping time (2-approximation band), measured CONGEST rounds vs the
τ·log²n·log_{1+ε}β bound (ratio should be a stable constant across the
sweep), and the per-phase ledger (the three cost terms of the proof).
"""

from repro.algorithms import local_mixing_time_congest
from repro.analysis import theorem1_round_bound
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.utils import format_table
from repro.walks import local_mixing_time


CASES = [
    ("barbell", lambda: gen.beta_barbell(4, 16), 4),
    ("barbell", lambda: gen.beta_barbell(8, 16), 8),
    ("barbell", lambda: gen.beta_barbell(16, 16), 16),
    ("expchain", lambda: gen.clique_chain_of_expanders(4, 32, d=8, seed=2), 4),
    ("expander", lambda: gen.random_regular(128, 8, seed=3), 2),
]


def run_all():
    rows = []
    for name, maker, beta in CASES:
        g = maker()
        net = CongestNetwork(g)
        res = local_mixing_time_congest(net, 0, beta=beta, seed=17)
        grid_exact = local_mixing_time(
            g, 0, beta=beta, sizes="grid", threshold_factor=4.0,
            t_schedule="all",
        ).time
        bound = theorem1_round_bound(res.time, g.n, DEFAULT_EPS, beta)
        rows.append(
            [
                name,
                g.n,
                beta,
                grid_exact,
                res.time,
                res.time / max(grid_exact, 1),
                res.rounds,
                round(bound),
                res.rounds / bound,
                res.ledger.phase_rounds("bfs"),
                res.ledger.phase_rounds("flooding"),
                res.ledger.phase_rounds("ksearch"),
            ]
        )
    return rows


def test_a2_theorem1(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[5] <= 2.0 + 1e-9, "output within 2x of grid-exact time"
        assert r[8] <= 8.0, "rounds within a constant of the Theorem 1 bound"
    table = format_table(
        ["graph", "n", "beta", "grid_exact", "alg2_out", "approx",
         "rounds", "thm1_bound", "ratio", "bfs_r", "flood_r", "search_r"],
        rows,
        title="A2: Theorem 1 — Algorithm 2 output (2-approx) and round ledger",
    )
    record_table("a2_theorem1_rounds", table)
