"""S1 — the sharded parallel executor vs the serial batched engine.

Claims (parallel subsystem):

1. ``parallel_local_mixing_times(..., n_workers=W)`` returns results
   **identical** — same τ, set sizes, bitwise-equal deviations, same
   bookkeeping counters — to the serial ``batched_local_mixing_times`` on
   the all-sources workload, for every tested worker count;
2. each worker propagates only its own contiguous source shard, so the
   peak dense-block footprint per process drops from ``n × k`` to
   ``n × ⌈k/W⌉`` (reported in the table — it is a structural property of
   the sharding, not a measurement);
3. on a machine with ≥ 4 usable cores, 4 workers give ≥ 2× wall-clock on
   the 1200-node all-sources workload.  The speedup assertion is gated on
   the *schedulable* core count (CPU affinity where the OS exposes it, so
   a cgroup-limited container doesn't assert speedups its quota forbids)
   and skipped in quick mode: a single-core CI runner cannot express
   parallelism, but the identity claims still run there.

4. the compute-backend knob survives the process boundary: for every
   registered backend, the sharded solve with ``backend=<name>`` is
   identical to the serial engine (asserted unconditionally; the
   per-backend wall times are reported for comparison).

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance
and asserts exactness plus clean teardown only.
"""

import os

from repro.engine import available_backends, batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import BenchReporter
from repro.parallel import ShardExecutor, parallel_local_mixing_times
from repro.utils import format_table

BETA = 4
WORKER_COUNTS = (1, 2, 4)


def run_compare(n: int, d: int, seed: int = 1, reporter=None):
    rep = reporter if reporter is not None else BenchReporter("s1")
    g = random_regular(n, d, seed=seed)
    with rep.section("serial"):
        serial = batched_local_mixing_times(g, BETA)
    rows = []
    results = {}
    for w in WORKER_COUNTS:
        with ShardExecutor(w) as ex:
            # Warm the pool (worker spawn is setup, not solve time), then
            # zero the utilization counters so stats() attributes the
            # timed call only.
            parallel_local_mixing_times(g, BETA, sources=[0], executor=ex)
            ex.reset()
            with rep.section(f"W={w}"):
                results[w] = parallel_local_mixing_times(
                    g, BETA, executor=ex
                )
            # Utilization counters (satellite of the serving subsystem):
            # shard partition + per-worker attribution of the timed call.
            st = ex.stats()
            split = "/".join(
                str(v)
                for v in sorted(
                    st["per_worker_solves"].values(), reverse=True
                )
                if v > 0
            )
            rows.append(
                (w, rep.seconds(f"W={w}"), st["last_shard_sizes"], split)
            )
    # Per-backend pass at a fixed worker count: the backend name crosses
    # the process boundary with each call's kwargs, so one warm pool
    # serves every backend.
    backend_rows = []
    with ShardExecutor(2) as ex:
        parallel_local_mixing_times(g, BETA, sources=[0], executor=ex)
        for name in available_backends():
            with rep.section(f"backend:{name}"):
                res = parallel_local_mixing_times(
                    g, BETA, executor=ex, backend=name
                )
            backend_rows.append(
                (name, rep.seconds(f"backend:{name}"), res)
            )
    return g, serial, results, rep.seconds("serial"), rows, backend_rows


def test_s1_sharded_engine(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (1200, 8)
    rep = BenchReporter("s1_sharded_engine")
    g, serial, results, t_serial, rows, backend_rows = run_compare(
        n, d, reporter=rep
    )

    # Identity at every worker count (LocalMixingResult equality covers
    # time, set_size, bitwise deviation, threshold and both counters).
    for w, res in results.items():
        assert res == serial, f"W={w} diverged from the serial engine"

    if hasattr(os, "sched_getaffinity"):
        cores = len(os.sched_getaffinity(0))
    else:  # pragma: no cover - macOS/Windows
        cores = os.cpu_count() or 1
    block_mb = lambda k: n * k * 8 / 2**20  # noqa: E731 - table helper
    table_rows = [
        ["serial", f"{t_serial:.2f}", "1.00x", f"{block_mb(g.n):.1f}",
         "-", "-"]
    ]
    for w, t_w, shard_sizes, split in rows:
        shard = -(-g.n // w)  # ceil(k / W): the per-worker block height
        table_rows.append(
            [f"W={w}", f"{t_w:.2f}", f"{t_serial / t_w:.2f}x",
             f"{block_mb(shard):.1f}",
             "+".join(str(s) for s in shard_sizes), split]
        )
        if not quick_mode and w == 4 and cores >= 4:
            assert t_serial / t_w >= 2.0, (
                f"4-worker speedup {t_serial / t_w:.2f}x below the 2x "
                f"target on {cores} cores (serial {t_serial:.2f}s, "
                f"W=4 {t_w:.2f}s)"
            )

    table = format_table(
        ["config", "wall s", "speedup", "peak block MiB/proc",
         "shard sizes", "solves/worker"],
        table_rows,
        title=(
            f"S1: sharded parallel engine vs serial batch — all {g.n} "
            f"sources of a {n}-node {d}-regular graph, tau(beta={BETA}) "
            f"(identical per-source results asserted at every W; "
            f"host cores: {cores})"
        ),
    )
    record_table("s1_sharded_engine", table, metrics=rep.snapshot())

    # Per-backend identity through the worker pool, asserted
    # unconditionally; wall times reported for comparison only.
    for name, _, res in backend_rows:
        assert res == serial, (
            f"backend {name!r} diverged from the serial engine through "
            f"the sharded executor"
        )
    backend_table = format_table(
        ["backend", "wall s (W=2)"],
        [[name, f"{dt:.2f}"] for name, dt, _ in backend_rows],
        title=(
            "S1b: compute backends through the sharded executor — "
            "serial-identical results asserted for every backend"
        ),
    )
    record_table("s1_backends", backend_table, metrics=rep.snapshot())
