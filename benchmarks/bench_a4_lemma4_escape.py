"""A4 — Lemma 4: probability escape from the local mixing set.

With ℓ = τ_s(β,ε) and S the witness set: the mass leaving S between ℓ and
2ℓ is ≤ ℓ·φ(S), and the 2ε condition holds at 2ℓ when τ·φ(S) ≪ 1.  The
path family is included as the contrast case where the assumption fails.
"""

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.spectral import set_conductance
from repro.utils import format_table
from repro.walks import distribution_at, find_witness_set


def run_all():
    rows = []
    cases = [
        ("barbell(4,16)", gen.beta_barbell(4, 16), 4, DEFAULT_EPS, False, 0),
        ("barbell(8,16)", gen.beta_barbell(8, 16), 8, DEFAULT_EPS, False, 0),
        ("expchain(4,32)",
         gen.clique_chain_of_expanders(4, 32, d=8, seed=7), 4, DEFAULT_EPS,
         False, 0),
        ("path(128)", gen.path_graph(128), 8, 0.4, True, 64),
    ]
    for name, g, beta, eps, lazy, src in cases:
        res, witness = find_witness_set(g, src, beta=beta, eps=eps, lazy=lazy)
        ell = res.time
        phi = set_conductance(g, witness)
        p_l = distribution_at(g, src, ell, lazy=lazy)
        p_2l = distribution_at(g, src, 2 * ell, lazy=lazy)
        escaped = float(p_l[witness].sum() - p_2l[witness].sum())
        dev_2l = float(np.abs(p_2l[witness] - 1.0 / len(witness)).sum())
        rows.append(
            [name, beta, eps, ell, len(witness), phi, ell * phi,
             escaped, escaped <= ell * phi + 1e-9, dev_2l,
             dev_2l < 2 * eps + ell * phi]
        )
    return rows


def test_a4_lemma4(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[8], "escape must be bounded by ell*phi(S)"
        if r[6] < 0.1:  # the o(1) regime the lemma assumes
            assert r[10], "2eps condition must hold at 2*ell"
    table = format_table(
        ["graph", "beta", "eps", "ell=tau", "|S|", "phi(S)", "ell*phi",
         "escaped", "esc<=bound", "dev@2ell", "2eps cond"],
        rows,
        title="A4: Lemma 4 — escape from the witness set between ell and 2*ell",
    )
    record_table("a4_lemma4_escape", table)
