"""W1 — the paper's open problem (§5): local mixing time vs weak conductance.

Exploratory reproduction of the conjectured envelope
``~1/Φ_β ≲ τ(β,ε) ≲ ~log n/Φ_β²`` on every family where Φ_β is computable.
"""

from repro.analysis.conjecture import weak_conductance_vs_local_mixing
from repro.utils import format_table


def test_w1_weak_conductance_conjecture(benchmark, record_table):
    points = benchmark.pedantic(
        weak_conductance_vs_local_mixing, iterations=1, rounds=1
    )
    rows = [
        [p.graph, p.n, p.beta, p.phi_kind, round(p.phi_beta, 3), p.tau_local,
         round(p.lower_env, 2), round(p.upper_env, 1), p.within_envelope]
        for p in points
    ]
    assert all(p.within_envelope for p in points), (
        "conjectured envelope violated — an interesting finding if real!"
    )
    table = format_table(
        ["graph", "n", "beta", "phi kind", "phi_beta", "tau_local",
         "1/phi", "log n/phi^2", "in envelope"],
        rows,
        title=(
            "W1: open problem (paper §5) — tau(beta) vs weak conductance "
            "(conjectured mixing-style envelope, constant 4)"
        ),
    )
    record_table("w1_weak_conductance", table)
