"""T2 — §2.3(c): log–log slope fits on the path family.

Claim: τ_mix = Θ(n²) and τ_local = Θ(n²/β²) (fixed β ⇒ both slope ≈ 2, with
the local curve shifted down by ≈ β²).  Measured with the lazy walk at
ε = 0.4 (deviation D2 in EXPERIMENTS.md explains the ε choice).
"""

from repro.engine import batched_local_mixing_times, batched_mixing_times
from repro.graphs import path_graph
from repro.utils import format_table, loglog_slope

EPS = 0.4
BETA = 8
SIZES = (48, 96, 192, 384)


def run_sweep():
    # Both measurements per size ride the batched engine (identical to the
    # per-source calls; one shared spectral cache entry per graph).
    rows = []
    for n in SIZES:
        g = path_graph(n)
        tm = batched_mixing_times(g, EPS, sources=[n // 2], lazy=True)[0]
        tl = batched_local_mixing_times(
            g, BETA, EPS, sources=[n // 2], lazy=True
        )[0].time
        rows.append([n, tm, tl, tm / max(tl, 1)])
    return rows


def test_t2_path_scaling(benchmark, record_table):
    rows = benchmark.pedantic(run_sweep, iterations=1, rounds=1)
    ns = [r[0] for r in rows]
    fit_mix = loglog_slope(ns, [r[1] for r in rows])
    fit_loc = loglog_slope(ns, [r[2] for r in rows])
    assert 1.6 <= fit_mix.exponent <= 2.4, "tau_mix should be ~ n^2"
    assert 1.5 <= fit_loc.exponent <= 2.5, "tau_local should be ~ n^2 (fixed beta)"
    table = format_table(
        ["n", "tau_mix", f"tau_local(b={BETA})", "ratio"],
        rows,
        title=(
            "T2: path scaling (lazy walk, eps=0.4) — fitted exponents: "
            f"mix {fit_mix.exponent:.2f} (claim 2), "
            f"local {fit_loc.exponent:.2f} (claim 2); "
            f"mean ratio {sum(r[3] for r in rows)/len(rows):.0f} "
            f"(claim ~b^2 = {BETA**2})"
        ),
    )
    record_table("t2_path_scaling", table)
