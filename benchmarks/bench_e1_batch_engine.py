"""E1 — the batched multi-source walk engine vs the seed per-source loop.

Claims (engine subsystem):

1. computing ``τ(β,ε) = max_v τ_v(β,ε)`` over *all* sources of a ~400-node
   regular graph is ≥ 5× faster on the batch engine (one block trajectory +
   one batched deviation oracle per step) than the seed per-source loop,
   with **identical** per-source results — same times, set sizes, bitwise-
   equal deviations and bookkeeping counters;
2. the fused ``_solve_chunk`` kernels (one search-free
   ``deviation_lower_bounds`` call per step for the whole ``(R, column)``
   grid, ported from the dynamic tracker) beat the PR-2 per-``R`` bracket
   search baseline (``prefilter="per_size"``), again with identical
   results.

3. every registered compute backend (``available_backends()``) produces
   results identical to the per-source loop — asserted unconditionally —
   and the mixed-precision ``float32`` screening path's measured speedup
   over the ``reference`` backend is reported (reported, not gated: the
   win is instance- and BLAS-dependent, the identity is not).

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance and
only asserts exactness plus nominal speedups, since shared runners time
unreliably.
"""

from repro.engine import available_backends, batched_local_mixing_times
from repro.graphs import random_regular
from repro.obs import BenchReporter
from repro.utils import format_table
from repro.walks import local_mixing_time

BETA = 4


def run_compare(n: int, d: int, seed: int = 1, reporter=None):
    rep = reporter if reporter is not None else BenchReporter("e1")
    g = random_regular(n, d, seed=seed)
    with rep.section("batch"):
        batch = batched_local_mixing_times(g, BETA)
    with rep.section("per_size"):
        baseline = batched_local_mixing_times(g, BETA, prefilter="per_size")
    with rep.section("loop"):
        loop = [local_mixing_time(g, s, BETA) for s in range(g.n)]
    return g, batch, baseline, loop, rep


def test_e1_batch_engine(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    rep = BenchReporter("e1_batch_engine")
    g, batch, baseline, loop, _ = run_compare(n, d, reporter=rep)
    t_batch = rep.seconds("batch")
    t_baseline = rep.seconds("per_size")
    t_loop = rep.seconds("loop")

    # Identical per-source outputs (LocalMixingResult equality covers time,
    # set_size, bitwise deviation, threshold and both counters) — for the
    # fused default AND the PR-2 per-size prefilter baseline.
    assert batch == loop
    assert baseline == loop

    speedup = t_loop / t_batch
    assert speedup >= (1.5 if quick_mode else 5.0), (
        f"batch engine speedup {speedup:.1f}x below target "
        f"(loop {t_loop:.2f}s, engine {t_batch:.2f}s)"
    )
    fused_speedup = t_baseline / t_batch
    assert fused_speedup >= (1.1 if quick_mode else 1.3), (
        f"fused _solve_chunk kernels {fused_speedup:.2f}x vs the per-size "
        f"bracket baseline (per_size {t_baseline:.2f}s, fused {t_batch:.2f}s)"
    )

    tau = max(r.time for r in batch)
    table = format_table(
        ["n", "d", "sources", "tau(beta=4)", "loop s", "per-size s",
         "fused s", "vs loop", "vs per-size"],
        [[g.n, d, g.n, tau, f"{t_loop:.2f}", f"{t_baseline:.2f}",
          f"{t_batch:.2f}", f"{speedup:.1f}x", f"{fused_speedup:.1f}x"]],
        title=(
            "E1: batched multi-source engine — fused kernels vs the PR-2 "
            "per-size prefilter vs the seed per-source loop (identical "
            "per-source results asserted for all three)"
        ),
    )
    record_table("e1_batch_engine", table, metrics=rep.snapshot())

    # Per-backend comparison: identity is asserted for every registered
    # backend unconditionally; speedups vs the reference backend are
    # reported only.
    backend_times = {}
    for name in available_backends():
        with rep.section(f"backend:{name}"):
            res = batched_local_mixing_times(g, BETA, backend=name)
        backend_times[name] = rep.seconds(f"backend:{name}")
        assert res == loop, (
            f"backend {name!r} diverged from the per-source loop"
        )
    t_ref = backend_times["reference"]
    backend_rows = [
        [name, f"{dt:.2f}", f"{t_ref / dt:.2f}x"]
        for name, dt in backend_times.items()
    ]
    backend_table = format_table(
        ["backend", "wall s", "vs reference"],
        backend_rows,
        title=(
            f"E1b: compute backends on the all-sources workload (n={g.n}) "
            f"— per-source results asserted identical to the loop for "
            f"every backend"
        ),
    )
    record_table("e1_backends", backend_table, metrics=rep.snapshot())
