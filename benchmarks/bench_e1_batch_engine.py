"""E1 — the batched multi-source walk engine vs the seed per-source loop.

Claim (engine subsystem): computing ``τ(β,ε) = max_v τ_v(β,ε)`` over *all*
sources of a ~400-node regular graph is ≥ 5× faster on the batch engine
(one block trajectory + one batched deviation oracle per step) than the
seed per-source loop, with **identical** per-source results — same times,
set sizes, bitwise-equal deviations and bookkeeping counters.

Quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke) shrinks the instance and
only asserts exactness plus a nominal speedup, since shared runners time
unreliably.
"""

import time

from repro.engine import batched_local_mixing_times
from repro.graphs import random_regular
from repro.utils import format_table
from repro.walks import local_mixing_time

BETA = 4


def run_compare(n: int, d: int, seed: int = 1):
    g = random_regular(n, d, seed=seed)
    t0 = time.perf_counter()
    batch = batched_local_mixing_times(g, BETA)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    loop = [local_mixing_time(g, s, BETA) for s in range(g.n)]
    t_loop = time.perf_counter() - t0
    return g, batch, loop, t_batch, t_loop


def test_e1_batch_engine(record_table, quick_mode):
    n, d = (120, 6) if quick_mode else (400, 8)
    g, batch, loop, t_batch, t_loop = run_compare(n, d)

    # Identical per-source outputs (LocalMixingResult equality covers time,
    # set_size, bitwise deviation, threshold and both counters).
    assert batch == loop

    speedup = t_loop / t_batch
    assert speedup >= (1.5 if quick_mode else 5.0), (
        f"batch engine speedup {speedup:.1f}x below target "
        f"(loop {t_loop:.2f}s, engine {t_batch:.2f}s)"
    )

    tau = max(r.time for r in batch)
    table = format_table(
        ["n", "d", "sources", "tau(beta=4)", "loop s", "engine s", "speedup"],
        [[g.n, d, g.n, tau, f"{t_loop:.2f}", f"{t_batch:.2f}",
          f"{speedup:.1f}x"]],
        title=(
            "E1: batched multi-source engine vs seed per-source loop "
            "(identical per-source results asserted)"
        ),
    )
    record_table("e1_batch_engine", table)
