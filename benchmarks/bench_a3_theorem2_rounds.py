"""A3 — Theorem 2: the exact algorithm (§3.2).

Output must equal the centralized grid-exact stopping time exactly; rounds
vs the τ·D̃·log n·log_{1+ε}β bound, with the footnote-8 BFS-reuse variant
compared side by side.
"""

from repro.algorithms import exact_local_mixing_time_congest
from repro.analysis import theorem2_round_bound
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.graphs.properties import diameter
from repro.utils import format_table
from repro.walks import local_mixing_time


CASES = [
    ("barbell", lambda: gen.beta_barbell(4, 16), 4),
    ("barbell", lambda: gen.beta_barbell(8, 8), 8),
    ("expchain", lambda: gen.clique_chain_of_expanders(4, 16, d=8, seed=5), 4),
    ("expander", lambda: gen.random_regular(64, 8, seed=6), 2),
]


def run_all():
    rows = []
    for name, maker, beta in CASES:
        g = maker()
        res = exact_local_mixing_time_congest(
            CongestNetwork(g), 0, beta=beta, seed=23
        )
        reused = exact_local_mixing_time_congest(
            CongestNetwork(g), 0, beta=beta, seed=23, reuse_bfs=True
        )
        cen = local_mixing_time(
            g, 0, beta=beta, sizes="grid", threshold_factor=4.0,
            t_schedule="all",
        ).time
        d = diameter(g)
        d_tilde = min(res.time, d)
        bound = theorem2_round_bound(res.time, d_tilde, g.n, DEFAULT_EPS, beta)
        rows.append(
            [name, g.n, beta, d, cen, res.time, res.rounds, reused.rounds,
             round(bound), res.rounds / bound]
        )
    return rows


def test_a3_theorem2(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[4] == r[5], "exact algorithm must match centralized value"
        assert r[9] <= 8.0, "rounds within a constant of the Theorem 2 bound"
    table = format_table(
        ["graph", "n", "beta", "D", "centralized", "exact_alg", "rounds",
         "rounds(bfs_reuse)", "thm2_bound", "ratio"],
        rows,
        title="A3: Theorem 2 — exact local mixing time and round ledger",
    )
    record_table("a3_theorem2_rounds", table)
