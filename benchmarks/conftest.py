"""Benchmark-harness plumbing.

Every benchmark measures one experiment from DESIGN.md §3 and *prints the
same rows EXPERIMENTS.md records*.  Because pytest captures stdout, tables
are registered through the ``record_table`` fixture and echoed in the
terminal summary (so they appear in ``bench_output.txt``); they are also
written to ``benchmarks/results/<name>.txt`` for later inspection.

A benchmark that measures through a :class:`repro.obs.BenchReporter`
passes ``record_table(name, text, metrics=reporter.snapshot())`` and the
harness dumps the snapshot as ``benchmarks/results/<name>.metrics.json``
next to the table — so every artifact ships with the section timings and
metric counters (kernel profile, cache/coalescer/executor state) that
produced it.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

_TABLES: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def quick_mode() -> bool:
    """True when ``REPRO_BENCH_QUICK`` is set (CI smoke settings): benchmarks
    that consume it shrink their instances and relax timing assertions so
    the experiment still runs end-to-end on a shared runner."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture
def record_table():
    """Call ``record_table(name, text)`` to register an experiment table;
    pass ``metrics=<JSON-ready dict>`` (typically a
    ``BenchReporter.snapshot()``) to also write
    ``results/<name>.metrics.json`` beside the table."""

    def _record(name: str, text: str, metrics: dict | None = None) -> None:
        _TABLES.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if metrics is not None:
            (_RESULTS_DIR / f"{name}.metrics.json").write_text(
                json.dumps(metrics, indent=2, sort_keys=True) + "\n"
            )

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("experiment tables (EXPERIMENTS.md)")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()
