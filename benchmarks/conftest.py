"""Benchmark-harness plumbing.

Every benchmark measures one experiment from DESIGN.md §3 and *prints the
same rows EXPERIMENTS.md records*.  Because pytest captures stdout, tables
are registered through the ``record_table`` fixture and echoed in the
terminal summary (so they appear in ``bench_output.txt``); they are also
written to ``benchmarks/results/<name>.txt`` for later inspection.
"""

from __future__ import annotations

import os
import pathlib

import pytest

_TABLES: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def quick_mode() -> bool:
    """True when ``REPRO_BENCH_QUICK`` is set (CI smoke settings): benchmarks
    that consume it shrink their instances and relax timing assertions so
    the experiment still runs end-to-end on a shared runner."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture
def record_table():
    """Call ``record_table(name, text)`` to register an experiment table."""

    def _record(name: str, text: str) -> None:
        _TABLES.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.section("experiment tables (EXPERIMENTS.md)")
    for name, text in _TABLES:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    _TABLES.clear()
