"""T1 — §2.3 graph-class comparison (the paper's central "table").

One row per (class, n): measured τ_mix vs measured τ_local and their ratio,
against the paper's claims:

  (a) complete   — both 1;
  (b) expander   — both Θ(log n), no gap;
  (c) path       — Θ(n²) vs Θ(n²/β²)  (measured at ε = 0.4; at the paper's
                   default ε the sub-path leaks too fast to ε-mix — see
                   EXPERIMENTS.md deviation D2);
  (d) β-barbell  — Ω(β²)-ish vs O(1): the headline gap.
"""

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.engine import batched_local_mixing_times, batched_mixing_times
from repro.graphs import generators as gen
from repro.utils import format_table


def measure(g, source, beta, eps, lazy=False):
    """One (τ_mix, τ_local) pair per instance — both on the batched engine
    (identical to the per-source ``mixing_time`` / ``local_mixing_time``
    calls; the two measurements share the per-graph spectral cache)."""
    tm = batched_mixing_times(g, eps, sources=[source], lazy=lazy)[0]
    tl = batched_local_mixing_times(
        g, beta, eps, sources=[source], lazy=lazy
    )[0].time
    return tm, tl


def run_all():
    rows = []

    for n in (64, 128, 256):
        g = gen.complete_graph(n)
        tm, tl = measure(g, 0, 4, DEFAULT_EPS)
        rows.append(["complete(a)", n, 4, DEFAULT_EPS, tm, tl, tm / tl, "1 vs 1"])

    for n in (64, 128, 256):
        g = gen.random_regular(n, 8, seed=n)
        tm, tl = measure(g, 0, 4, DEFAULT_EPS)
        rows.append(
            ["expander(b)", n, 4, DEFAULT_EPS, tm, tl, tm / max(tl, 1),
             "log n vs log n"]
        )

    eps_path = 0.4
    for n in (64, 128, 256):
        g = gen.path_graph(n)
        tm, tl = measure(g, n // 2, 8, eps_path, lazy=True)
        rows.append(
            ["path(c)", n, 8, eps_path, tm, tl, tm / max(tl, 1),
             "n^2 vs n^2/b^2"]
        )

    for beta in (4, 8, 16):
        g = gen.beta_barbell(beta, 16)
        tm, tl = measure(g, 0, beta, DEFAULT_EPS)
        rows.append(
            ["barbell(d)", g.n, beta, DEFAULT_EPS, tm, tl, tm / max(tl, 1),
             "Omega(b^2) vs O(1)"]
        )
    return rows


def test_t1_graph_classes(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    by_class = {}
    for r in rows:
        by_class.setdefault(r[0], []).append(r)
    # (a) complete: both equal and tiny
    for r in by_class["complete(a)"]:
        assert r[4] == 1 and r[5] == 1
    # (b) expander: no substantial gap
    for r in by_class["expander(b)"]:
        assert r[6] <= 8
    # (c) path: ratio grows ~ b^2 (leaky-boundary constants allowed)
    for r in by_class["path(c)"]:
        assert r[6] >= 8
    # (d) barbell: gap explodes with beta
    gaps = [r[6] for r in by_class["barbell(d)"]]
    assert gaps[0] > 50 and gaps[-1] > gaps[0]
    table = format_table(
        ["class", "n", "beta", "eps", "tau_mix", "tau_local", "ratio",
         "paper claim"],
        rows,
        title="T1: Section 2.3 — local vs global mixing across graph classes",
    )
    record_table("t1_graph_classes", table)
