"""P2 — §4 footnote 10: the CONGEST variant of partial spreading.

With per-exchange token caps the bound becomes Õ(τ + n/β): a cap of
Θ(n/β / log n) tokens per exchange should leave the hitting time within a
polylog factor of LOCAL, while cap = 1 stretches it toward Θ(n/β).
"""

import math

from repro.gossip import rounds_to_partial_spreading
from repro.graphs import generators as gen
from repro.utils import format_table


def run_all():
    rows = []
    for beta, clique in ((4, 16), (8, 16)):
        g = gen.beta_barbell(beta, clique)
        target = g.n // beta
        local_rounds = rounds_to_partial_spreading(g, beta, seed=1)
        capped_big = rounds_to_partial_spreading(
            g, beta, seed=1, token_cap=max(target // 4, 1)
        )
        capped_one = rounds_to_partial_spreading(g, beta, seed=1, token_cap=1)
        rows.append(
            [g.name, g.n, beta, target, local_rounds, capped_big, capped_one]
        )
    return rows


def test_p2_congest_gossip(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        n_over_beta = r[3]
        assert r[6] >= n_over_beta / 4, (
            "cap=1 forces Omega(n/beta)-ish rounds (each node needs n/beta "
            "tokens, one per exchange)"
        )
        assert r[5] <= 8 * r[4] + 8, "generous cap stays near LOCAL cost"
    table = format_table(
        ["graph", "n", "beta", "n/beta", "LOCAL rounds",
         "cap=n/4beta rounds", "cap=1 rounds"],
        rows,
        title="P2: CONGEST gossip (footnote 10) — token caps vs rounds",
    )
    record_table("p2_congest_gossip", table)
