"""P3 — Theorem 3 proof mechanics: per-phase holder doubling.

The proof runs phases of τ(β,ε) rounds; the tracked token's holder count
should roughly double per phase (every holder's copy re-mixes into a local
set) and hit n/β within O(log n) phases.
"""

import math

from repro.gossip import track_token_phases
from repro.graphs import generators as gen
from repro.utils import format_table
from repro.walks import local_mixing_time


def run_all():
    rows = []
    for name, g, beta in [
        ("barbell(4,16)", gen.beta_barbell(4, 16), 4),
        ("barbell(8,16)", gen.beta_barbell(8, 16), 8),
        ("expander(128)", gen.random_regular(128, 8, seed=10), 4),
    ]:
        tau = local_mixing_time(g, 0, beta=beta).time
        trace = track_token_phases(g, 0, beta=beta, phase_length=tau, seed=11)
        ratios = trace.doubling_ratios
        rows.append(
            [
                name,
                g.n,
                beta,
                tau,
                trace.target,
                trace.phases_to_target,
                math.ceil(math.log2(g.n)),
                " ".join(str(h) for h in trace.holders[:8]),
                round(sum(ratios) / len(ratios), 2) if ratios else float("nan"),
            ]
        )
    return rows


def test_p3_phase_doubling(benchmark, record_table):
    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    for r in rows:
        assert r[5] is not None, "token must reach n/beta holders"
        assert r[5] <= 4 * r[6], "within O(log n) phases"
        assert r[8] >= 1.4, "near-doubling growth while below target"
    table = format_table(
        ["graph", "n", "beta", "tau (phase len)", "target n/b",
         "phases to target", "log2 n", "holders per phase", "mean ratio"],
        rows,
        title="P3: Theorem 3 proof mechanics — holder doubling per tau-phase",
    )
    record_table("p3_phase_doubling", table)
