"""Applications of partial information spreading (paper §1 and §4).

The paper motivates partial spreading through the problems Censor-Hillel &
Shachnai solved with it:

* **maximum coverage** — pick ``k`` of the nodes' sets to cover as much of a
  universe as possible.  After partial spreading every node knows ≥ ``n/β``
  of the sets, runs the classic greedy locally, and the best local answer is
  selected; with good local connectivity this approaches the centralized
  greedy's ``(1 − 1/e)`` quality at a fraction of the communication.
* **leader election** — flood the maximum id via the same push–pull partner
  process; its hitting time is a *full* spreading problem, contrasting with
  the partial bound on bottlenecked graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.base import Graph
from repro.gossip.push_pull import PushPullSimulator
from repro.utils.seeding import as_rng

__all__ = [
    "CoverageResult",
    "distributed_max_coverage",
    "greedy_max_coverage",
    "LeaderElectionResult",
    "leader_election",
]


def greedy_max_coverage(sets: list[set[int]], k: int) -> tuple[set[int], list[int]]:
    """Classic centralized greedy: repeatedly take the set with the largest
    marginal coverage.  Returns ``(covered_elements, chosen_indices)``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    covered: set[int] = set()
    chosen: list[int] = []
    remaining = set(range(len(sets)))
    for _ in range(min(k, len(sets))):
        best_i, best_gain = -1, -1
        for i in sorted(remaining):
            gain = len(sets[i] - covered)
            if gain > best_gain:
                best_i, best_gain = i, gain
        if best_gain <= 0:
            break
        chosen.append(best_i)
        covered |= sets[best_i]
        remaining.discard(best_i)
    return covered, chosen


@dataclass(frozen=True)
class CoverageResult:
    """Distributed-vs-centralized maximum coverage comparison.

    Attributes
    ----------
    distributed_value:
        Elements covered by the best node-local greedy answer.
    centralized_value:
        Elements covered by the centralized greedy on all sets.
    ratio:
        ``distributed / centralized`` (≤ 1).
    gossip_rounds:
        Push–pull rounds spent spreading the sets.
    min_sets_known:
        The fewest sets any node knew when it ran its local greedy.
    """

    distributed_value: int
    centralized_value: int
    ratio: float
    gossip_rounds: int
    min_sets_known: int


def distributed_max_coverage(
    g: Graph,
    sets: list[set[int]],
    k: int,
    rounds: int,
    *,
    seed=None,
) -> CoverageResult:
    """Maximum coverage via partial spreading (see module docstring).

    ``sets[v]`` is the set initially held by node ``v`` (the "token" the
    gossip spreads is the set's *identity*; after ``rounds`` push–pull
    rounds each node greedily solves coverage over the sets whose
    identities it has collected)."""
    if len(sets) != g.n:
        raise ValueError("need exactly one set per node")
    sim = PushPullSimulator(g, seed=seed)
    sim.run(rounds)
    known = sim.tokens.as_bool()

    best_value = -1
    min_known = g.n
    for v in range(g.n):
        ids = np.flatnonzero(known[v])
        min_known = min(min_known, ids.size)
        local_sets = [sets[int(i)] for i in ids]
        covered, _ = greedy_max_coverage(local_sets, k)
        if len(covered) > best_value:
            best_value = len(covered)
    central_covered, _ = greedy_max_coverage(sets, k)
    central = len(central_covered)
    return CoverageResult(
        distributed_value=best_value,
        centralized_value=central,
        ratio=best_value / central if central else 1.0,
        gossip_rounds=rounds,
        min_sets_known=min_known,
    )


@dataclass(frozen=True)
class LeaderElectionResult:
    """Outcome of max-id leader election by push–pull.

    Attributes
    ----------
    leader:
        The elected node (holder of the maximum id).
    rounds:
        Rounds until every node knew the leader.
    """

    leader: int
    rounds: int


def leader_election(
    g: Graph,
    *,
    seed=None,
    max_rounds: int | None = None,
) -> LeaderElectionResult:
    """Elect the maximum-id node: each round, push–pull partners exchange
    the largest id they have seen; terminates when all nodes agree."""
    if max_rounds is None:
        max_rounds = 64 * g.n * max(1, math.ceil(math.log(g.n + 1))) + 64
    rng = as_rng(seed)
    best = np.arange(g.n, dtype=np.int64)
    leader = g.n - 1
    indptr, indices, deg = g.indptr, g.indices, g.degrees
    for r in range(1, max_rounds + 1):
        offs = rng.integers(0, deg)
        partners = indices[indptr[np.arange(g.n)] + offs]
        old = best.copy()
        np.maximum(best, old[partners], out=best)
        np.maximum.at(best, partners, old)
        if np.all(best == leader):
            return LeaderElectionResult(leader=leader, rounds=r)
    raise RuntimeError(f"leader election did not converge in {max_rounds} rounds")
