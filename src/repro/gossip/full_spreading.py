"""Full information spreading: every node must collect **all** ``n`` tokens.

The paper cites full spreading ([5], Censor-Hillel & Shachnai SODA'11) as a
problem partial spreading helps solve; here it serves as the contrast
experiment: on graphs with a large local-vs-global mixing gap (β-barbell),
partial spreading finishes in ``O(τ_local log n)`` rounds while full
spreading needs the global bottleneck to be crossed ``Θ(n)``-many times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.base import Graph
from repro.gossip.push_pull import PushPullSimulator, TokenMatrix

__all__ = ["FullSpreadingResult", "full_information_spreading"]


def _is_full(tokens: TokenMatrix) -> bool:
    return int(tokens.node_counts().min()) == tokens.n_tokens


@dataclass(frozen=True)
class FullSpreadingResult:
    """Outcome of a run-to-completion full-spreading experiment.

    Attributes
    ----------
    rounds:
        Push–pull rounds until every node held every token.
    """

    rounds: int


def full_information_spreading(
    g: Graph,
    *,
    seed=None,
    max_rounds: int | None = None,
    token_cap: int | None = None,
) -> FullSpreadingResult:
    """Run push–pull until every node holds all ``n`` tokens."""
    if max_rounds is None:
        max_rounds = 64 * g.n * max(1, math.ceil(math.log(g.n + 1))) + 64
    sim = PushPullSimulator(g, seed=seed, token_cap=token_cap)
    hit = sim.run_until(_is_full, max_rounds=max_rounds)
    if hit is None:
        raise RuntimeError(f"full spreading not reached in {max_rounds} rounds")
    return FullSpreadingResult(rounds=hit)
