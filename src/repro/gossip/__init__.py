"""Gossip layer: synchronous push–pull token exchange (LOCAL model),
partial information spreading (paper §4 / Theorem 3), full spreading, and
the downstream applications (maximum coverage, leader election)."""

from repro.gossip.push_pull import PushPullSimulator, TokenMatrix
from repro.gossip.partial_spreading import (
    PartialSpreadingResult,
    partial_spreading_with_termination,
    rounds_to_partial_spreading,
    spreading_success_probability,
)
from repro.gossip.full_spreading import FullSpreadingResult, full_information_spreading
from repro.gossip.phase_analysis import PhaseTrace, track_token_phases
from repro.gossip.applications import (
    CoverageResult,
    LeaderElectionResult,
    distributed_max_coverage,
    leader_election,
)

__all__ = [
    "PushPullSimulator",
    "TokenMatrix",
    "PartialSpreadingResult",
    "rounds_to_partial_spreading",
    "partial_spreading_with_termination",
    "spreading_success_probability",
    "FullSpreadingResult",
    "full_information_spreading",
    "PhaseTrace",
    "track_token_phases",
    "CoverageResult",
    "LeaderElectionResult",
    "distributed_max_coverage",
    "leader_election",
]
