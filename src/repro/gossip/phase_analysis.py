"""Instrumentation of the Theorem 3 proof mechanics.

The proof tracks one token through *phases* of ``τ(β,ε)`` rounds each: in
every phase each current holder's copy performs (in effect) a fresh random
walk that lands ≈ uniformly in a local mixing set, so the holder count
doubles per phase until coupon collection over the ≥ n/β-size set finishes
— ``O(log n)`` phases in total.

:func:`track_token_phases` measures exactly that curve for a real push–pull
execution so the doubling behaviour (and the coupon-collector tail) can be
seen, tested, and plotted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.graphs.base import Graph
from repro.gossip.push_pull import PushPullSimulator
from repro.utils.seeding import as_rng

__all__ = ["PhaseTrace", "track_token_phases"]


@dataclass(frozen=True)
class PhaseTrace:
    """Per-phase holder counts for one tracked token.

    Attributes
    ----------
    token:
        The tracked token (= its origin node).
    phase_length:
        Rounds per phase (the τ(β,ε) used).
    holders:
        ``holders[i]`` = number of nodes holding the token after phase
        ``i`` (index 0 = before any round, value 1).
    target:
        The Definition 3 coverage target ``⌈n/β⌉``.
    phases_to_target:
        First phase index at which ``holders ≥ target`` (None if never
        within the run).
    """

    token: int
    phase_length: int
    holders: list[int]
    target: int
    phases_to_target: int | None

    @property
    def doubling_ratios(self) -> list[float]:
        """Growth ratio per phase while below the target (the proof's
        doubling argument predicts ratios ≈ 2 in the early phases)."""
        out = []
        for a, b in zip(self.holders, self.holders[1:]):
            if a >= self.target:
                break
            out.append(b / a)
        return out


def track_token_phases(
    g: Graph,
    token: int,
    beta: float,
    phase_length: int,
    *,
    max_phases: int | None = None,
    seed=None,
) -> PhaseTrace:
    """Run push–pull and record the tracked token's holder count after
    every ``phase_length`` rounds (see module docstring)."""
    if not 0 <= token < g.n:
        raise ValueError("token out of range")
    if phase_length < 1:
        raise ValueError("phase_length must be >= 1")
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if max_phases is None:
        max_phases = 4 * max(1, math.ceil(math.log2(g.n))) + 8
    target = math.ceil(g.n / beta)
    sim = PushPullSimulator(g, seed=seed)
    holders = [1]
    hit = None
    for phase in range(1, max_phases + 1):
        sim.run(phase_length)
        count = int(sim.tokens.token_coverage()[token])
        holders.append(count)
        if hit is None and count >= target:
            hit = phase
            break
    return PhaseTrace(
        token=token,
        phase_length=phase_length,
        holders=holders,
        target=target,
        phases_to_target=hit,
    )
