"""Synchronous push–pull gossip (paper §4).

Every round, every node picks one uniformly random neighbor and the pair
*exchanges everything* (push and pull) — the LOCAL-model assumption the
paper (and the prior partial-information-spreading literature it cites)
analyzes.  An optional per-exchange token cap models the CONGEST variant of
footnote 10 (``Õ(τ + n/β)`` rounds).

Token sets are stored as a packed bit matrix (:class:`TokenMatrix`): row
``u`` is node ``u``'s token set, one bit per token.  Merges are bytewise
ORs and counts use ``np.bitwise_count``, so a round costs ``O(n²/8)`` bytes
of work — comfortably fast for the experiment sizes (n ≤ a few thousand).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.utils.seeding import as_rng

__all__ = ["TokenMatrix", "PushPullSimulator"]


class TokenMatrix:
    """Packed boolean ``n_nodes × n_tokens`` membership matrix.

    ``bits[u]`` is node ``u``'s token set packed 8-per-byte (big-endian bit
    order, as :func:`numpy.packbits` produces).
    """

    def __init__(self, n_nodes: int, n_tokens: int):
        if n_nodes < 1 or n_tokens < 1:
            raise ValueError("need at least one node and one token")
        self.n_nodes = n_nodes
        self.n_tokens = n_tokens
        self._words = (n_tokens + 7) // 8
        self.bits = np.zeros((n_nodes, self._words), dtype=np.uint8)

    @classmethod
    def identity(cls, n: int) -> "TokenMatrix":
        """Node ``u`` starts holding exactly token ``u`` (the paper's
        initial condition: one distinct message per node)."""
        tm = cls(n, n)
        rows = np.arange(n)
        tm.bits[rows, rows // 8] = np.uint8(0x80) >> (rows % 8)
        return tm

    def give(self, node: int, token: int) -> None:
        """Hand ``token`` to ``node``."""
        self.bits[node, token // 8] |= np.uint8(0x80) >> (token % 8)

    def has(self, node: int, token: int) -> bool:
        """Does ``node`` hold ``token``?"""
        return bool(self.bits[node, token // 8] & (np.uint8(0x80) >> (token % 8)))

    def node_counts(self) -> np.ndarray:
        """Tokens held per node (length ``n_nodes``)."""
        return np.bitwise_count(self.bits).sum(axis=1)

    def token_coverage(self) -> np.ndarray:
        """Nodes holding each token (length ``n_tokens``)."""
        unpacked = np.unpackbits(self.bits, axis=1, count=self.n_tokens)
        return unpacked.sum(axis=0, dtype=np.int64)

    def as_bool(self) -> np.ndarray:
        """Dense boolean view (testing convenience)."""
        return (
            np.unpackbits(self.bits, axis=1, count=self.n_tokens).astype(bool)
        )

    def copy(self) -> "TokenMatrix":
        out = TokenMatrix(self.n_nodes, self.n_tokens)
        out.bits = self.bits.copy()
        return out


class PushPullSimulator:
    """Run synchronous push–pull rounds over a graph.

    Parameters
    ----------
    g:
        Topology.
    seed:
        RNG for partner choices.
    tokens:
        Initial :class:`TokenMatrix`; default: one distinct token per node.
    token_cap:
        ``None`` = LOCAL model (exchange everything, the paper's setting
        for Theorem 3).  An integer caps how many *missing* tokens each
        direction of an exchange can transfer per round, modeling the
        CONGEST bandwidth discussion of footnote 10.
    """

    def __init__(
        self,
        g: Graph,
        *,
        seed=None,
        tokens: TokenMatrix | None = None,
        token_cap: int | None = None,
    ):
        g.require_connected()
        self.graph = g
        self.rng = as_rng(seed)
        self.tokens = tokens or TokenMatrix.identity(g.n)
        if self.tokens.n_nodes != g.n:
            raise ValueError("token matrix size does not match the graph")
        if token_cap is not None and token_cap < 1:
            raise ValueError("token_cap must be >= 1 or None")
        self.token_cap = token_cap
        self.rounds = 0

    def _pick_partners(self) -> np.ndarray:
        g = self.graph
        offs = self.rng.integers(0, g.degrees)
        return g.indices[g.indptr[np.arange(g.n)] + offs]

    def step(self) -> None:
        """One synchronous round: all exchanges happen against the
        start-of-round state (a node both pushes to and pulls from its
        chosen partner; it may also be chosen by others, in which case it
        serves those exchanges too, as in the standard model)."""
        partners = self._pick_partners()
        old = self.tokens.bits.copy()
        new = self.tokens.bits
        if self.token_cap is None:
            for u in range(self.graph.n):
                v = int(partners[u])
                new[u] |= old[v]
                new[v] |= old[u]
        else:
            for u in range(self.graph.n):
                v = int(partners[u])
                self._capped_transfer(old, new, v, u)
                self._capped_transfer(old, new, u, v)
        self.rounds += 1

    def _capped_transfer(self, old, new, src: int, dst: int) -> None:
        """Move up to ``token_cap`` tokens the destination is missing."""
        missing = old[src] & ~old[dst]
        count = int(np.bitwise_count(missing).sum())
        if count <= self.token_cap:
            new[dst] |= missing
            return
        # Take the first `token_cap` missing tokens (deterministic; which
        # ones are taken does not affect the round bounds being measured).
        bits = np.unpackbits(missing)
        idx = np.flatnonzero(bits)[: self.token_cap]
        take = np.zeros(bits.size, dtype=np.uint8)
        take[idx] = 1
        new[dst] |= np.packbits(take)

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` rounds."""
        for _ in range(rounds):
            self.step()

    def run_until(self, predicate, *, max_rounds: int) -> int | None:
        """Step until ``predicate(tokens)`` holds; return the round count,
        or ``None`` if ``max_rounds`` elapsed first."""
        if predicate(self.tokens):
            return self.rounds
        for _ in range(max_rounds):
            self.step()
            if predicate(self.tokens):
                return self.rounds
        return None
