"""Partial information spreading (paper §4, Definition 3 and Theorem 3).

``(δ, β)``-partial spreading: with probability ≥ 1 − δ, every token reaches
at least ``n/β`` nodes **and** every node collects at least ``n/β`` distinct
tokens.  Theorem 3: push–pull achieves this in ``O(τ(β,ε)·log n)`` rounds
whp — and because the reproduced paper can *compute* ``τ(β,ε)``
(Algorithm 2), the bound doubles as a concrete **termination condition**
for the gossip, which weak-conductance-based analyses cannot provide
(§4, "the algorithm does not specify any termination condition").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.base import Graph
from repro.gossip.push_pull import PushPullSimulator, TokenMatrix
from repro.utils.seeding import as_rng, spawn_rngs

__all__ = [
    "is_partially_spread",
    "rounds_to_partial_spreading",
    "PartialSpreadingResult",
    "partial_spreading_with_termination",
    "spreading_success_probability",
]


def is_partially_spread(tokens: TokenMatrix, beta: float) -> bool:
    """The Definition 3 predicate: every token at ≥ ``n/β`` nodes and every
    node holding ≥ ``n/β`` tokens."""
    need = math.ceil(tokens.n_nodes / beta)
    if int(tokens.node_counts().min()) < need:
        return False
    return int(tokens.token_coverage().min()) >= need


def rounds_to_partial_spreading(
    g: Graph,
    beta: float,
    *,
    seed=None,
    max_rounds: int | None = None,
    token_cap: int | None = None,
) -> int:
    """Empirical hitting time: push–pull rounds until Definition 3 holds.

    Raises ``RuntimeError`` if ``max_rounds`` (default ``8·n·log n + 64``)
    elapses first — on a connected graph the predicate is eventually
    reached, so the default cap is generous.
    """
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if max_rounds is None:
        max_rounds = 8 * g.n * max(1, math.ceil(math.log(g.n + 1))) + 64
    sim = PushPullSimulator(g, seed=seed, token_cap=token_cap)
    hit = sim.run_until(
        lambda tm: is_partially_spread(tm, beta), max_rounds=max_rounds
    )
    if hit is None:
        raise RuntimeError(
            f"partial spreading not reached within {max_rounds} rounds"
        )
    return hit


@dataclass(frozen=True)
class PartialSpreadingResult:
    """Outcome of a fixed-horizon push–pull run (Theorem 3 experiment).

    Attributes
    ----------
    rounds:
        The horizon that was run (the Theorem 3 budget).
    success:
        Whether Definition 3 held at the horizon.
    min_token_coverage / min_node_collection:
        The two Definition 3 quantities at the horizon.
    target:
        The required count ``⌈n/β⌉``.
    """

    rounds: int
    success: bool
    min_token_coverage: int
    min_node_collection: int
    target: int


def partial_spreading_with_termination(
    g: Graph,
    beta: float,
    local_mixing_time: int,
    *,
    horizon_constant: float = 2.0,
    seed=None,
    token_cap: int | None = None,
) -> PartialSpreadingResult:
    """Run push–pull for the Theorem 3 budget
    ``⌈horizon_constant · τ(β,ε) · ln n⌉`` rounds and report whether
    ``(δ,β)``-partial spreading held — the paper's headline application:
    the computed local mixing time *is* the termination condition."""
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if local_mixing_time < 1:
        raise ValueError("local_mixing_time must be >= 1")
    horizon = math.ceil(
        horizon_constant * local_mixing_time * max(1.0, math.log(g.n))
    )
    sim = PushPullSimulator(g, seed=seed, token_cap=token_cap)
    sim.run(horizon)
    cov = int(sim.tokens.token_coverage().min())
    col = int(sim.tokens.node_counts().min())
    need = math.ceil(g.n / beta)
    return PartialSpreadingResult(
        rounds=horizon,
        success=(cov >= need and col >= need),
        min_token_coverage=cov,
        min_node_collection=col,
        target=need,
    )


def spreading_success_probability(
    g: Graph,
    beta: float,
    rounds: int,
    *,
    trials: int = 20,
    seed=None,
    token_cap: int | None = None,
) -> float:
    """Fraction of independent trials in which ``rounds`` push–pull rounds
    achieved Definition 3 — the empirical stand-in for the paper's "with
    high probability" claims (DESIGN.md §5)."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rngs = spawn_rngs(seed, trials)
    wins = 0
    for rng in rngs:
        sim = PushPullSimulator(g, seed=rng, token_cap=token_cap)
        sim.run(rounds)
        if is_partially_spread(sim.tokens, beta):
            wins += 1
    return wins / trials
