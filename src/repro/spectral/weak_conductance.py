"""Weak conductance Φ_c(G) (Censor-Hillel & Shachnai, PODC 2010).

The weak conductance that inspired the paper's local mixing time is

    Φ_c(G) = min_{v ∈ V}  max_{S ∋ v, |S| ≥ n/c}  Φ(G[S]),

i.e. every vertex belongs to some large-enough induced subgraph with good
conductance.  Graphs with constant Φ_c admit fast *partial* information
spreading even when the global conductance Φ is tiny (the β-barbell is the
canonical example: Φ = O(β/n²) but Φ_β = Θ(1) via the home clique).

Computing Φ_c exactly is doubly exponential in spirit (max over subsets of an
exponential family, each needing a conductance computation that is itself
exponential).  The paper itself notes "it is not clear how to compute weak
conductance efficiently" — this module therefore offers three levels:

1. :func:`weak_conductance_exact` — full enumeration, ``n ≤ 12``; ground
   truth for tests.
2. :func:`barbell_weak_conductance` — closed form for the β-barbell family.
3. :func:`weak_conductance_lower_bound` — a certified lower bound from any
   explicit cover of V by candidate subgraphs (we use cliques/blocks when the
   caller knows them, else BFS balls).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.graphs.base import Graph
from repro.spectral.conductance import graph_conductance_exact

__all__ = [
    "weak_conductance_exact",
    "weak_conductance_lower_bound",
    "barbell_weak_conductance",
]

_EXACT_LIMIT = 12


def _induced_conductance(g: Graph, subset) -> float:
    sub, _ = g.induced_subgraph(list(subset))
    if sub.n == 1:
        return 1.0  # conductance of a single node is conventionally perfect
    if not sub.is_connected:
        return 0.0
    return graph_conductance_exact(sub)


def weak_conductance_exact(g: Graph, c: float) -> float:
    """Exact Φ_c(G) by enumerating, for each vertex, all subsets of size
    ``≥ n/c`` containing it.  ``O(2^n · 2^n)`` — only for ``n ≤ 12``."""
    g.require_connected()
    if g.n > _EXACT_LIMIT:
        raise ValueError(f"exact weak conductance needs n <= {_EXACT_LIMIT}")
    if c < 1:
        raise ValueError("c must be >= 1")
    min_size = int(np.ceil(g.n / c))
    best_per_vertex = np.zeros(g.n)
    others = list(range(g.n))
    # Precompute the conductance of every connected subset of size >= min_size
    # once, then fold the max into each member vertex.
    for size in range(min_size, g.n + 1):
        for subset in combinations(others, size):
            phi = _induced_conductance(g, subset)
            for v in subset:
                if phi > best_per_vertex[v]:
                    best_per_vertex[v] = phi
    return float(best_per_vertex.min())


def weak_conductance_lower_bound(
    g: Graph, c: float, cover: list[np.ndarray] | None = None
) -> float:
    """Certified lower bound on Φ_c(G) from an explicit cover.

    Any family of vertex subsets, each of size ``≥ n/c``, whose union is V,
    witnesses ``Φ_c(G) ≥ min over used subsets of Φ(G[S])`` — for each vertex
    pick a covering subset; the true max over subsets containing it is at
    least that subset's conductance.

    ``cover=None`` uses BFS balls grown to size ``⌈n/c⌉`` around a hitting
    set of centers (greedy).  Induced conductance is computed exactly for
    tiny subgraphs and by Fiedler sweep (an upper bound on Φ(G[S]) — in that
    case the result is a heuristic estimate, flagged by returning ``-phi``
    …no: we keep it simple and *always* return the sweep value; for subgraphs
    small enough the exact value is used.  Treat the output as an estimate
    unless all blocks are ≤ 18 nodes).
    """
    g.require_connected()
    min_size = int(np.ceil(g.n / c))
    if cover is None:
        cover = _bfs_ball_cover(g, min_size)
    covered = np.zeros(g.n, dtype=bool)
    worst = np.inf
    for subset in cover:
        subset = np.asarray(subset, dtype=np.int64)
        if subset.size < min_size:
            raise ValueError("cover contains a subset smaller than n/c")
        sub, _ = g.induced_subgraph(subset)
        if not sub.is_connected:
            raise ValueError("cover contains a disconnected induced subgraph")
        if sub.n <= 18:
            phi = graph_conductance_exact(sub)
        else:
            from repro.spectral.conductance import sweep_cut_conductance

            phi, _ = sweep_cut_conductance(sub)
        worst = min(worst, phi)
        covered[subset] = True
    if not covered.all():
        raise ValueError("cover does not cover every vertex")
    return float(worst)


def _bfs_ball_cover(g: Graph, min_size: int) -> list[np.ndarray]:
    """Greedy cover of V by BFS balls of ≥ min_size nodes."""
    from repro.graphs.properties import shortest_path_lengths_from

    uncovered = np.ones(g.n, dtype=bool)
    cover = []
    while uncovered.any():
        center = int(np.flatnonzero(uncovered)[0])
        dist = shortest_path_lengths_from(g, center)
        order = np.argsort(dist, kind="stable")
        ball = order[: max(min_size, 1)]
        cover.append(ball)
        uncovered[ball] = False
    return cover


def barbell_weak_conductance(beta: int, clique_size: int) -> float:
    """Closed-form Φ_β for the β-barbell with clique size ``k``.

    Every vertex sits in a clique of size ``k = n/β``; the induced subgraph
    on a clique is K_k whose conductance is the balanced-cut value

        Φ(K_k) = ⌈k/2⌉·⌊k/2⌋ / (⌊k/2⌋·(k-1))  =  ⌈k/2⌉/(k-1)  ≥ 1/2.

    Hence Φ_β(β-barbell) ≥ 1/2 = Θ(1), the constant the paper's §1 gap
    argument relies on.  (The true Φ_β may be slightly larger via subgraphs
    that include bridge nodes; we return the clique certificate.)
    """
    if clique_size < 2:
        raise ValueError("clique_size must be >= 2")
    k = clique_size
    half = k // 2
    return (k - half) * half / (half * (k - 1))
