"""Distance-to-stationarity profiles ``d(t) = ‖p_t − π‖₁``.

The textbook mixing profile: useful for plotting, for locating ε-crossings
at several ε at once, and as the global counterpart of
:func:`repro.walks.local_mixing.local_mixing_profile` in the monotonicity
experiment (M1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BipartiteGraphError
from repro.graphs.base import Graph
from repro.spectral.stationary import stationary_distribution
from repro.walks.distribution import distribution_trajectory

__all__ = ["distance_profile", "eps_crossings"]


def distance_profile(
    g: Graph, source: int, t_max: int, *, lazy: bool = False
) -> np.ndarray:
    """``d(t)`` for ``t = 0..t_max`` (length ``t_max + 1``).

    By Lemma 1 the returned sequence is non-increasing; a test asserts it.
    """
    if t_max < 0:
        raise ValueError("t_max must be non-negative")
    if not lazy and g.is_bipartite:
        raise BipartiteGraphError(f"{g.name} is bipartite; pass lazy=True")
    pi = stationary_distribution(g)
    out = np.empty(t_max + 1, dtype=np.float64)
    for t, p in distribution_trajectory(g, source, lazy=lazy, t_max=t_max):
        out[t] = float(np.abs(p - pi).sum())
    return out


def eps_crossings(
    profile: np.ndarray, eps_values
) -> dict[float, int | None]:
    """First index where the (non-increasing) profile drops below each ε.

    ``None`` when the profile never crosses within its length — callers
    extend ``t_max`` and retry.
    """
    profile = np.asarray(profile, dtype=np.float64)
    out: dict[float, int | None] = {}
    for eps in eps_values:
        hits = np.flatnonzero(profile < eps)
        out[float(eps)] = int(hits[0]) if hits.size else None
    return out
