"""Random-walk operators as sparse matrices.

The paper writes the walk evolution as ``p_{t+1} = A p_t`` where ``A`` is the
*transpose* of the transition probability matrix (Section 2.1):
``A[i, j] = 1/d(j)`` if ``(i, j) ∈ E``.  We call ``A`` the *walk operator* and
keep the row-stochastic matrix ``P = Aᵀ`` available for clarity.

For bipartite graphs the simple walk is periodic; the *lazy* operator
``(I + A)/2`` (stay put with probability 1/2) fixes that (paper, footnote 5).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.base import Graph

__all__ = ["transition_matrix", "walk_operator", "lazy_walk_operator"]


def transition_matrix(g: Graph) -> sp.csr_matrix:
    """Row-stochastic transition matrix ``P`` with ``P[u, v] = 1/d(u)`` for
    each edge ``(u, v)``."""
    deg = g.degrees.astype(np.float64)
    if np.any(deg == 0):
        # An isolated node has no outgoing transitions; walks are undefined.
        from repro.errors import GraphError

        raise GraphError(f"{g.name} has isolated nodes; the walk is undefined")
    data = np.repeat(1.0 / deg, g.degrees)
    return sp.csr_matrix((data, g.indices, g.indptr), shape=(g.n, g.n))


def walk_operator(g: Graph, *, lazy: bool = False) -> sp.csr_matrix:
    """The paper's ``A = Pᵀ`` (column-stochastic): ``p_{t+1} = A @ p_t``.

    With ``lazy=True`` returns ``(I + A)/2``.
    """
    A = transition_matrix(g).T.tocsr()
    if lazy:
        A = (sp.identity(g.n, format="csr") + A) * 0.5
    return A


def lazy_walk_operator(g: Graph) -> sp.csr_matrix:
    """Shorthand for ``walk_operator(g, lazy=True)``."""
    return walk_operator(g, lazy=True)
