"""Eigenvalues and spectral gap of the random walk.

The paper quotes the standard relations (Section 1)

    1/(1-λ₂)  ≤  τ_mix  ≤  log n / (1-λ₂)        and
    Θ(1-λ₂)   ≤  Φ      ≤  Θ(√(1-λ₂)),

where λ₂ is the second largest eigenvalue of the walk matrix.  This module
computes the spectrum of the *symmetrized* walk operator
``N = D^{-1/2} A D^{-1/2}`` (similar to ``P``, hence same spectrum, but
symmetric so `eigh`/`eigsh` apply and eigenvalues are real).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.base import Graph

__all__ = ["eigenvalues", "second_eigenvalue", "spectral_gap"]

#: Above this size, switch from dense ``eigh`` to sparse Lanczos.
_DENSE_LIMIT = 600


def _normalized_adjacency(g: Graph, *, lazy: bool) -> sp.csr_matrix:
    deg = g.degrees.astype(np.float64)
    inv_sqrt = 1.0 / np.sqrt(deg)
    A = g.adjacency_matrix()
    N = sp.diags(inv_sqrt) @ A @ sp.diags(inv_sqrt)
    if lazy:
        N = (sp.identity(g.n, format="csr") + N) * 0.5
    return N.tocsr()


def eigenvalues(g: Graph, *, lazy: bool = False, k: int | None = None) -> np.ndarray:
    """Eigenvalues of the walk matrix, descending.

    ``k=None`` returns all ``n`` eigenvalues (dense path; ``O(n³)``, intended
    for ``n ≲ 2000``).  With ``k`` set, returns the ``k`` largest by
    magnitude via Lanczos (adds ``λ=1`` which Lanczos always finds first).
    """
    g.require_connected()
    N = _normalized_adjacency(g, lazy=lazy)
    if k is None:
        vals = np.linalg.eigvalsh(N.toarray())
        return vals[::-1]
    k = min(k, g.n - 2)
    vals = spla.eigsh(N, k=max(k, 1), which="LA", return_eigenvectors=False)
    return np.sort(vals)[::-1]


def second_eigenvalue(g: Graph, *, lazy: bool = False) -> float:
    """λ₂: the second largest eigenvalue of the walk matrix."""
    if g.n <= _DENSE_LIMIT:
        return float(eigenvalues(g, lazy=lazy)[1])
    vals = eigenvalues(g, lazy=lazy, k=2)
    return float(vals[1])


def spectral_gap(g: Graph, *, lazy: bool = False, absolute: bool = False) -> float:
    """Spectral gap ``1 - λ₂`` (or ``1 - max(λ₂, |λ_n|)`` with
    ``absolute=True``, which governs mixing of the simple walk)."""
    if g.n <= _DENSE_LIMIT:
        vals = eigenvalues(g, lazy=lazy)
        lam2 = float(vals[1])
        lam_n = float(vals[-1])
    else:
        N = _normalized_adjacency(g, lazy=lazy)
        top = spla.eigsh(N, k=2, which="LA", return_eigenvectors=False)
        lam2 = float(np.sort(top)[0])
        bot = spla.eigsh(N, k=1, which="SA", return_eigenvectors=False)
        lam_n = float(bot[0])
    if absolute:
        return 1.0 - max(lam2, abs(lam_n))
    return 1.0 - lam2
