"""Spectral toolkit: walk operators, stationary distributions, spectral gaps,
conductance (exact / sweep / Cheeger), and weak conductance."""

from repro.spectral.transition import (
    lazy_walk_operator,
    transition_matrix,
    walk_operator,
)
from repro.spectral.stationary import stationary_distribution, volume
from repro.spectral.gap import spectral_gap, second_eigenvalue, eigenvalues
from repro.spectral.conductance import (
    graph_conductance_exact,
    set_conductance,
    sweep_cut_conductance,
)
from repro.spectral.weak_conductance import (
    weak_conductance_exact,
    weak_conductance_lower_bound,
    barbell_weak_conductance,
)
from repro.spectral.profiles import distance_profile, eps_crossings
from repro.spectral.bounds import (
    cheeger_bounds,
    mixing_time_bounds_from_gap,
    relaxation_time,
)

__all__ = [
    "walk_operator",
    "lazy_walk_operator",
    "transition_matrix",
    "stationary_distribution",
    "volume",
    "spectral_gap",
    "second_eigenvalue",
    "eigenvalues",
    "set_conductance",
    "graph_conductance_exact",
    "sweep_cut_conductance",
    "weak_conductance_exact",
    "weak_conductance_lower_bound",
    "barbell_weak_conductance",
    "distance_profile",
    "eps_crossings",
    "cheeger_bounds",
    "mixing_time_bounds_from_gap",
    "relaxation_time",
]
