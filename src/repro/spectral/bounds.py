"""Textbook bounds linking spectral gap, conductance and mixing time.

Paper Section 1 quotes (from Jerrum–Sinclair and Levin–Peres–Wilmer):

    1/(1-λ₂) ≤ τ_mix ≤ log n/(1-λ₂)
    Θ(1-λ₂) ≤ Φ ≤ Θ(√(1-λ₂))      (Cheeger)

These are used by the experiment harness as sanity envelopes around the
measured mixing times and by the Kempe–McSherry baseline to turn a λ₂
estimate into a mixing-time estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.base import Graph
from repro.spectral.gap import spectral_gap

__all__ = [
    "relaxation_time",
    "mixing_time_bounds_from_gap",
    "cheeger_bounds",
    "MixingBounds",
]


@dataclass(frozen=True)
class MixingBounds:
    """Envelope ``lower ≤ τ_mix ≤ upper`` derived from the spectral gap."""

    lower: float
    upper: float
    gap: float


def relaxation_time(g: Graph, *, lazy: bool = False) -> float:
    """Relaxation time ``1/(1-λ₂)`` — the lower member of the envelope."""
    gap = spectral_gap(g, lazy=lazy, absolute=not lazy)
    if gap <= 0:
        return math.inf
    return 1.0 / gap


def mixing_time_bounds_from_gap(
    g: Graph, eps: float, *, lazy: bool = False
) -> MixingBounds:
    """Spectral envelope on the ε-mixing time.

    Standard bounds (LPW Thm 12.4/12.5, adapted to L1 with π_min = d_min/2m):

        (1/gap - 1)·ln(1/2ε)  ≤  τ(ε)  ≤  (1/gap)·ln(n/(ε·π_min·…))

    We use the simple forms the paper quotes: lower ``≈ 1/gap`` and upper
    ``≈ log(n/ε)/gap``; exactness is not needed since these serve as sanity
    envelopes (tests allow the measured value to sit within a constant of
    them).
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    gap = spectral_gap(g, lazy=lazy, absolute=not lazy)
    if gap <= 0:
        return MixingBounds(math.inf, math.inf, gap)
    lower = max((1.0 / gap - 1.0) * math.log(1.0 / (2.0 * eps)), 0.0)
    upper = math.log(g.n / eps) / gap
    return MixingBounds(lower=lower, upper=upper, gap=gap)


def cheeger_bounds(g: Graph, *, lazy: bool = False) -> tuple[float, float]:
    """Cheeger inequality: returns ``(gap/2, sqrt(2·gap))`` bracketing Φ(G).

    (For the lazy walk the discrete Cheeger inequality reads
    ``gap/2 ≤ Φ ≤ √(2·gap)``.)
    """
    gap = spectral_gap(g, lazy=lazy)
    return gap / 2.0, math.sqrt(2.0 * gap)
