"""Stationary distributions and volumes (paper Section 2.1/2.2)."""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = ["stationary_distribution", "volume"]


def stationary_distribution(g: Graph) -> np.ndarray:
    """The stationary distribution ``π(v) = d(v) / 2m`` of the simple (and
    lazy) walk on an undirected connected graph.

    Raises if the graph is disconnected — π would not be unique.
    """
    g.require_connected()
    deg = g.degrees.astype(np.float64)
    return deg / deg.sum()


def volume(g: Graph, nodes=None) -> int:
    """Volume ``µ(S) = Σ_{v∈S} d(v)``; ``µ(V) = 2m`` when ``nodes is None``."""
    if nodes is None:
        return g.volume
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size and (nodes.min() < 0 or nodes.max() >= g.n):
        raise ValueError("node label out of range")
    return int(g.degrees[nodes].sum())
