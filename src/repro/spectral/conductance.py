"""Cut and graph conductance (paper Section 2.2).

``φ(S) = |E(S, V\\S)| / min{µ(S), µ(V\\S)}`` for a cut, and the graph
conductance ``Φ = min_S φ(S)``.  Exact graph conductance enumerates all cuts
(``O(2^n)``, tiny graphs only, used as ground truth in tests); the sweep cut
over the Fiedler vector gives the practical upper bound guaranteed by
Cheeger's inequality.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.base import Graph

__all__ = [
    "set_conductance",
    "cut_edges",
    "graph_conductance_exact",
    "sweep_cut_conductance",
]

_EXACT_LIMIT = 18


def cut_edges(g: Graph, nodes) -> int:
    """Number of edges crossing the cut ``(S, V\\S)``."""
    mask = np.zeros(g.n, dtype=bool)
    nodes = np.asarray(nodes, dtype=np.int64)
    mask[nodes] = True
    # For each node in S count neighbors outside S; each crossing edge is
    # counted exactly once this way.
    count = 0
    for u in nodes:
        count += int(np.count_nonzero(~mask[g.neighbors(int(u))]))
    return count


def set_conductance(g: Graph, nodes) -> float:
    """Conductance ``φ(S)`` of the cut defined by ``nodes``.

    Raises if ``S`` is empty or the whole vertex set (the cut is undefined).
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size == 0 or nodes.size == g.n:
        raise ValueError("conductance needs a proper non-empty subset")
    vol_s = int(g.degrees[nodes].sum())
    vol_rest = g.volume - vol_s
    boundary = cut_edges(g, nodes)
    return boundary / min(vol_s, vol_rest)


def graph_conductance_exact(g: Graph) -> float:
    """Exact conductance ``Φ(G) = min_S φ(S)`` by enumerating all subsets
    with ``µ(S) ≤ µ(V)/2``.  Exponential; restricted to ``n ≤ 18``."""
    g.require_connected()
    if g.n > _EXACT_LIMIT:
        raise ValueError(
            f"exact conductance is exponential; n={g.n} > {_EXACT_LIMIT}"
        )
    best = np.inf
    nodes = list(range(g.n))
    for size in range(1, g.n // 2 + 1):
        for subset in combinations(nodes, size):
            phi = set_conductance(g, list(subset))
            if phi < best:
                best = phi
    # Also scan sizes above n/2 whose *volume* is still the smaller side
    # (can happen on irregular graphs).
    for size in range(g.n // 2 + 1, g.n):
        for subset in combinations(nodes, size):
            sub = np.asarray(subset)
            if int(g.degrees[sub].sum()) <= g.volume // 2:
                phi = set_conductance(g, sub)
                if phi < best:
                    best = phi
    return float(best)


def sweep_cut_conductance(g: Graph) -> tuple[float, np.ndarray]:
    """Fiedler-vector sweep cut: sort nodes by the second eigenvector of the
    normalized Laplacian and take the best prefix cut.

    Returns ``(phi, S)``.  Cheeger guarantees ``phi ≤ √(2 Φ)`` so this is a
    certified upper bound on conductance and usually very close in practice.
    """
    g.require_connected()
    deg = g.degrees.astype(np.float64)
    inv_sqrt = 1.0 / np.sqrt(deg)
    N = sp.diags(inv_sqrt) @ g.adjacency_matrix() @ sp.diags(inv_sqrt)
    if g.n <= 600:
        vals, vecs = np.linalg.eigh(N.toarray())
        fiedler = vecs[:, -2]
    else:
        vals, vecs = spla.eigsh(N.tocsr(), k=2, which="LA")
        order = np.argsort(vals)[::-1]
        fiedler = vecs[:, order[1]]
    # Map back from the symmetrized operator to the walk eigenvector.
    embedding = fiedler * inv_sqrt
    order = np.argsort(embedding)
    best_phi, best_prefix = np.inf, 1
    vol = g.volume
    mask = np.zeros(g.n, dtype=bool)
    boundary = 0
    vol_s = 0
    for i, u in enumerate(order[:-1]):
        u = int(u)
        inside = mask[g.neighbors(u)]
        boundary += g.degree(u) - 2 * int(np.count_nonzero(inside))
        mask[u] = True
        vol_s += g.degree(u)
        denom = min(vol_s, vol - vol_s)
        if denom > 0:
            phi = boundary / denom
            if phi < best_phi:
                best_phi, best_prefix = phi, i + 1
    return float(best_phi), order[:best_prefix].copy()
