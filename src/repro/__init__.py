"""repro — reproduction of *Local Mixing Time: Distributed Computation and
Applications* (Molla & Pandurangan, 2018).

The package provides, bottom-up:

* :mod:`repro.graphs` — CSR graph type + the paper's graph families
  (β-barbell of Figure 1, paths, expanders, …).
* :mod:`repro.spectral` — walk operators, stationary distributions, spectral
  gaps, conductance and weak conductance.
* :mod:`repro.walks` — exact walk distributions, mixing times, and the
  centralized **local mixing time** (Definition 2).
* :mod:`repro.engine` — the batched multi-source walk engine: block
  trajectories (one sparse mat-mat per step for all sources), batched
  deviation oracles (grid kernels + search-free lower bounds) behind
  ``τ(β,ε) = max_v τ_v(β,ε)``, and a controllable shared spectral cache.
* :mod:`repro.parallel` — sharded multi-core execution: the graph's CSR
  arrays in shared memory, a persistent
  :class:`~repro.parallel.ShardExecutor` worker pool, and parallel front
  doors whose results are identical to the serial engine at any worker
  count (plus :func:`~repro.parallel.shard_map` for per-source sweeps).
* :mod:`repro.dynamic` — dynamic networks: a mutable
  :class:`~repro.dynamic.graph.DynamicGraph` overlay with structurally
  memoized snapshots, update-schedule generators (edge-Markovian churn,
  rewiring, bridge surgery, node join/leave), and the incremental
  :class:`~repro.dynamic.tracker.MixingTracker` whose per-snapshot results
  are identical to from-scratch batched recomputation.
* :mod:`repro.congest` — a synchronous CONGEST-model simulator with per-edge
  bandwidth accounting (the substrate the paper's algorithms run on).
* :mod:`repro.algorithms` — the paper's distributed algorithms: Algorithm 1
  (``ESTIMATE-RW-PROBABILITY``), Algorithm 2 (``LOCAL-MIXING-TIME``,
  2-approximation, Theorem 1), the exact §3.2 variant (Theorem 2), and the
  three baselines the paper compares against.
* :mod:`repro.gossip` — push–pull gossip, partial information spreading
  (Theorem 3) and its applications.
* :mod:`repro.analysis` — the experiment harness behind EXPERIMENTS.md.

Quickstart
----------
>>> import repro
>>> g = repro.beta_barbell(beta=4, clique_size=16)      # Figure 1 graph
>>> res = repro.local_mixing_time(g, source=0, beta=4)  # Definition 2
>>> res.time                                            # O(1) — §2.3(d)
1
"""

from repro.constants import DEFAULT_BETA, DEFAULT_C, DEFAULT_EPS
from repro.errors import (
    BipartiteGraphError,
    CongestViolationError,
    ConvergenceError,
    DisconnectedGraphError,
    GraphError,
    NotRegularError,
    ProtocolError,
    ReproError,
)
from repro.graphs import (
    Graph,
    beta_barbell,
    clique_chain_of_expanders,
    complete_graph,
    cycle_graph,
    dumbbell,
    hypercube,
    lollipop,
    margulis_expander,
    path_graph,
    random_regular,
    torus_2d,
)
from repro.spectral import (
    mixing_time_bounds_from_gap,
    set_conductance,
    spectral_gap,
    stationary_distribution,
    weak_conductance_exact,
)
from repro.walks import (
    LocalMixingResult,
    distribution_at,
    graph_local_mixing_time,
    graph_mixing_time,
    local_mixing_time,
    mixing_time,
    set_mixing_time,
)
from repro.engine import (
    BatchedUniformDeviationOracle,
    BlockPropagator,
    batched_local_mixing_profiles,
    batched_local_mixing_spectra,
    batched_local_mixing_times,
    batched_mixing_times,
    clear_propagator_cache,
    propagator_cache_info,
    set_propagator_cache_maxsize,
)
from repro.parallel import (
    ShardExecutor,
    parallel_local_mixing_profiles,
    parallel_local_mixing_spectra,
    parallel_local_mixing_times,
    shard_map,
)
from repro.dynamic import (
    DynamicGraph,
    GraphUpdate,
    MixingTracker,
    TrackingTrace,
    barbell_bridge_schedule,
    edge_markovian_churn,
    node_churn,
    random_rewiring,
    track_local_mixing,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # constants
    "DEFAULT_BETA",
    "DEFAULT_C",
    "DEFAULT_EPS",
    # errors
    "ReproError",
    "GraphError",
    "NotRegularError",
    "DisconnectedGraphError",
    "BipartiteGraphError",
    "ConvergenceError",
    "CongestViolationError",
    "ProtocolError",
    # graphs
    "Graph",
    "beta_barbell",
    "clique_chain_of_expanders",
    "complete_graph",
    "cycle_graph",
    "dumbbell",
    "hypercube",
    "lollipop",
    "margulis_expander",
    "path_graph",
    "random_regular",
    "torus_2d",
    # spectral
    "spectral_gap",
    "stationary_distribution",
    "set_conductance",
    "weak_conductance_exact",
    "mixing_time_bounds_from_gap",
    # walks
    "distribution_at",
    "mixing_time",
    "graph_mixing_time",
    "local_mixing_time",
    "graph_local_mixing_time",
    "set_mixing_time",
    "LocalMixingResult",
    # engine (batched multi-source)
    "BlockPropagator",
    "BatchedUniformDeviationOracle",
    "batched_local_mixing_times",
    "batched_local_mixing_spectra",
    "batched_local_mixing_profiles",
    "batched_mixing_times",
    "clear_propagator_cache",
    "set_propagator_cache_maxsize",
    "propagator_cache_info",
    # parallel (sharded multi-core)
    "ShardExecutor",
    "parallel_local_mixing_times",
    "parallel_local_mixing_spectra",
    "parallel_local_mixing_profiles",
    "shard_map",
    # dynamic networks
    "DynamicGraph",
    "GraphUpdate",
    "MixingTracker",
    "TrackingTrace",
    "track_local_mixing",
    "edge_markovian_churn",
    "random_rewiring",
    "barbell_bridge_schedule",
    "node_churn",
]
