"""The serving layer's structural result cache.

A :class:`ResultCache` memoizes finished ``τ_s`` answers keyed by
``(graph, source, TimesKey)``:

* the **graph** component is the immutable :class:`~repro.graphs.base.Graph`
  object itself — graphs hash by their CSR arrays, so *structural equality
  is cache identity*.  This is the same contract every other cache in the
  library rides on: a :class:`~repro.dynamic.DynamicGraph` whose
  ``snapshot()`` revisits a topology returns the very same ``Graph`` object
  (structural memoization), so a flapping bridge or an add/remove round
  trip hits this cache without recomputation;
* the **knob** component is the engine's canonical
  :class:`~repro.engine.batch.TimesKey` — two spellings of the same
  semantics share one line, and execution-only knobs never fragment it.

Entries are exact: a hit returns the very object an identical direct
:func:`~repro.engine.batch.batched_local_mixing_times` call produced, so
serving answers stay bitwise identical to the engine regardless of cache
state.

Beyond plain LRU lookup the cache supports **locality carry-forward**
(:meth:`ResultCache.carry_forward`): after a dynamic-graph mutation, the
entries of the previous snapshot whose sources are provably unaffected —
``τ_s`` at most the source's
:func:`~repro.dynamic.tracker.edit_distance_bounds` radius, i.e. every
edit sits at distance ``≥ τ_s`` in both snapshots — are re-keyed onto the
new snapshot, so only *dirty* sources (those the edit could actually
reach) miss and get recomputed.  Under ``target="degree"`` an entry is
carried only when the mutation preserved the degree vector, mirroring the
tracker's soundness guard.

Observability: the counters live on a
:class:`~repro.obs.metrics.MetricsRegistry` (``repro_cache_*_total``
counters plus ``repro_cache_size`` / ``repro_cache_maxsize`` gauges) —
by default a private one per cache, or a shared registry passed by the
owning service so one ``render()`` covers every component.  The
documented :meth:`ResultCache.stats` dict shape is unchanged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.engine.batch import TimesKey
from repro.graphs.base import Graph
from repro.obs import MetricsRegistry

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of exact per-source results with structural keys.

    Parameters
    ----------
    maxsize:
        Entry bound; least recently used entries beyond it are evicted
        (``0`` disables caching — every lookup misses, nothing is stored).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to record
        the cache counters on (the owning service passes its own so all
        component metrics share one exposition); a private registry is
        created when omitted and exposed as :attr:`metrics`.

    Counters (exposed by :meth:`stats`): ``hits`` / ``misses`` (lookup
    outcomes), ``inflight_hits`` (queries answered by awaiting an already
    in-flight identical computation instead of a new solve — counted here
    by the service via :meth:`count_inflight_hit`), ``carried_forward``
    (entries re-keyed onto a mutated snapshot by locality pruning),
    ``evictions``.  All methods are thread-safe; the service calls them
    from the event loop while benchmarks may inspect them from anywhere.
    """

    def __init__(
        self, maxsize: int = 4096, *, registry: MetricsRegistry | None = None
    ):
        if maxsize < 0:
            raise ValueError("maxsize must be >= 0")
        self.maxsize = int(maxsize)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = self.metrics.counter(
            "repro_cache_hits_total", "Result-cache lookup hits."
        )
        self._misses = self.metrics.counter(
            "repro_cache_misses_total", "Result-cache lookup misses."
        )
        self._inflight_hits = self.metrics.counter(
            "repro_cache_inflight_hits_total",
            "Queries deduplicated against an in-flight identical solve.",
        )
        self._carried = self.metrics.counter(
            "repro_cache_carried_forward_total",
            "Entries re-keyed onto a mutated snapshot by locality pruning.",
        )
        self._evictions = self.metrics.counter(
            "repro_cache_evictions_total", "LRU evictions past the bound."
        )
        self._size_gauge = self.metrics.gauge(
            "repro_cache_size", "Entries currently cached."
        )
        self.metrics.gauge(
            "repro_cache_maxsize", "Configured result-cache entry bound."
        ).set(self.maxsize)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, g: Graph, source: int, key: TimesKey):
        """The cached result for ``(g, source, key)`` or ``None`` (counted
        as a hit or miss respectively)."""
        k = (g, int(source), key)
        with self._lock:
            res = self._entries.get(k)
            if res is None:
                self._misses.inc()
                return None
            self._hits.inc()
            self._entries.move_to_end(k)
            return res

    def put(self, g: Graph, source: int, key: TimesKey, result) -> None:
        """Store one finished result (evicting LRU entries past the bound)."""
        if self.maxsize == 0:
            return
        k = (g, int(source), key)
        with self._lock:
            self._entries[k] = result
            self._entries.move_to_end(k)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions.inc()
            self._size_gauge.set(len(self._entries))

    def count_inflight_hit(self) -> None:
        """Record one query deduplicated against an in-flight computation."""
        self._inflight_hits.inc()

    # ------------------------------------------------------------------ #
    # Dynamic-graph integration
    # ------------------------------------------------------------------ #

    def carry_forward(
        self,
        prev_g: Graph,
        new_g: Graph,
        dmin: np.ndarray,
        *,
        degrees_equal: bool,
    ) -> int:
        """Re-key ``prev_g``'s provably-unaffected entries onto ``new_g``.

        ``dmin`` is :func:`~repro.dynamic.tracker.edit_distance_bounds` of
        the two snapshots: an entry for source ``s`` is carried iff its
        result's ``time <= dmin[s]`` (the locality-pruning soundness
        argument — the source's whole decision transcript is bitwise
        unchanged) and, for ``target="degree"`` entries, additionally
        ``degrees_equal`` (the degree heuristic ranks every node against
        the global mean degree, so a degree change anywhere is
        disqualifying).  Existing ``new_g`` entries are never overwritten —
        they are already exact.  ``prev_g``'s own entries stay cached: the
        old structure may be revisited (structural memoization will then
        return the same object) and the LRU ages them out naturally.

        Returns the number of entries carried.
        """
        if self.maxsize == 0:
            return 0
        carried = 0
        prev_hash = hash(prev_g)
        with self._lock:
            # Materialize first: we mutate the dict while scanning.  Match
            # structurally (identity shortcut, then memoized hash, then
            # equality) — entries inserted under a distinct but equal
            # Graph object must carry too.
            old = [
                (k, res)
                for k, res in self._entries.items()
                if k[0] is prev_g
                or (hash(k[0]) == prev_hash and k[0] == prev_g)
            ]
            for (_, source, key), res in old:
                if key.target == "degree" and not degrees_equal:
                    continue
                if res.time > dmin[source]:
                    continue  # a dirty source: the edit is inside its radius
                new_key = (new_g, source, key)
                if new_key in self._entries:
                    continue
                self._entries[new_key] = res
                self._entries.move_to_end(new_key)
                carried += 1
                self._carried.inc()
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self._evictions.inc()
            self._size_gauge.set(len(self._entries))
        return carried

    def invalidate_graph(self, g: Graph) -> int:
        """Drop every entry keyed to (a structural equal of) ``g``; returns
        how many were dropped.  Purely a memory-management hook: structural
        keying means entries can never become *wrong*, only stale in the
        LRU sense, so nothing in the serving path requires this."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == g]
            for k in stale:
                del self._entries[k]
            self._size_gauge.set(len(self._entries))
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._size_gauge.set(0)

    def stats(self) -> dict:
        """A snapshot of the counters plus the current size (the same
        dict shape as before the registry migration — a thin view over
        the ``repro_cache_*`` metrics)."""
        with self._lock:
            return {
                "hits": self._hits.value,
                "misses": self._misses.value,
                "inflight_hits": self._inflight_hits.value,
                "carried_forward": self._carried.value,
                "evictions": self._evictions.value,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }
