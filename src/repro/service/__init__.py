"""Async serving: a query front end over the batch/parallel engines.

The north-star workload is *serving*: many concurrent clients, each asking
for the local mixing time of one source on one (possibly evolving) graph —
the paper's per-node, node-initiated query model, productionized.  This
subsystem turns the engines into that server without surrendering one bit
of exactness:

* :class:`~repro.service.query.MixingQuery` — the request model: graph
  reference (object, dynamic graph, or registered name), source, and the
  engine's full knob space, canonicalized through the engine's shared
  :func:`~repro.engine.batch.canonical_times_key` head so equivalent
  spellings coalesce and cache together.
* :class:`~repro.service.coalescer.QueryCoalescer` — micro-batching:
  concurrent queries sharing ``(graph, knobs)`` are held for a tiny window
  and solved as **one** batched block call (``k`` clients ≈ one solve, not
  ``k``), optionally sharded across a
  :class:`~repro.parallel.ShardExecutor` pool.
* :class:`~repro.service.cache.ResultCache` — structural LRU keyed by
  ``(graph, source, TimesKey)`` with hit/miss/in-flight-dedup counters;
  rides the library-wide "structural equality is cache identity" contract,
  so revisited dynamic snapshots hit without recomputation.
* :class:`~repro.service.registry.GraphRegistry` — named graphs, static or
  dynamic; a mutation of a registered
  :class:`~repro.dynamic.DynamicGraph` invalidates **only dirty sources**:
  entries whose ``τ_s`` is below the edit's
  :func:`~repro.dynamic.tracker.edit_distance_bounds` radius are carried
  forward to the new snapshot (the tracker's locality-pruning argument).
* :class:`~repro.service.service.MixingService` — the front door:
  ``await submit(query)`` / ``submit_many``, async context manager,
  graceful drain on shutdown; queries may carry per-query deadlines
  (answered in time or failed with a typed
  :class:`~repro.service.errors.DeadlineExceededError`) and priorities.
* :mod:`repro.service.wire` — the *network* front door: an asyncio
  HTTP + WebSocket server (:class:`~repro.service.wire.WireServer`)
  speaking a versioned JSON protocol over the full query knob space,
  with bounded admission (429 backpressure instead of unbounded
  buffering), deadline-aware coalescer flushes, a ``GET /metrics``
  Prometheus endpoint, and a matching asyncio client
  (:class:`~repro.service.wire.WireClient`).

**Serving answers are bitwise identical to direct engine calls** under any
coalescing batch composition, cache state, and client concurrency — the
same equivalence discipline as every other layer (tests:
``tests/test_service.py``; throughput: ``benchmarks/bench_v1_serving.py``).
"""

from repro.service.cache import ResultCache
from repro.service.coalescer import QueryCoalescer
from repro.service.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServiceClosedError,
    ServingError,
)
from repro.service.query import ExecutionKey, MixingQuery
from repro.service.registry import GraphRegistry
from repro.service.service import MixingService

__all__ = [
    "DeadlineExceededError",
    "ExecutionKey",
    "MixingQuery",
    "OverloadedError",
    "QueryCoalescer",
    "ResultCache",
    "GraphRegistry",
    "MixingService",
    "ServiceClosedError",
    "ServingError",
]
