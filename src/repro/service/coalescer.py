"""Micro-batch coalescing of concurrently arriving single-source queries.

``k`` clients asking for ``τ_s`` of ``k`` different sources on the same
graph under the same knobs should cost **one** block solve — that is the
entire point of the batched engine — but a naive query front end would
dispatch ``k`` independent single-source calls, re-propagating the whole
trajectory per client.  The :class:`QueryCoalescer` closes that gap: it
holds each arriving query for at most a (tiny) time window, groups queries
by ``(graph, ExecutionKey)``, and flushes a group as one
:func:`~repro.engine.batch.batched_local_mixing_times` /
:func:`~repro.parallel.parallel_local_mixing_times` call when either

* the **window** elapses (``window`` seconds after the group's first
  query arrived), or
* the group's **earliest deadline** would otherwise be missed — a query
  admitted with a deadline re-arms the group's flush timer to
  ``deadline − window`` when that is earlier than the window expiry, so
  the solve gets dispatched with at least one window of head start
  instead of waiting out a window the deadline cannot afford (the
  deadline-aware flush replaces the fixed window whenever it is the
  tighter bound), or
* the group reaches **max_batch** distinct sources (flushed immediately —
  a full block is ready), or
* the service drains on shutdown (:meth:`QueryCoalescer.drain`) —
  pending groups are then flushed in descending **priority** order (the
  maximum priority of each group's queries), so urgent work is
  dispatched first when everything must go at once.

Correctness is inherited, not negotiated: the engine's loop-equivalence
guarantee makes every per-source result of a batched call identical to
the corresponding single-source call, so coalescing changes wall-clock
and nothing else — any batch composition yields bitwise the answers each
client would have gotten alone.

The coalescer is event-loop-affine: all bookkeeping runs on the loop
thread, and only the solve itself is pushed to a worker thread
(``asyncio.to_thread``), where the engine's thread-safe shared caches
apply.

Observability: the flush counters live on a
:class:`~repro.obs.metrics.MetricsRegistry` (``repro_coalescer_*``)
behind the unchanged :meth:`QueryCoalescer.stats` view.  While tracing
is enabled each flushed group gets a **detached** ``coalesced_batch``
span (detached because the batch is shared work — parenting it under
whichever query happened to arrive first would be nondeterministic);
the engine's ``engine_solve`` span nests under it via the context
carried into ``asyncio.to_thread``, and the finished span rides each
waiter future (``fut._obs_span``) so every query's own trace adopts it
(see ``MixingService.submit``).
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from repro.graphs.base import Graph
from repro.obs import MetricsRegistry, start_span, use_span

__all__ = ["QueryCoalescer"]


class _Group:
    """One pending micro-batch: distinct sources (insertion-ordered, each
    with its waiters) plus the representative engine kwargs, the armed
    flush timer, the earliest member deadline and the maximum member
    priority."""

    __slots__ = (
        "graph",
        "kwargs",
        "pending",
        "timer",
        "window_end",
        "deadline",
        "priority",
        "flush_at",
        "trace_id",
    )

    def __init__(self, graph: Graph, kwargs: dict, window_end: float):
        self.graph = graph
        self.kwargs = kwargs
        self.pending: dict[int, list[asyncio.Future]] = {}
        self.timer: asyncio.TimerHandle | None = None
        #: When the plain coalescing window expires (absolute loop time).
        self.window_end = window_end
        #: Earliest deadline among the group's queries (absolute loop
        #: time), or ``None`` while no member carries one.
        self.deadline: float | None = None
        #: Maximum priority among the group's queries.
        self.priority = 0
        #: Where the armed timer currently points (absolute loop time).
        self.flush_at: float | None = None
        #: Flight-recorder trace id of the group's most recent query
        #: (last-wins) — the exemplar the batch latency histogram tags
        #: its bucket with.
        self.trace_id: str | None = None


class QueryCoalescer:
    """Group concurrent single-source queries into batched engine calls.

    Parameters
    ----------
    solve:
        ``solve(graph, sources, kwargs) -> list[LocalMixingResult]`` — the
        blocking batch solver, executed on a worker thread.  ``kwargs`` is
        the engine knob dictionary of the group's *first* query; any group
        member's kwargs would do, because group membership requires equal
        canonical keys and the engine's results depend on knobs only
        through that canonicalization.
    window:
        Seconds a group's first query waits for company before the group
        is flushed (``0`` still coalesces bursts submitted in the same
        event-loop turn: the flush runs as a zero-delay callback).  A
        member deadline tighter than the window re-arms the flush to
        ``deadline − window`` (see :meth:`enqueue`).
    max_batch:
        Distinct-source bound per group; reaching it flushes immediately.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` for
        the coalescing counters (private when omitted); exposed as
        :attr:`metrics`.
    """

    def __init__(
        self,
        solve: Callable,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        registry: MetricsRegistry | None = None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._solve = solve
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._groups: dict[tuple, _Group] = {}
        self._tasks: set[asyncio.Task] = set()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._queries = self.metrics.counter(
            "repro_coalescer_queries_total", "Queries admitted for coalescing."
        )
        self._batches = self.metrics.counter(
            "repro_coalescer_batches_total",
            "Batched engine calls dispatched (flushed groups).",
        )
        # One counter per flush trigger, keyed by the legacy stats() name.
        self._flush_counters = {
            reason: self.metrics.counter(
                f"repro_coalescer_{reason}_total",
                f"Groups flushed by the {reason.removesuffix('_flushes')} "
                "trigger.",
            )
            for reason in (
                "window_flushes",
                "size_flushes",
                "drain_flushes",
                "deadline_flushes",
            )
        }
        self._largest_batch = self.metrics.gauge(
            "repro_coalescer_largest_batch",
            "Largest distinct-source batch flushed so far.",
        )
        self._batch_seconds = self.metrics.histogram(
            "repro_coalescer_batch_seconds",
            "Wall seconds per flushed batch solve (exemplar: the trace "
            "id of the batch's most recent member query).",
        )

    # ------------------------------------------------------------------ #
    # Enqueue + flush machinery
    # ------------------------------------------------------------------ #

    def enqueue(
        self,
        graph: Graph,
        exec_key,
        source: int,
        kwargs: dict,
        *,
        deadline: float | None = None,
        priority: int = 0,
        trace_id: str | None = None,
    ) -> "asyncio.Future":
        """Admit one query and return the future its result will land on.

        Must be called on the event loop.  The first query of a new
        ``(graph, exec_key)`` group arms the flush timer; each admitted
        query may tighten it — ``deadline`` is an *absolute*
        ``loop.time()`` bound, and when ``deadline − window`` is earlier
        than the pending window expiry the timer is re-armed to it (the
        deadline-aware flush).  ``priority`` raises the group's drain
        priority (see :meth:`flush_all`); ``trace_id`` tags the group for
        the batch latency histogram's exemplar (last query wins).  The
        ``max_batch``-th distinct source flushes the group synchronously
        (the solve itself still runs as a background task).
        """
        loop = asyncio.get_running_loop()
        key = (graph, exec_key)
        group = self._groups.get(key)
        if group is None:
            group = _Group(graph, dict(kwargs), loop.time() + self.window)
            self._groups[key] = group
        fut: asyncio.Future = loop.create_future()
        group.pending.setdefault(int(source), []).append(fut)
        if priority > group.priority:
            group.priority = int(priority)
        if trace_id is not None:
            group.trace_id = trace_id
        if deadline is not None and (
            group.deadline is None or deadline < group.deadline
        ):
            group.deadline = float(deadline)
        self._queries.inc()
        if len(group.pending) >= self.max_batch:
            self._flush(key, "size_flushes")
        else:
            self._rearm(loop, key, group)
        return fut

    def _rearm(self, loop, key: tuple, group: _Group) -> None:
        """Point the group's timer at its current flush target: the window
        expiry, or — when tighter — one window ahead of the group's
        earliest deadline (clamped to *now*, so an already-urgent deadline
        flushes on the next loop turn)."""
        when, reason = group.window_end, "window_flushes"
        if group.deadline is not None:
            head_start = group.deadline - self.window
            if head_start < when:
                when, reason = head_start, "deadline_flushes"
        when = max(when, loop.time())
        if group.timer is not None:
            if group.flush_at is not None and when >= group.flush_at:
                return  # the armed timer is already at least as tight
            group.timer.cancel()
        group.flush_at = when
        group.timer = loop.call_at(when, self._flush, key, reason)

    def _flush(self, key: tuple, reason: str) -> None:
        """Detach the group (if still pending) and start its batch solve."""
        group = self._groups.pop(key, None)
        if group is None:
            return  # already flushed by the other trigger
        if group.timer is not None:
            group.timer.cancel()
        self._batches.inc()
        self._flush_counters[reason].inc()
        self._largest_batch.set_max(len(group.pending))
        # Detached span: the batch is shared by every waiter, so it has no
        # single query parent; each waiter adopts it off its future.
        span = start_span(
            "coalesced_batch",
            detached=True,
            sources=len(group.pending),
            trigger=reason,
        )
        task = asyncio.ensure_future(self._run_batch(group, span))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, group: _Group, span=None) -> None:
        """Solve one detached group on a worker thread and fan the
        per-source results (or the failure) out to every waiter."""
        sources = list(group.pending)  # insertion order, distinct
        t0 = time.perf_counter()
        try:
            with use_span(span):
                results = await asyncio.to_thread(
                    self._solve, group.graph, sources, group.kwargs
                )
        except BaseException as exc:  # noqa: BLE001 - forwarded, not handled
            self._batch_seconds.observe(
                time.perf_counter() - t0, exemplar=group.trace_id
            )
            if span is not None:
                span.meta["error"] = type(exc).__name__
                span.finish()
            for waiters in group.pending.values():
                for fut in waiters:
                    if not fut.done():
                        fut.set_exception(exc)
            return
        self._batch_seconds.observe(
            time.perf_counter() - t0, exemplar=group.trace_id
        )
        if span is not None:
            span.finish()
        for source, result in zip(sources, results):
            for fut in group.pending[source]:
                if not fut.done():
                    if span is not None:
                        fut._obs_span = span
                    fut.set_result(result)

    # ------------------------------------------------------------------ #
    # Lifecycle + stats
    # ------------------------------------------------------------------ #

    def flush_all(self) -> None:
        """Flush every pending group now (drain trigger), highest group
        priority first — when everything must go at once, urgent batches
        hit the solver queue ahead of background ones.  Running batches
        are unaffected."""
        by_priority = sorted(
            self._groups.items(), key=lambda kv: -kv[1].priority
        )
        for key, _ in by_priority:
            self._flush(key, "drain_flushes")

    async def drain(self) -> None:
        """Flush everything pending and wait for all in-flight batch tasks
        to finish (their waiters are then all resolved)."""
        self.flush_all()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    @property
    def depth(self) -> int:
        """Queries currently waiting in un-flushed groups — the live
        queue-depth gauge the resource sampler reads each tick (O(groups),
        no lock: sampled from the event loop that also mutates it)."""
        return sum(
            len(w) for g in self._groups.values() for w in g.pending.values()
        )

    @property
    def inflight_batches(self) -> int:
        """Batch solves currently running on worker threads — the
        executor-occupancy proxy the resource sampler samples."""
        return len(self._tasks)

    def stats(self) -> dict:
        """Coalescing counters: ``queries``, ``batches`` (engine calls),
        flush-trigger breakdown, ``largest_batch``, and the derived
        ``coalesced`` (queries answered without their own engine call) and
        currently ``pending`` queries.  The dict shape predates (and is
        preserved across) the metrics-registry migration."""
        out = {
            "queries": self._queries.value,
            "batches": self._batches.value,
            **{
                reason: counter.value
                for reason, counter in self._flush_counters.items()
            },
            "largest_batch": self._largest_batch.value,
        }
        pending = sum(
            len(w) for g in self._groups.values() for w in g.pending.values()
        )
        out["coalesced"] = out["queries"] - out["batches"] - pending
        out["pending"] = pending
        return out
