"""The serving layer's request model.

A :class:`MixingQuery` is one client's question — "what is ``τ_s(β, ε)`` of
source ``s`` on graph ``G`` under these engine knobs?" — carried as a frozen
value object.  It names the graph either directly (a
:class:`~repro.graphs.base.Graph`), dynamically (a
:class:`~repro.dynamic.DynamicGraph`, snapshotted at submission time), or
symbolically (a string resolved through the service's
:class:`~repro.service.registry.GraphRegistry`), and exposes the **full**
knob space of :func:`~repro.engine.batch.batched_local_mixing_times`.

Queries are grouped and cached by their *canonical* knob identity, not
their spelling: :meth:`MixingQuery.semantic_key` delegates to the engine's
shared canonicalization head
(:func:`~repro.engine.batch.canonical_times_key`), so ``beta=4`` with
``sizes="all"`` and the explicitly enumerated equivalent size list land on
the same cache line and in the same coalesced batch, while execution-only
knobs (``batch_size``, ``prefilter``, ``backend`` — proven result-neutral
by the loop-equivalence contract) are kept out of the cache key entirely.
A float32-backend query therefore *hits* the cache line a reference-backend
query filled (and vice versa) — the backend must never fragment the cache —
while still splitting coalescer groups, since one engine call runs under
exactly one backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.constants import DEFAULT_EPS
from repro.engine.batch import TimesKey, canonical_times_key
from repro.graphs.base import Graph

__all__ = ["ExecutionKey", "MixingQuery"]


class ExecutionKey(NamedTuple):
    """How a batch must be *executed*: the semantic :class:`TimesKey` plus
    the result-neutral partitioning knobs.  The
    :class:`~repro.service.coalescer.QueryCoalescer` groups concurrent
    queries by ``(graph, ExecutionKey)`` — queries in one group are
    answered by a single engine call, which is only legal because every
    query in the group canonicalizes to the same semantics."""

    times: TimesKey
    batch_size: int | None
    prefilter: str
    #: Resolved backend *name* (``get_backend(...).name``): spelling
    #: ``backend=None`` and ``backend="reference"`` coalesce into the same
    #: group, while distinct backends solve in distinct engine calls.
    backend: str


#: Field names forwarded verbatim to the batched engine driver.
_ENGINE_KNOBS = (
    "beta",
    "eps",
    "sizes",
    "threshold_factor",
    "grid_factor",
    "t_schedule",
    "t_max",
    "lazy",
    "require_source",
    "target",
    "method",
    "batch_size",
    "prefilter",
    "backend",
)


@dataclass(frozen=True)
class MixingQuery:
    """One local-mixing request: ``(graph, source)`` plus the engine's full
    knob space (same defaults as
    :func:`~repro.engine.batch.batched_local_mixing_times`).

    ``graph`` may be a :class:`~repro.graphs.base.Graph` (served as-is), a
    :class:`~repro.dynamic.DynamicGraph` (snapshotted when the query is
    admitted — each query is answered exactly for the topology current at
    submission), or a ``str`` naming a graph registered with the service's
    :class:`~repro.service.registry.GraphRegistry`.
    """

    graph: object
    source: int
    beta: float
    eps: float = DEFAULT_EPS
    sizes: object = "all"
    threshold_factor: float = 1.0
    grid_factor: float | None = None
    t_schedule: str = "all"
    t_max: int | None = None
    lazy: bool = False
    require_source: bool = False
    target: str = "uniform"
    method: str = "iterative"
    batch_size: int | None = None
    prefilter: str = "fused"
    #: Compute-backend name (see :mod:`repro.engine.backends`); result-
    #: neutral by the loop-equivalence contract, so it never enters the
    #: result-cache key — only the coalescing group.
    backend: str | None = None
    #: Relative deadline in seconds from submission (``None`` — wait
    #: forever).  A deadline never changes *what* is computed — it is
    #: excluded from both the cache key and the coalescing group — only
    #: whether this waiter is still listening when the answer lands: the
    #: coalescer flushes early so the group's earliest deadline can be
    #: met, and a waiter whose deadline passes first gets a typed
    #: :class:`~repro.service.errors.DeadlineExceededError` while the
    #: solve continues for its co-waiters and the cache.
    deadline: float | None = None
    #: Scheduling priority (higher drains first on shutdown / bulk
    #: flushes).  Like ``deadline``, never part of result or cache
    #: identity.
    priority: int = 0

    def engine_kwargs(self) -> dict:
        """The knob dictionary a batched/parallel driver call takes
        (everything except the graph and the source list)."""
        out = {}
        for name in _ENGINE_KNOBS:
            value = getattr(self, name)
            if name == "sizes" and isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out

    def semantic_key(self, g: Graph) -> TimesKey:
        """Validate this query's knobs against the resolved graph ``g`` and
        collapse them to the engine's canonical :class:`TimesKey` (raises
        the engine's own fail-fast errors on a bad knob)."""
        return canonical_times_key(g, **self.engine_kwargs())

    def execution_key(self, g: Graph) -> ExecutionKey:
        """The coalescing group key: semantics plus partitioning knobs
        (the backend resolved to its registered name, so ``None`` and the
        default backend's explicit name group together)."""
        from repro.engine import get_backend

        return ExecutionKey(
            times=self.semantic_key(g),
            batch_size=self.batch_size,
            prefilter=self.prefilter,
            backend=get_backend(self.backend).name,
        )
