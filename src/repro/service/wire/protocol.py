"""The versioned JSON wire protocol for local-mixing queries.

One request/response vocabulary shared by every transport (HTTP POST and
WebSocket frames carry the *same* JSON objects) and by both ends of the
wire (:class:`~repro.service.wire.WireServer` decodes with exactly the
functions :class:`~repro.service.wire.WireClient` encodes with):

* a **request** is ``{"v": 1, "op": "query", "id": ..., "query": {...}}``
  where the ``query`` object carries the full
  :class:`~repro.service.MixingQuery` knob space — graph *by registered
  name* (objects cannot cross the wire; the server resolves names through
  its service's :class:`~repro.service.GraphRegistry`), source, and every
  engine knob plus the serving-only ``deadline``/``priority``;
* a **response** is ``{"v": 1, "id": ..., "ok": true, "result": {...}}``
  or ``{"v": 1, "id": ..., "ok": false, "error": {"code": ...,
  "message": ...}}`` with one stable error code (and HTTP status) per
  failure type.

**Exactness over the wire**: every numeric field round-trips bitwise.
Integers are JSON integers; floats are serialized with Python's
shortest-round-trip ``repr`` (what :mod:`json` emits), which decodes to
the identical IEEE-754 double — so a decoded
:class:`~repro.walks.local_mixing.LocalMixingResult` compares equal,
bitwise deviation included, to the object the server computed.  The
protocol round-trip property tests (``tests/test_wire_protocol.py``)
pin this over the whole knob space, and golden request/response fixtures
pin the format itself against silent drift.

Versioning: requests carry ``"v": 1`` (:data:`PROTOCOL_VERSION`); the
server rejects other versions with ``bad_request`` instead of guessing.
Unknown fields are rejected too — a typo'd knob must fail loudly, not
silently fall back to a default.
"""

from __future__ import annotations

import json
from dataclasses import fields as dataclass_fields

from repro.errors import ConvergenceError, GraphError, ReproError
from repro.service.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServiceClosedError,
)
from repro.service.query import MixingQuery
from repro.walks.local_mixing import LocalMixingResult

__all__ = [
    "ERROR_STATUS",
    "PROTOCOL_VERSION",
    "WireError",
    "dumps",
    "loads",
    "decode_query",
    "decode_request",
    "decode_response",
    "encode_error_response",
    "encode_query",
    "encode_request",
    "encode_response",
    "encode_result",
    "decode_result",
    "error_code_for",
    "exception_for_code",
]

#: The one protocol version this build speaks.
PROTOCOL_VERSION = 1

#: Stable error codes → HTTP status.  The taxonomy mirrors
#: :mod:`repro.service.errors` plus the request-shaped failures only the
#: wire can produce.
ERROR_STATUS = {
    "bad_request": 400,
    "not_found": 404,
    "overloaded": 429,
    "unconverged": 422,
    "deadline_exceeded": 504,
    "shutting_down": 503,
    "internal": 500,
}


class WireError(ReproError):
    """A typed protocol-level failure: carries the stable wire ``code``
    (a key of :data:`ERROR_STATUS`) and the human-readable message the
    response body will carry."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown wire error code {code!r}")
        super().__init__(message)
        #: Stable protocol error code (key of :data:`ERROR_STATUS`).
        self.code = code

    @property
    def http_status(self) -> int:
        """The HTTP status this error is answered with."""
        return ERROR_STATUS[self.code]


#: Knob fields of MixingQuery, in declaration order (graph and source are
#: handled separately: graph must be a registered *name* on the wire).
_QUERY_FIELDS = tuple(
    f.name for f in dataclass_fields(MixingQuery) if f.name != "graph"
)
_QUERY_DEFAULTS = {
    f.name: f.default for f in dataclass_fields(MixingQuery)
    if f.name not in ("graph", "source")
}


def encode_query(query: MixingQuery) -> dict:
    """The wire form of one query: every knob spelled explicitly (the
    protocol has no implicit defaults — what was sent is what is meant),
    graph by registered name.  Raises :class:`WireError` (bad_request)
    when the query's graph is an object instead of a name."""
    if not isinstance(query.graph, str):
        raise WireError(
            "bad_request",
            "wire queries must reference graphs by registered name, got "
            f"{type(query.graph).__name__}",
        )
    out: dict = {"graph": query.graph}
    for name in _QUERY_FIELDS:
        value = getattr(query, name)
        if name == "sizes" and not isinstance(value, (str, type(None))):
            value = [int(s) for s in value]
        out[name] = value
    return out


def decode_query(obj: dict) -> MixingQuery:
    """Rebuild a :class:`~repro.service.MixingQuery` from its wire form.

    Strict: ``graph`` (a name) and ``source`` are required, every other
    field falls back to the query model's default, and *unknown* fields
    raise ``bad_request`` — a misspelled knob must never be silently
    ignored.  Type errors surface as ``bad_request`` too (the engine's
    own fail-fast validation still runs server-side on submission).
    """
    if not isinstance(obj, dict):
        raise WireError("bad_request", "query must be a JSON object")
    unknown = set(obj) - set(_QUERY_FIELDS) - {"graph"}
    if unknown:
        raise WireError(
            "bad_request", f"unknown query fields: {sorted(unknown)}"
        )
    graph = obj.get("graph")
    if not isinstance(graph, str) or not graph:
        raise WireError(
            "bad_request", "query.graph must be a non-empty graph name"
        )
    if "source" not in obj:
        raise WireError("bad_request", "query.source is required")
    kwargs = {}
    for name, default in _QUERY_DEFAULTS.items():
        value = obj.get(name, default)
        if name == "sizes" and isinstance(value, list):
            value = [int(s) for s in value]
        kwargs[name] = value
    try:
        return MixingQuery(graph=graph, source=obj["source"], **kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError("bad_request", str(exc)) from exc


def encode_request(query: MixingQuery, *, id: object = None) -> dict:
    """One request envelope: protocol version, operation, optional client
    correlation ``id`` (echoed verbatim in the response — how WebSocket
    clients match out-of-order answers), and the encoded query."""
    out = {"v": PROTOCOL_VERSION, "op": "query", "query": encode_query(query)}
    if id is not None:
        out["id"] = id
    return out


def decode_request(obj: dict) -> tuple[object, MixingQuery]:
    """Validate a request envelope and return ``(id, query)``.  Raises
    :class:`WireError` (bad_request) on a wrong version, an unknown op,
    or a malformed query object."""
    if not isinstance(obj, dict):
        raise WireError("bad_request", "request must be a JSON object")
    if obj.get("v") != PROTOCOL_VERSION:
        raise WireError(
            "bad_request",
            f"unsupported protocol version {obj.get('v')!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
        )
    if obj.get("op") != "query":
        raise WireError("bad_request", f"unknown op {obj.get('op')!r}")
    unknown = set(obj) - {"v", "op", "id", "query"}
    if unknown:
        raise WireError(
            "bad_request", f"unknown request fields: {sorted(unknown)}"
        )
    return obj.get("id"), decode_query(obj.get("query"))


#: Wire field order of a result (also the golden-fixture order).
_RESULT_FIELDS = (
    "time",
    "set_size",
    "deviation",
    "threshold",
    "steps_checked",
    "sizes_checked",
)


def encode_result(result: LocalMixingResult) -> dict:
    """The wire form of one result: the dataclass fields verbatim
    (floats round-trip bitwise through JSON's shortest ``repr``)."""
    return {name: getattr(result, name) for name in _RESULT_FIELDS}


def decode_result(obj: dict) -> LocalMixingResult:
    """Rebuild the exact :class:`LocalMixingResult` a response carried."""
    if not isinstance(obj, dict) or set(obj) != set(_RESULT_FIELDS):
        raise WireError("bad_request", "malformed result object")
    return LocalMixingResult(
        time=int(obj["time"]),
        set_size=int(obj["set_size"]),
        deviation=float(obj["deviation"]),
        threshold=float(obj["threshold"]),
        steps_checked=int(obj["steps_checked"]),
        sizes_checked=int(obj["sizes_checked"]),
    )


def encode_response(id: object, result: LocalMixingResult) -> dict:
    """A success envelope for ``result`` (the ``id`` echoes the request)."""
    out = {"v": PROTOCOL_VERSION, "ok": True, "result": encode_result(result)}
    if id is not None:
        out["id"] = id
    return out


def encode_error_response(id: object, code: str, message: str) -> dict:
    """A failure envelope carrying one stable error ``code`` and its
    message (the ``id`` echoes the request when it had one)."""
    if code not in ERROR_STATUS:
        raise ValueError(f"unknown wire error code {code!r}")
    out = {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if id is not None:
        out["id"] = id
    return out


def decode_response(obj: dict) -> tuple[object, LocalMixingResult]:
    """Client-side response handling: return ``(id, result)`` for a
    success envelope, raise the matching typed exception (see
    :func:`exception_for_code`) for a failure envelope."""
    if not isinstance(obj, dict) or obj.get("v") != PROTOCOL_VERSION:
        raise WireError("bad_request", f"malformed response: {obj!r}")
    if obj.get("ok"):
        return obj.get("id"), decode_result(obj.get("result"))
    err = obj.get("error") or {}
    raise exception_for_code(
        err.get("code", "internal"), err.get("message", "unknown error")
    )


def error_code_for(exc: BaseException) -> tuple[str, str]:
    """Map a server-side exception to its ``(code, message)`` wire form.

    The taxonomy is deliberately coarse and stable: serving errors map
    to their own codes, engine validation errors to ``bad_request``,
    unknown-graph lookups to ``not_found``, compute non-convergence to
    ``unconverged``, and anything unexpected to ``internal`` (message
    included — these are trusted-operator deployments, not multi-tenant
    ones)."""
    if isinstance(exc, WireError):
        return exc.code, str(exc)
    if isinstance(exc, DeadlineExceededError):
        return "deadline_exceeded", str(exc)
    if isinstance(exc, OverloadedError):
        return "overloaded", str(exc)
    if isinstance(exc, ServiceClosedError):
        return "shutting_down", str(exc)
    if isinstance(exc, ConvergenceError):
        return "unconverged", str(exc)
    if isinstance(exc, KeyError):
        return "not_found", str(exc.args[0]) if exc.args else "not found"
    if isinstance(exc, (ValueError, TypeError, GraphError)):
        return "bad_request", str(exc)
    return "internal", f"{type(exc).__name__}: {exc}"


def exception_for_code(code: str, message: str) -> Exception:
    """The client-side inverse of :func:`error_code_for`: rebuild the
    typed exception a wire error code stands for, so remote failures
    raise the same types in-process callers catch."""
    if code == "deadline_exceeded":
        return DeadlineExceededError(message)
    if code == "overloaded":
        return OverloadedError(message)
    if code == "shutting_down":
        return ServiceClosedError(message)
    if code == "unconverged":
        return ConvergenceError(message)
    if code == "not_found":
        return KeyError(message)
    if code == "bad_request":
        return ValueError(message)
    if code in ERROR_STATUS:  # internal
        return WireError(code, message)
    return WireError("internal", f"unknown error code {code!r}: {message}")


def dumps(obj: dict) -> bytes:
    """Serialize one protocol object to compact UTF-8 JSON bytes."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def loads(data: bytes | str) -> dict:
    """Parse protocol JSON, mapping syntax errors to ``bad_request``."""
    try:
        obj = json.loads(data)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError("bad_request", f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise WireError("bad_request", "protocol messages are JSON objects")
    return obj
