"""Minimal HTTP/1.1 parsing and RFC 6455 WebSocket framing on asyncio
streams.

The serving image ships no third-party HTTP stack, so the wire layer
carries its own — deliberately small: request-line + headers +
``Content-Length`` bodies (no chunked transfer, no multipart), keep-alive
connections, and the WebSocket subset the protocol needs (text, close,
ping/pong frames; 7/16/64-bit payload lengths; client-to-server masking
required per the RFC, server-to-client frames unmasked; no fragmented
messages — every protocol object fits one frame).  Both the server
(:mod:`repro.service.wire.server`) and the client
(:mod:`repro.service.wire.client`) are built on these primitives, so the
framing code is exercised from both ends in every wire test.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from dataclasses import dataclass, field

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "read_response",
    "render_request",
    "render_response",
    "ws_accept_key",
    "ws_encode_frame",
    "ws_read_message",
    "OP_TEXT",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
]

#: Hard bounds a remote peer cannot talk us past.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024
MAX_WS_PAYLOAD = 8 * 1024 * 1024

#: The RFC 6455 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes (the subset the wire protocol uses).
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    101: "Switching Protocols",
}


class HttpError(Exception):
    """A malformed or over-limit HTTP message (connection-fatal: the
    stream cannot be trusted to be request-aligned afterwards)."""


@dataclass
class Request:
    """One parsed HTTP request (or, client-side, response — ``method``
    then holds the status code as a string and ``path`` the reason)."""

    method: str
    path: str
    headers: dict = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


async def _read_head(reader) -> list[str] | None:
    """Read request/status line + headers up to the blank line; ``None``
    on clean EOF before any byte (keep-alive peer went away)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError
        if isinstance(exc, asyncio.IncompleteReadError):
            if not exc.partial:
                return None
            raise HttpError("connection closed mid-request") from exc
        raise HttpError(f"unreadable HTTP head: {exc}") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError("HTTP head too large")
    return head.decode("latin-1").split("\r\n")[:-2]


def _parse_headers(lines: list[str]) -> dict:
    headers: dict = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(reader, headers: dict) -> bytes:
    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError as exc:
        raise HttpError(f"bad Content-Length {length!r}") from exc
    if n < 0 or n > MAX_BODY_BYTES:
        raise HttpError(f"unacceptable Content-Length {n}")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError("chunked transfer encoding not supported")
    if n == 0:
        return b""
    try:
        return await reader.readexactly(n)
    except Exception as exc:
        raise HttpError("connection closed mid-body") from exc


async def read_request(reader) -> Request | None:
    """Parse one HTTP request off the stream (``None`` on clean EOF)."""
    lines = await _read_head(reader)
    if lines is None:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(f"malformed request line {lines[0]!r}")
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return Request(method=parts[0].upper(), path=parts[1],
                   headers=headers, body=body)


async def read_response(reader) -> Request:
    """Parse one HTTP response off the stream (client side): returns a
    :class:`Request` whose ``method`` is the status code string."""
    lines = await _read_head(reader)
    if lines is None:
        raise HttpError("connection closed before response")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(f"malformed status line {lines[0]!r}")
    headers = _parse_headers(lines[1:])
    body = await _read_body(reader, headers)
    return Request(method=parts[1], path=parts[2] if len(parts) > 2 else "",
                   headers=headers, body=body)


def render_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: tuple = (),
) -> bytes:
    """Serialize one HTTP response (Content-Length framing always)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_request(
    method: str,
    path: str,
    *,
    host: str,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: tuple = (),
) -> bytes:
    """Serialize one HTTP request (client side)."""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        f"Content-Length: {len(body)}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def ws_accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake ``client_key``
    (RFC 6455 §4.2.2: SHA-1 of key + GUID, base64)."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_encode_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """Serialize one unfragmented WebSocket frame.  Servers send
    unmasked (``mask=False``); clients must mask (``mask=True``, fresh
    random masking key per frame)."""
    head = bytearray([0x80 | opcode])
    n = len(payload)
    mask_bit = 0x80 if mask else 0
    if n < 126:
        head.append(mask_bit | n)
    elif n < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", n)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


async def _ws_read_frame(reader, *, require_mask: bool):
    """Read one raw frame → ``(fin, opcode, payload)``."""
    head = await reader.readexactly(2)
    fin = bool(head[0] & 0x80)
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    n = head[1] & 0x7F
    if n == 126:
        (n,) = struct.unpack("!H", await reader.readexactly(2))
    elif n == 127:
        (n,) = struct.unpack("!Q", await reader.readexactly(8))
    if n > MAX_WS_PAYLOAD:
        raise HttpError(f"WebSocket payload of {n} bytes over limit")
    if require_mask and not masked:
        raise HttpError("client frames must be masked (RFC 6455 §5.3)")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(n) if n else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return fin, opcode, payload


async def ws_read_message(reader, writer, *, require_mask: bool):
    """Read the next *data or close* message: answers pings inline,
    ignores pongs, rejects fragmentation and binary frames.  Returns
    ``(opcode, payload)`` where opcode is :data:`OP_TEXT` or
    :data:`OP_CLOSE`."""
    while True:
        fin, opcode, payload = await _ws_read_frame(
            reader, require_mask=require_mask
        )
        if not fin or opcode == 0x0:
            raise HttpError("fragmented WebSocket messages not supported")
        if opcode == OP_PING:
            writer.write(
                ws_encode_frame(OP_PONG, payload, mask=not require_mask)
            )
            await writer.drain()
            continue
        if opcode == OP_PONG:
            continue
        if opcode == OP_BINARY:
            raise HttpError("binary WebSocket frames not supported")
        if opcode not in (OP_TEXT, OP_CLOSE):
            raise HttpError(f"unsupported WebSocket opcode {opcode:#x}")
        return opcode, payload
