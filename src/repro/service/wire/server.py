"""The network front door: an asyncio HTTP + WebSocket wire server over
:class:`~repro.service.MixingService`.

Routes
------

* ``POST /v1/query`` — one protocol request
  (:mod:`repro.service.wire.protocol`) per HTTP request; the response
  status mirrors the typed error taxonomy (200 / 400 / 404 / 422 / 429 /
  503 / 504).
* ``GET /v1/ws`` — WebSocket upgrade; each text frame is one protocol
  request, answered by a text frame carrying the same ``id`` (answers may
  arrive out of request order — queries on one connection run
  concurrently, which is what lets a single socket drive a coalesced
  batch).
* ``GET /metrics`` — ``service.metrics.render()`` served **verbatim**
  (Prometheus text).  The wire layer's own counters are registered on a
  registry the service's composes in, so one scrape covers wire +
  cache + coalescer + registry + executor + kernel families.
* ``GET /healthz`` — health JSON: ``status`` is ``ok`` / ``degraded``
  (SLO breach — degraded is not dead) / ``draining``, plus the drain
  flag, queue depth, the current SLO verdict and a rolling-window
  summary.  ``?live=1`` short-circuits to the bare liveness probe
  (``{"status": "ok"}``) with none of the evaluation cost.
* ``GET /v1/debug/stream`` — observe-only WebSocket push: versioned
  JSON telemetry delta frames (rolling-window snapshot, SLO verdict +
  new transition alerts, queue-depth/connection gauges, resource-sampler
  values) every ``?interval=`` seconds (default 1 s).  Like the other
  debug paths it is excluded from the connection gauge and stays
  readable during drain — an operator can watch the drain complete;
  the stream closes with a proper close frame when the server does.
  :func:`~repro.service.wire.client.stream_telemetry` (and
  ``WireClient.stream_telemetry``) is the client half;
  ``tools/obs_top.py`` a terminal dashboard on top.
* ``GET /v1/debug/flight`` / ``/v1/debug/slow`` /
  ``/v1/debug/trace/<id>`` — the service's flight recorder
  (:mod:`repro.obs.flight`) in the stable export schema
  (:mod:`repro.obs.export`): recent / slowest-N query records
  (``?limit=&graph=&backend=&outcome=`` filters, response sizes
  bounded server-side) and one query's full span timeline by trace id.
  Debug and metrics endpoints are *observe-only*: they stay served
  while draining, and they are excluded from the query-path connection
  gauge — a scrape never observes itself.

Admission and backpressure
--------------------------

Admission is a **bounded queue**: at most ``max_pending`` queries may be
in flight past the front door.  A query arriving beyond the bound is
*rejected immediately* with a typed ``overloaded`` error (HTTP 429) —
explicit backpressure instead of unbounded buffering, so a client herd
degrades into fast, visible rejections rather than silent latency
collapse.  Rejected queries consume no engine work.  While draining,
new queries are answered ``shutting_down`` (503) instead.

Under pressure, **priority preempts**: when the bound is full and the
arriving query carries a higher ``priority`` than some admitted query
still waiting, the lowest-priority waiter is released with
``overloaded`` (429, counted in
``repro_wire_priority_preempted_total``) and the new query takes its
slot — so urgent traffic is not locked out by a backlog of background
work.  Preemption releases only the wire waiter: a preempted query's
underlying solve (shared with co-waiters and the result cache) keeps
running, exactly like a deadline miss.  Priorities never change what is
computed.

Deadlines ride the query objects themselves
(:attr:`~repro.service.MixingQuery.deadline`): the service threads them
into the coalescer (deadline-aware flush) and answers late queries with
``deadline_exceeded`` (504) — see :mod:`repro.service.coalescer`.

Counter accounting is exact and closed:
``requests = admitted + rejected`` and
``admitted = answered + expired + errored`` — every query that enters
ends in exactly one bucket (the soak test asserts both equalities under
hundreds of concurrent clients).

Lifecycle
---------

:meth:`WireServer.aclose` (or leaving the ``async with`` block) stops
accepting connections, flips the draining flag (new queries on live
connections are 503'd), waits for every in-flight query to be answered,
closes WebSocket streams with a proper close frame, and — only then —
returns.  The server does *not* own the service: composing
``async with MixingService(...) as svc, WireServer(svc) as server:``
drains the wire first and the coalescer second, so every admitted query
is answered and owned executors shut down leak-free.

**The wire changes transport, never answers**: a response body is the
bitwise-identical result the in-process ``await service.submit(query)``
returns, floats included (see :mod:`repro.service.wire.protocol`).
"""

from __future__ import annotations

import asyncio
import time
from urllib.parse import parse_qs

from repro.obs import MetricsRegistry, trace
from repro.obs import export as flight_export
from repro.service.errors import OverloadedError, ServiceClosedError
from repro.service.wire import http as _http
from repro.service.wire import protocol
from repro.service.wire.http import (
    OP_CLOSE,
    OP_TEXT,
    HttpError,
    Request,
    render_response,
    ws_accept_key,
    ws_encode_frame,
    ws_read_message,
)

__all__ = ["WireServer"]


class WireServer:
    """Serve a :class:`~repro.service.MixingService` over HTTP + WebSocket.

    Parameters
    ----------
    service:
        The service to front.  Not owned: the caller closes it (after
        this server has drained).  The server registers its wire metrics
        on the service's composed registry so ``GET /metrics`` covers
        every tier.
    host, port:
        Bind address; ``port=0`` (the default) picks an ephemeral port,
        exposed as :attr:`port` / :attr:`url` after :meth:`start`.
    max_pending:
        The admission bound: maximum queries in flight past the front
        door before new arrivals are rejected with ``overloaded`` (429).
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 256,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self.max_pending = int(max_pending)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._pending = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._query_tasks: set[asyncio.Task] = set()
        # Admitted queries still waiting, keyed by a per-query token:
        # token -> (priority, preempt future).  A higher-priority arrival
        # under max_pending pressure resolves the lowest-priority entry's
        # future instead of being 429'd itself.
        self._admissions: dict[object, tuple[int, asyncio.Future]] = {}

        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_wire_requests_total",
            "Wire queries received (admitted or rejected).",
        )
        self._admitted = self.metrics.counter(
            "repro_wire_admitted_total",
            "Wire queries admitted past the front door.",
        )
        self._rejected = self.metrics.counter(
            "repro_wire_rejected_total",
            "Wire queries rejected by admission (backpressure or drain).",
        )
        self._answered = self.metrics.counter(
            "repro_wire_answered_total",
            "Admitted wire queries answered with a result.",
        )
        self._expired = self.metrics.counter(
            "repro_wire_expired_total",
            "Admitted wire queries answered with deadline_exceeded.",
        )
        self._errored = self.metrics.counter(
            "repro_wire_errors_total",
            "Admitted wire queries answered with a typed error "
            "(other than deadline_exceeded).",
        )
        self._queue_depth = self.metrics.gauge(
            "repro_wire_queue_depth",
            "Wire queries currently in flight past admission.",
        )
        self._latency = self.metrics.histogram(
            "repro_wire_request_seconds",
            "Wire request latency, admission to response encode.",
        )
        self._connections = self.metrics.gauge(
            "repro_wire_connections", "Open wire connections."
        )
        self._disconnects = self.metrics.counter(
            "repro_wire_client_disconnects_total",
            "Connections dropped by the peer with queries in flight.",
        )
        self._preempted = self.metrics.counter(
            "repro_wire_priority_preempted_total",
            "Admitted wire queries preempted (429) by a higher-priority "
            "arrival under max_pending pressure.",
        )
        self._debug_requests = self.metrics.counter(
            "repro_wire_debug_requests_total",
            "Debug-endpoint requests served.",
            labels=("endpoint",),
        )
        self._stream_subscribers = self.metrics.gauge(
            "repro_wire_stream_subscribers",
            "Open /v1/debug/stream telemetry subscriptions.",
        )
        self._stream_frames = self.metrics.counter(
            "repro_wire_stream_frames_total",
            "Telemetry delta frames pushed to stream subscribers.",
        )
        # One scrape covers everything: /metrics serves the *service's*
        # composed registry verbatim, and these counters ride along.
        service.metrics.include(self.metrics)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "WireServer":
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_conn, self.host, self._requested_port
            )
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base ``http://host:port`` URL of the running server."""
        return f"http://{self.host}:{self.port}"

    async def aclose(self) -> None:
        """Graceful drain: stop accepting, 503 new queries, answer every
        in-flight one, close WebSocket streams with a close frame, and
        return once every connection task has finished.  Idempotent."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every admitted query resolves (the service never drops work) —
        # including ones that arrive on live connections *during* the
        # drain (they are answered shutting_down, which is still an
        # answer, so the set can briefly regrow).
        while self._query_tasks:
            await asyncio.gather(
                *list(self._query_tasks), return_exceptions=True
            )
        # Only now — every answer written — unblock connections idling in
        # a read: cancellation reaches the WS session's cleanup, which
        # sends the close frame, and the handler's finally closes the
        # socket.
        for task in list(self._conn_tasks):
            task.cancel()
        while self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )

    async def __aenter__(self) -> "WireServer":
        """Start (if needed) and enter the serving context."""
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        """Drain and close on context exit."""
        await self.aclose()

    def stats(self) -> dict:
        """Wire counters as one dict: requests / admitted / rejected /
        answered / expired / errored, current queue depth and open
        connections."""
        return {
            "requests": self._requests.value,
            "admitted": self._admitted.value,
            "rejected": self._rejected.value,
            "answered": self._answered.value,
            "expired": self._expired.value,
            "errored": self._errored.value,
            "preempted": self._preempted.value,
            "queue_depth": self._pending,
            "connections": self._connections.value,
            "stream_subscribers": self._stream_subscribers.value,
            "stream_frames": self._stream_frames.value,
        }

    # ------------------------------------------------------------------ #
    # Query handling (transport-independent)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _peek_priority(obj) -> int:
        """The ``priority`` of a not-yet-decoded request envelope (0 on
        any malformation — a bad request never preempts anyone; it fails
        in ``decode_request`` after admission like before)."""
        if isinstance(obj, dict) and isinstance(obj.get("query"), dict):
            try:
                return int(obj["query"].get("priority", 0))
            except (TypeError, ValueError):
                return 0
        return 0

    def _try_preempt(self, priority: int) -> bool:
        """Under ``max_pending`` pressure: release the lowest-priority
        admitted waiter whose priority is strictly below ``priority``
        (its wire answer becomes ``overloaded``; its underlying solve
        keeps running for co-waiters and the cache).  True when a victim
        was found — the caller's query then takes the freed slot."""
        victim_token, victim_priority = None, priority
        for token, (pri, fut) in self._admissions.items():
            if pri < victim_priority and not fut.done():
                victim_token, victim_priority = token, pri
        if victim_token is None:
            return False
        _, fut = self._admissions.pop(victim_token)
        fut.set_result(None)
        self._preempted.inc()
        return True

    async def _answer(self, payload: bytes, transport: str) -> tuple[dict, int]:
        """Decode, admit and answer one protocol request; returns
        ``(response_object, http_status)``.  Never raises — every failure
        mode maps to a typed error envelope, and the counters account for
        the query exactly once.

        Admission under pressure prefers priority: a full queue first
        tries :meth:`_try_preempt` with the arrival's priority and only
        then rejects with 429.  (While the preempted waiter unwinds,
        ``_pending`` may transiently read ``max_pending + 1`` — the
        preemptor is admitted in the same loop turn its victim is
        released.)"""
        self._requests.inc()
        req_id = None
        try:
            obj = protocol.loads(payload)
            req_id = obj.get("id") if isinstance(obj, dict) else None
            if self._draining:
                raise ServiceClosedError("server is draining")
            if self._pending >= self.max_pending and not self._try_preempt(
                self._peek_priority(obj)
            ):
                raise OverloadedError(
                    f"{self._pending} queries in flight (bound "
                    f"{self.max_pending}); retry with backoff"
                )
        except BaseException as exc:
            self._rejected.inc()
            code, message = protocol.error_code_for(exc)
            return (
                protocol.encode_error_response(req_id, code, message),
                protocol.ERROR_STATUS[code],
            )
        # Past admission: exactly one of answered/expired/errored.
        self._admitted.inc()
        self._pending += 1
        self._queue_depth.set(self._pending)
        flight = getattr(self.service, "flight", None)
        tid = flight.next_trace_id() if flight is not None else None
        token = object()
        preempt_fut = asyncio.get_running_loop().create_future()
        t0 = time.perf_counter()
        try:
            with trace("wire_request", transport=transport):
                req_id, query = protocol.decode_request(obj)
                self._admissions[token] = (query.priority, preempt_fut)
                submit = asyncio.ensure_future(
                    self.service.submit(query, trace_id=tid)
                    if tid is not None
                    else self.service.submit(query)
                )
                await asyncio.wait(
                    {submit, preempt_fut},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if preempt_fut.done() and not submit.done():
                    # Only this waiter is released; the shared solve is
                    # shielded inside the service and keeps running.
                    submit.cancel()
                    await asyncio.gather(submit, return_exceptions=True)
                    raise OverloadedError(
                        "preempted by a higher-priority query; retry "
                        "with backoff"
                    )
                result = await submit
            self._answered.inc()
            return protocol.encode_response(req_id, result), 200
        except BaseException as exc:
            code, message = protocol.error_code_for(exc)
            if code == "deadline_exceeded":
                self._expired.inc()
            else:
                self._errored.inc()
            return (
                protocol.encode_error_response(req_id, code, message),
                protocol.ERROR_STATUS[code],
            )
        finally:
            self._admissions.pop(token, None)
            self._pending -= 1
            self._queue_depth.set(self._pending)
            self._latency.observe(time.perf_counter() - t0, exemplar=tid)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    #: Paths that only *observe* the server (scrapes, health probes,
    #: flight-recorder reads).  Connections that never leave this set are
    #: excluded from the query-path connection gauge, so a ``/metrics``
    #: scrape compares verbatim with a locally rendered registry — the
    #: scrape never observes itself.
    _OBSERVE_PATHS = ("/metrics", "/healthz")
    _OBSERVE_PREFIX = "/v1/debug/"

    @classmethod
    def _is_observe_only(cls, path: str) -> bool:
        return path in cls._OBSERVE_PATHS or path.startswith(
            cls._OBSERVE_PREFIX
        )

    async def _handle_conn(self, reader, writer) -> None:
        """One accepted TCP connection: HTTP keep-alive loop, possibly
        upgraded to a WebSocket session.  The connection gauge counts the
        connection only once it issues a non-observe-only request."""
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn_state = {"counted": False}
        try:
            await self._http_loop(reader, writer, conn_state)
        except asyncio.CancelledError:
            # Drain: aclose() cancels idle connections after the last
            # answer is written.  Finish normally — a task left in the
            # cancelled state makes asyncio's streams machinery log a
            # spurious "Exception in callback" on teardown.
            pass
        except (
            HttpError,
            ConnectionError,
            asyncio.IncompleteReadError,
            TimeoutError,
        ):
            pass  # peer misbehaved or went away; drop the connection
        finally:
            if conn_state["counted"]:
                self._connections.inc(-1)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _count_conn(self, conn_state: dict) -> None:
        """Admit this connection into the connection gauge (idempotent;
        called on the first query-path request or WS upgrade)."""
        if not conn_state["counted"]:
            conn_state["counted"] = True
            self._connections.inc()

    async def _http_loop(self, reader, writer, conn_state: dict) -> None:
        while True:
            request = await _http.read_request(reader)
            if request is None:
                return
            if self._is_ws_upgrade(request):
                if request.path.split("?", 1)[0] == self._STREAM_PATH:
                    # Observe-only, like the other debug paths: a
                    # telemetry subscriber never joins the connection
                    # gauge and stays served during drain.
                    await self._stream_session(reader, writer, request)
                    return
                self._count_conn(conn_state)
                await self._ws_session(reader, writer, request)
                return
            if not self._is_observe_only(request.path.split("?", 1)[0]):
                self._count_conn(conn_state)
            keep_alive = (
                request.header("connection").lower() != "close"
                and not self._draining
            )
            status, body, ctype = await self._route(request)
            writer.write(
                render_response(
                    status, body, content_type=ctype, keep_alive=keep_alive
                )
            )
            await writer.drain()
            if not keep_alive:
                return

    async def _route(self, request: Request) -> tuple[int, bytes, str]:
        """Dispatch one plain-HTTP request → (status, body, content type)."""
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/metrics" and method == "GET":
            # The service's composed Prometheus payload, verbatim.
            return (
                200,
                self.service.metrics.render().encode("utf-8"),
                "text/plain; version=0.0.4",
            )
        if path == "/healthz" and method == "GET":
            return 200, self._healthz_body(request), "application/json"
        if path.startswith(self._OBSERVE_PREFIX) and method == "GET":
            return self._route_debug(request, path)
        if path == "/v1/query":
            if method != "POST":
                return (
                    405,
                    protocol.dumps(
                        protocol.encode_error_response(
                            None, "bad_request", "POST /v1/query"
                        )
                    ),
                    "application/json",
                )
            response, status = await self._answer(request.body, "http")
            return status, protocol.dumps(response), "application/json"
        if path == "/v1/ws":
            return (
                426,
                protocol.dumps(
                    protocol.encode_error_response(
                        None, "bad_request",
                        "/v1/ws requires a WebSocket upgrade",
                    )
                ),
                "application/json",
            )
        return (
            404,
            protocol.dumps(
                protocol.encode_error_response(
                    None, "not_found", f"no route {method} {path}"
                )
            ),
            "application/json",
        )

    def _healthz_body(self, request: Request) -> bytes:
        """The ``/healthz`` response body.  ``?live=1`` is the bare
        liveness fast path — a constant ``{"status": "ok"}`` with no SLO
        evaluation, for probes that only ask "is the process serving".
        The full body reports ``status`` (``draining`` / ``degraded`` on
        an SLO breach / ``ok`` — degraded is not dead, so the HTTP
        status stays 200 and readiness policy is the caller's), the
        drain flag, queue occupancy, the SLO verdict, and a
        rolling-window summary."""
        params = parse_qs(request.path.partition("?")[2])
        if params.get("live"):
            return protocol.dumps({"status": "ok"})
        engine = getattr(self.service, "slo_engine", None)
        verdict = engine.evaluate().to_dict() if engine is not None else None
        live = getattr(self.service, "live", None)
        window = None
        if live is not None:
            snap = live.snapshot()
            window = {
                "count": snap["count"],
                "errors": snap["errors"],
                "rate": snap["rate"],
                "error_rate": snap["error_rate"],
                "quantiles": snap["quantiles"],
                "covered": snap["covered"],
            }
        if self._draining:
            status = "draining"
        elif verdict is not None and verdict["status"] == "breach":
            status = "degraded"
        else:
            status = "ok"
        return protocol.dumps(
            {
                "status": status,
                "draining": self._draining,
                "queue_depth": self._pending,
                "max_pending": self.max_pending,
                "slo": verdict,
                "window": window,
            }
        )

    def _route_debug(self, request: Request, path: str) -> tuple[int, bytes, str]:
        """Serve one flight-recorder debug endpoint (``/v1/debug/flight``,
        ``/v1/debug/slow``, ``/v1/debug/trace/<id>``).  Responses are
        bounded (the export layer clamps ``limit``), observe-only (served
        during drain, excluded from the connection gauge), and JSON in
        the stable :mod:`repro.obs.export` schema."""
        flight = getattr(self.service, "flight", None)
        if flight is None:
            return self._debug_error(
                404, "not_found", "service has no flight recorder"
            )
        params = parse_qs(request.path.partition("?")[2])

        def param(name: str) -> str | None:
            values = params.get(name)
            return values[-1] if values else None

        try:
            limit = (
                int(param("limit")) if param("limit") is not None else None
            )
        except ValueError:
            return self._debug_error(
                400, "bad_request", f"bad limit {param('limit')!r}"
            )
        if path == "/v1/debug/flight":
            self._debug_requests.labels(endpoint="flight").inc()
            payload = flight_export.flight_payload(
                flight,
                limit=limit,
                graph=param("graph"),
                backend=param("backend"),
                outcome=param("outcome"),
            )
            return 200, protocol.dumps(payload), "application/json"
        if path == "/v1/debug/slow":
            self._debug_requests.labels(endpoint="slow").inc()
            payload = flight_export.slow_payload(
                flight,
                limit=limit,
                graph=param("graph"),
                backend=param("backend"),
            )
            return 200, protocol.dumps(payload), "application/json"
        if path == self._STREAM_PATH:
            return (
                426,
                protocol.dumps(
                    protocol.encode_error_response(
                        None, "bad_request",
                        f"{self._STREAM_PATH} requires a WebSocket upgrade",
                    )
                ),
                "application/json",
            )
        trace_prefix = self._OBSERVE_PREFIX + "trace/"
        if path.startswith(trace_prefix):
            self._debug_requests.labels(endpoint="trace").inc()
            trace_id = path[len(trace_prefix):]
            payload = flight_export.trace_payload(flight, trace_id)
            if payload is None:
                return self._debug_error(
                    404, "not_found", f"no flight record {trace_id!r}"
                )
            return 200, protocol.dumps(payload), "application/json"
        return self._debug_error(
            404, "not_found", f"no debug route {path}"
        )

    @staticmethod
    def _debug_error(status: int, code: str, message: str) -> tuple[int, bytes, str]:
        return (
            status,
            protocol.dumps(
                protocol.encode_error_response(None, code, message)
            ),
            "application/json",
        )

    # ------------------------------------------------------------------ #
    # WebSocket session
    # ------------------------------------------------------------------ #

    #: The telemetry-push WebSocket path (observe-only, like the other
    #: ``/v1/debug/`` routes).
    _STREAM_PATH = "/v1/debug/stream"

    @classmethod
    def _is_ws_upgrade(cls, request: Request) -> bool:
        return (
            "upgrade" in request.header("connection").lower()
            and request.header("upgrade").lower() == "websocket"
            and request.path.split("?", 1)[0] in ("/v1/ws", cls._STREAM_PATH)
        )

    async def _ws_handshake(self, writer, request: Request) -> bool:
        """Answer one WebSocket upgrade (101 + accept key); False (after
        a 400) when the client sent no ``Sec-WebSocket-Key``."""
        key = request.header("sec-websocket-key")
        if not key:
            writer.write(
                render_response(400, b"missing Sec-WebSocket-Key",
                                content_type="text/plain", keep_alive=False)
            )
            await writer.drain()
            return False
        writer.write(
            render_response(
                101,
                b"",
                keep_alive=True,
                extra_headers=(
                    ("Upgrade", "websocket"),
                    ("Connection", "Upgrade"),
                    ("Sec-WebSocket-Accept", ws_accept_key(key)),
                ),
            )
        )
        await writer.drain()
        return True

    async def _ws_session(self, reader, writer, request: Request) -> None:
        """One upgraded WebSocket connection: every text frame is an
        independent protocol request answered concurrently (a response
        frame carries the request's ``id``); the session ends on a close
        frame, peer EOF, or server drain."""
        if not await self._ws_handshake(writer, request):
            return
        send_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()

        async def answer_one(payload: bytes) -> None:
            response, _status = await self._answer(payload, "ws")
            async with send_lock:
                try:
                    writer.write(
                        ws_encode_frame(OP_TEXT, protocol.dumps(response))
                    )
                    await writer.drain()
                except (ConnectionError, RuntimeError, OSError):
                    # Peer gone mid-answer: the solve completed (and fed
                    # the cache/co-waiters); delivery alone failed.
                    self._disconnects.inc()

        try:
            while True:
                opcode, payload = await ws_read_message(
                    reader, writer, require_mask=True
                )
                if opcode == OP_CLOSE:
                    break
                task = asyncio.ensure_future(answer_one(payload))
                inflight.add(task)
                self._query_tasks.add(task)
                task.add_done_callback(inflight.discard)
                task.add_done_callback(self._query_tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            if inflight:
                self._disconnects.inc()
        finally:
            # Answer everything already admitted before closing the frame
            # stream — drain never abandons an in-flight query.
            if inflight:
                await asyncio.gather(*list(inflight), return_exceptions=True)
            try:
                async with send_lock:
                    writer.write(ws_encode_frame(OP_CLOSE, b"\x03\xe8"))
                    await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass

    # ------------------------------------------------------------------ #
    # Telemetry push stream
    # ------------------------------------------------------------------ #

    #: Clamp bounds for the subscriber-chosen push interval (seconds).
    _STREAM_MIN_INTERVAL = 0.05
    _STREAM_MAX_INTERVAL = 60.0

    def _telemetry_frame(self, seq: int, alert_cursor: int) -> tuple[dict, int]:
        """Build one telemetry delta frame: the service's live view
        (window snapshot + SLO verdict + sampler values), the SLO
        transition alerts this subscriber has not seen (advancing its
        cursor), and the wire tier's own instantaneous gauges."""
        telemetry_of = getattr(self.service, "telemetry", None)
        telemetry = telemetry_of() if telemetry_of is not None else {}
        alerts: list = []
        engine = getattr(self.service, "slo_engine", None)
        if engine is not None:
            alerts, alert_cursor = engine.alerts(alert_cursor)
        frame = flight_export.telemetry_payload(
            telemetry,
            seq=seq,
            unix_ts=time.time(),
            alerts=alerts,
            gauges={
                "queue_depth": self._pending,
                "connections": self._connections.value,
                "max_pending": self.max_pending,
                "stream_subscribers": self._stream_subscribers.value,
            },
            draining=self._draining,
        )
        return frame, alert_cursor

    async def _stream_session(self, reader, writer, request: Request) -> None:
        """One ``GET /v1/debug/stream`` subscription: push a versioned
        telemetry delta frame every ``?interval=`` seconds (clamped)
        until the client sends a close frame, disconnects, or the server
        finishes draining (the stream stays live *during* the drain —
        :meth:`aclose` cancels subscriber connections only after the
        last query is answered — and closes with a proper close frame)."""
        params = parse_qs(request.path.partition("?")[2])
        try:
            interval = float(params.get("interval", ["1.0"])[-1])
        except ValueError:
            interval = 1.0
        interval = min(
            max(interval, self._STREAM_MIN_INTERVAL),
            self._STREAM_MAX_INTERVAL,
        )
        if not await self._ws_handshake(writer, request):
            return
        self._debug_requests.labels(endpoint="stream").inc()
        self._stream_subscribers.inc()
        closed = asyncio.ensure_future(self._stream_watch(reader, writer))
        seq = 0
        alert_cursor = 0
        try:
            while not closed.done():
                seq += 1
                frame, alert_cursor = self._telemetry_frame(seq, alert_cursor)
                writer.write(ws_encode_frame(OP_TEXT, protocol.dumps(frame)))
                await writer.drain()
                self._stream_frames.inc()
                await asyncio.wait({closed}, timeout=interval)
        except (ConnectionError, RuntimeError, OSError):
            pass  # subscriber went away mid-push
        finally:
            self._stream_subscribers.inc(-1)
            closed.cancel()
            await asyncio.gather(closed, return_exceptions=True)
            try:
                writer.write(ws_encode_frame(OP_CLOSE, b"\x03\xe8"))
                await writer.drain()
            except (
                ConnectionError, RuntimeError, OSError,
                asyncio.CancelledError,
            ):
                pass

    @staticmethod
    async def _stream_watch(reader, writer) -> None:
        """Await the subscriber's close: reads (and discards) incoming
        frames — answering pings inline — until a close frame or EOF.
        The push loop wakes as soon as this task completes."""
        try:
            while True:
                opcode, _payload = await ws_read_message(
                    reader, writer, require_mask=True
                )
                if opcode == OP_CLOSE:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            return
