"""The network front door for :class:`~repro.service.MixingService`.

This package puts the serving stack on a socket without adding a single
dependency: HTTP/1.1 and RFC 6455 WebSocket framing are implemented on
raw asyncio streams (:mod:`repro.service.wire.http`), a versioned JSON
protocol carries the full :class:`~repro.service.MixingQuery` knob space
(:mod:`repro.service.wire.protocol`), and
:class:`~repro.service.wire.server.WireServer` fronts the service with
bounded admission with priority preemption, per-query deadlines threaded
into the coalescer's flush timer, a verbatim Prometheus ``GET /metrics``
endpoint, an SLO-aware ``/healthz`` (``?live=1`` bare-liveness fast
path), flight-recorder debug endpoints (``/v1/debug/flight`` /
``/v1/debug/slow`` / ``/v1/debug/trace/<id>``), a live-telemetry push
stream (``/v1/debug/stream`` WebSocket — rolling-window snapshots, SLO
alerts, runtime gauges; see :mod:`repro.obs.live` /
:mod:`repro.obs.slo` and ``tools/obs_top.py``), and graceful drain.
:mod:`repro.service.wire.client` is the matching client (one-shot HTTP,
a multiplexing WebSocket session, debug-endpoint helpers, and the
:func:`~repro.service.wire.client.stream_telemetry` async iterator).

The contract is the library-wide one: **the wire changes transport,
never answers** — a result decoded off the socket is bitwise identical,
floats included, to the in-process ``await service.submit(query)``
return, and every admitted query is answered or cleanly errored even
through drain (``tests/test_wire_protocol.py``,
``tests/test_wire_faults.py``, ``tests/test_wire_serving.py``).
"""

from repro.service.wire.client import (
    WireClient,
    debug_flight,
    debug_slow,
    debug_trace,
    http_get,
    http_query,
    stream_telemetry,
)
from repro.service.wire.protocol import (
    ERROR_STATUS,
    PROTOCOL_VERSION,
    WireError,
)
from repro.service.wire.server import WireServer

__all__ = [
    "ERROR_STATUS",
    "PROTOCOL_VERSION",
    "WireClient",
    "WireError",
    "WireServer",
    "debug_flight",
    "debug_slow",
    "debug_trace",
    "http_get",
    "http_query",
    "stream_telemetry",
]
