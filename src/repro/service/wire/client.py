"""Asyncio clients for the wire protocol.

Two shapes, matching the two transports:

* :func:`http_query` — one-shot: open a connection, ``POST /v1/query``,
  decode the answer (typed exceptions for error envelopes), close.
  Also :func:`http_get` for the plain-text endpoints (``/metrics``,
  ``/healthz``), the :func:`debug_flight` / :func:`debug_slow` /
  :func:`debug_trace` helpers for the server's flight-recorder debug
  endpoints (decoded JSON in the :mod:`repro.obs.export` schema), and
  :func:`stream_telemetry` — an async iterator over the server's
  ``/v1/debug/stream`` live-telemetry push.
* :class:`WireClient` — a persistent WebSocket session: queries are
  submitted concurrently over one socket, correlated back to their
  futures by the request ``id`` the server echoes (answers may arrive in
  any order — a coalesced batch resolves its whole cohort at once).

Both decode with :func:`repro.service.wire.protocol.decode_response`, so
a remote failure raises the *same* typed exception an in-process
``service.submit`` call would (:class:`~repro.service.errors.\
DeadlineExceededError`, :class:`~repro.service.errors.OverloadedError`,
:class:`~repro.errors.ConvergenceError`, ``KeyError`` for unknown
graphs, ...), and a remote success returns a bitwise-identical
:class:`~repro.walks.local_mixing.LocalMixingResult`.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import os
from urllib.parse import quote

from repro.service.wire import protocol
from repro.service.wire.http import (
    OP_CLOSE,
    OP_TEXT,
    HttpError,
    read_response,
    render_request,
    ws_accept_key,
    ws_encode_frame,
    ws_read_message,
)

__all__ = [
    "WireClient",
    "debug_flight",
    "debug_slow",
    "debug_trace",
    "http_get",
    "http_query",
    "stream_telemetry",
]


async def http_get(host: str, port: int, path: str) -> tuple[int, bytes]:
    """One-shot ``GET path`` → ``(status, body)`` (no protocol decode —
    for ``/metrics`` and ``/healthz``)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            render_request(
                "GET", path, host=f"{host}:{port}",
                extra_headers=(("Connection", "close"),),
            )
        )
        await writer.drain()
        response = await read_response(reader)
        return int(response.method), response.body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _debug_qs(limit=None, graph=None, backend=None, outcome=None) -> str:
    pairs = [
        (name, value)
        for name, value in (
            ("limit", limit),
            ("graph", graph),
            ("backend", backend),
            ("outcome", outcome),
        )
        if value is not None
    ]
    if not pairs:
        return ""
    return "?" + "&".join(f"{name}={quote(str(value))}" for name, value in pairs)


async def _debug_get(host: str, port: int, path: str) -> dict:
    status, body = await http_get(host, port, path)
    obj = protocol.loads(body)
    if status != 200:
        err = (obj.get("error") or {}) if isinstance(obj, dict) else {}
        raise protocol.exception_for_code(
            err.get("code", "internal"),
            err.get("message", f"debug endpoint answered {status}"),
        )
    return obj


async def debug_flight(
    host: str,
    port: int,
    *,
    limit: int | None = None,
    graph: str | None = None,
    backend: str | None = None,
    outcome: str | None = None,
) -> dict:
    """``GET /v1/debug/flight``: the server's most recent flight records
    (newest first, optionally filtered, server-bounded) as the decoded
    export envelope ``{"v", "kind", "records", "stats"}``."""
    return await _debug_get(
        host,
        port,
        "/v1/debug/flight"
        + _debug_qs(limit=limit, graph=graph, backend=backend,
                    outcome=outcome),
    )


async def debug_slow(
    host: str,
    port: int,
    *,
    limit: int | None = None,
    graph: str | None = None,
    backend: str | None = None,
) -> dict:
    """``GET /v1/debug/slow``: the server's slowest retained queries
    (descending duration, optionally filtered per graph / backend)."""
    return await _debug_get(
        host,
        port,
        "/v1/debug/slow"
        + _debug_qs(limit=limit, graph=graph, backend=backend),
    )


async def debug_trace(host: str, port: int, trace_id: str) -> dict:
    """``GET /v1/debug/trace/<id>``: one query's flight record with its
    full span timeline embedded; raises ``KeyError`` (the ``not_found``
    taxonomy) when the server retains no such record."""
    return await _debug_get(
        host, port, f"/v1/debug/trace/{quote(trace_id)}"
    )


async def stream_telemetry(
    host: str,
    port: int,
    *,
    interval: float = 1.0,
    max_frames: int | None = None,
):
    """Subscribe to ``GET /v1/debug/stream`` and yield decoded telemetry
    delta frames (the :func:`repro.obs.export.telemetry_payload`
    envelope: window snapshot, SLO verdict, unseen alerts, wire gauges,
    sampler values) as an async iterator.

    Opens its own connection — the subscription is observe-only on the
    server, so it never counts against the query-path connection gauge
    and keeps yielding during a server drain.  Stops after
    ``max_frames`` frames (``None``: until the server closes or the
    consumer breaks out; the generator's ``finally`` sends a client
    close frame either way)::

        async for frame in stream_telemetry(host, port, interval=0.5):
            print(frame["seq"], frame["window"]["rate"])
    """
    reader, writer = await asyncio.open_connection(host, port)
    key = base64.b64encode(os.urandom(16)).decode("latin-1")
    path = f"/v1/debug/stream?interval={interval}"
    try:
        writer.write(
            render_request(
                "GET", path, host=f"{host}:{port}",
                extra_headers=(
                    ("Connection", "Upgrade"),
                    ("Upgrade", "websocket"),
                    ("Sec-WebSocket-Key", key),
                    ("Sec-WebSocket-Version", "13"),
                ),
            )
        )
        await writer.drain()
        response = await read_response(reader)
        if (
            response.method != "101"
            or response.header("sec-websocket-accept") != ws_accept_key(key)
        ):
            raise HttpError(
                f"telemetry stream handshake refused: {response.method} "
                f"{response.path}"
            )
        served = 0
        while max_frames is None or served < max_frames:
            opcode, payload = await ws_read_message(
                reader, writer, require_mask=False
            )
            if opcode == OP_CLOSE:
                return
            served += 1
            yield protocol.loads(payload)
    finally:
        try:
            writer.write(ws_encode_frame(OP_CLOSE, b"\x03\xe8", mask=True))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_query(host: str, port: int, query) -> object:
    """One-shot ``POST /v1/query`` for one
    :class:`~repro.service.MixingQuery`: returns the decoded
    :class:`~repro.walks.local_mixing.LocalMixingResult` or raises the
    typed exception the error envelope stands for."""
    body = protocol.dumps(protocol.encode_request(query, id=0))
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            render_request(
                "POST", "/v1/query", host=f"{host}:{port}", body=body,
                extra_headers=(("Connection", "close"),),
            )
        )
        await writer.drain()
        response = await read_response(reader)
        _id, result = protocol.decode_response(protocol.loads(response.body))
        return result
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class WireClient:
    """A persistent WebSocket session against a
    :class:`~repro.service.wire.WireServer`.

    ``await client.submit(query)`` has the exact signature and semantics
    of :meth:`MixingService.submit <repro.service.MixingService.submit>`
    — concurrent submissions multiplex over the one socket and resolve
    out of order by correlation id, which is precisely what lets a
    single client drive a server-side coalesced batch.  Use as an async
    context manager::

        async with WireClient(host, port) as client:
            result = await client.submit(query)
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._ids = itertools.count()
        self._waiters: dict[int, asyncio.Future] = {}
        self._recv_task: asyncio.Task | None = None
        self._send_lock = asyncio.Lock()
        self._closed = False

    async def connect(self) -> "WireClient":
        """Open the socket and perform the RFC 6455 handshake."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        self._writer.write(
            render_request(
                "GET", "/v1/ws", host=f"{self.host}:{self.port}",
                extra_headers=(
                    ("Connection", "Upgrade"),
                    ("Upgrade", "websocket"),
                    ("Sec-WebSocket-Key", key),
                    ("Sec-WebSocket-Version", "13"),
                ),
            )
        )
        await self._writer.drain()
        response = await read_response(self._reader)
        if (
            response.method != "101"
            or response.header("sec-websocket-accept") != ws_accept_key(key)
        ):
            raise HttpError(
                f"WebSocket handshake refused: {response.method} "
                f"{response.path}"
            )
        self._recv_task = asyncio.ensure_future(self._recv_loop())
        return self

    async def submit(self, query) -> object:
        """Send one query, await its (possibly out-of-order) answer:
        the decoded result, or the typed exception for its error
        envelope."""
        if self._closed or self._writer is None:
            raise RuntimeError("WireClient is not connected")
        req_id = next(self._ids)
        fut = asyncio.get_running_loop().create_future()
        self._waiters[req_id] = fut
        payload = protocol.dumps(protocol.encode_request(query, id=req_id))
        try:
            async with self._send_lock:
                self._writer.write(ws_encode_frame(OP_TEXT, payload, mask=True))
                await self._writer.drain()
        except BaseException:
            self._waiters.pop(req_id, None)
            raise
        return await fut

    async def _recv_loop(self) -> None:
        """Demultiplex response frames to their waiting futures."""
        try:
            while True:
                opcode, payload = await ws_read_message(
                    self._reader, self._writer, require_mask=False
                )
                if opcode == OP_CLOSE:
                    raise ConnectionResetError("server closed the session")
                obj = protocol.loads(payload)
                fut = self._waiters.pop(obj.get("id"), None)
                if fut is None or fut.done():
                    continue
                try:
                    _id, result = protocol.decode_response(obj)
                except Exception as exc:
                    fut.set_exception(exc)
                else:
                    fut.set_result(result)
        except BaseException as exc:
            # Connection gone: fail every still-pending waiter.
            waiters, self._waiters = self._waiters, {}
            for fut in waiters.values():
                if not fut.done():
                    fut.set_exception(
                        ConnectionResetError(f"wire session ended: {exc!r}")
                    )
            if isinstance(exc, asyncio.CancelledError):
                raise

    async def aclose(self) -> None:
        """Send a close frame, stop the receive loop, close the socket.
        Pending waiters (if any) fail with ``ConnectionResetError``."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            try:
                async with self._send_lock:
                    self._writer.write(
                        ws_encode_frame(OP_CLOSE, b"\x03\xe8", mask=True)
                    )
                    await self._writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def stream_telemetry(
        self, *, interval: float = 1.0, max_frames: int | None = None
    ):
        """The module-level :func:`stream_telemetry` against this
        client's server (its own observe-only connection, independent of
        the query session): an async iterator of telemetry frames."""
        return stream_telemetry(
            self.host, self.port, interval=interval, max_frames=max_frames
        )

    async def __aenter__(self) -> "WireClient":
        """Connect and enter the session context."""
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        """Close the session on context exit."""
        await self.aclose()
