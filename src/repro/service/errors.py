"""Typed serving errors — the vocabulary of a query that was *not* answered.

The serving stack's contract is that every admitted query is resolved:
with its exact result when possible, and otherwise with one of these
typed errors — never a silent drop, never an untyped failure a client
cannot dispatch on.  The wire layer (:mod:`repro.service.wire`) maps each
type onto a stable protocol error code and HTTP status, so in-process
callers (``await service.submit(...)``) and remote clients see the same
taxonomy.

All types derive from :class:`ServingError` (itself a
:class:`~repro.errors.ReproError`), so ``except ReproError`` still
catches everything the library raises.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = [
    "ServingError",
    "DeadlineExceededError",
    "OverloadedError",
    "ServiceClosedError",
]


class ServingError(ReproError):
    """Base class for serving-layer failures (admission, deadlines,
    lifecycle) — distinct from engine errors, which describe the
    computation itself and pass through the service untouched."""


class DeadlineExceededError(ServingError):
    """The query's deadline passed before its answer was ready.

    Raised by :meth:`~repro.service.MixingService.submit` when a query
    carried a ``deadline`` and the solve (or the coalescing wait) did not
    finish in time.  The underlying batch keeps running for the benefit
    of its other waiters and of the result cache — only *this* waiter is
    released with the timeout.
    """

    def __init__(self, message: str, deadline: float | None = None):
        super().__init__(message)
        #: The query's relative deadline in seconds, when known.
        self.deadline = deadline


class OverloadedError(ServingError):
    """Admission refused: the server's pending-query bound is full.

    This is *backpressure*, not failure — the request was never admitted
    (it consumed no engine work) and the client should back off and
    retry.  The wire layer answers it with HTTP 429.
    """


class ServiceClosedError(ServingError, RuntimeError):
    """The service (or wire server) is draining or closed and admits no
    new queries; in-flight work is still answered.  HTTP 503 on the
    wire.

    Also a :class:`RuntimeError`: submitting to a closed service has
    always raised ``RuntimeError``, and callers written against that
    contract keep working.
    """
