"""The async serving front door.

:class:`MixingService` turns the batch/parallel engines into a query
server: clients ``await service.submit(MixingQuery(...))`` concurrently,
and the service answers each query through a three-stage pipeline —

1. **Cache** — the :class:`~repro.service.cache.ResultCache` is consulted
   under the canonical key ``(snapshot, source, TimesKey)``; revisited
   graphs/knobs (including structurally revisited dynamic snapshots) are
   answered without touching the engine.
2. **In-flight dedup** — a query identical to one currently being solved
   awaits the *same* future instead of submitting again, so a thundering
   herd on one hot source costs one solve.
3. **Coalescing** — remaining queries enter the
   :class:`~repro.service.coalescer.QueryCoalescer`, which micro-batches
   concurrent queries sharing ``(graph, knobs)`` into single
   :func:`~repro.engine.batch.batched_local_mixing_times` calls — routed
   through :func:`~repro.parallel.parallel_local_mixing_times` on a
   :class:`~repro.parallel.ShardExecutor` when the service was configured
   with workers.

Every stage preserves the library's equivalence discipline: a served
answer is **bitwise identical** to the direct engine call for that
``(graph, source, knobs)`` triple — cache hits return the object an
identical engine call produced, deduped queries share one such object,
and coalesced batches inherit the engine's loop-equivalence guarantee.

The service is an async context manager; leaving the context (or calling
:meth:`MixingService.aclose`) drains the coalescer — every admitted query
is answered, never dropped — and closes a worker pool the service created
for itself.

Observability: every component records onto one shared
:class:`~repro.obs.metrics.MetricsRegistry`, and :attr:`MixingService.metrics`
additionally composes in the executor's and the process-global engine /
kernel registries — so ``service.metrics.render()`` is the complete
Prometheus payload a ``/metrics`` endpoint serves.  With tracing enabled
(:func:`repro.obs.set_observability`) each :meth:`MixingService.submit`
produces a ``query`` span whose children record the cache lookup, the
adopted ``coalesced_batch`` → ``engine_solve`` spans of the batch that
answered it, and — under a sharded solve — per-worker ``shard_solve``
spans shipped back from the pool.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro.engine.backends import get_backend
from repro.engine.batch import batched_local_mixing_times
from repro.errors import ConvergenceError, GraphError
from repro.graphs.base import Graph
from repro.obs import MetricsRegistry, attach_or_record, default_registry, trace
from repro.obs.flight import (
    FlightRecorder,
    QueryRecord,
    graph_key,
    kernels_from_span,
    stages_from_span,
)
from repro.obs.live import ResourceSampler, RollingWindow
from repro.obs.slo import SLOEngine
from repro.service.cache import ResultCache
from repro.service.coalescer import QueryCoalescer
from repro.service.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServiceClosedError,
)
from repro.service.query import ExecutionKey, MixingQuery
from repro.service.registry import GraphRegistry

__all__ = ["MixingService"]


def _outcome_code(exc: BaseException) -> str:
    """The stable flight-record outcome code for a failed query — the
    same coarse taxonomy the wire protocol's ``error_code_for`` exposes
    to clients, except that unexpected exceptions keep their type name
    (``"error:<Type>"``) because flight records are an operator's
    diagnostic, not a client contract."""
    if isinstance(exc, DeadlineExceededError):
        return "deadline_exceeded"
    if isinstance(exc, OverloadedError):
        return "overloaded"
    if isinstance(exc, ServiceClosedError):
        return "shutting_down"
    if isinstance(exc, ConvergenceError):
        return "unconverged"
    if isinstance(exc, KeyError):
        return "not_found"
    if isinstance(exc, (ValueError, TypeError, GraphError)):
        return "bad_request"
    return f"error:{type(exc).__name__}"


class MixingService:
    """Serve local-mixing queries with micro-batching and structural
    caching on top of the batched/parallel engines.

    Parameters
    ----------
    registry:
        The :class:`~repro.service.registry.GraphRegistry` to resolve
        query graph references against (one is created when omitted).  The
        service subscribes a change listener that carries cache entries
        across dynamic-graph mutations (dirty sources only are dropped).
    cache_size:
        Bound of the :class:`~repro.service.cache.ResultCache`
        (``0`` disables result caching).
    window:
        Coalescing window in seconds — how long a query waits for
        companions before its batch is flushed.
    max_batch:
        Flush a batch immediately once it holds this many distinct
        sources.
    executor:
        Optional :class:`~repro.parallel.ShardExecutor`: coalesced batches
        with more than one source are then solved by
        :func:`~repro.parallel.parallel_local_mixing_times` on the pool
        (the executor is *not* owned — the caller closes it).
    n_workers:
        Convenience alternative to ``executor``: the service lazily
        creates (and owns, and closes on :meth:`aclose`) a
        :class:`~repro.parallel.ShardExecutor` of this size.
    flight_capacity:
        Ring bound of the always-on
        :class:`~repro.obs.flight.FlightRecorder` fed by every completed
        :meth:`submit` (``0`` disables recording; exposed as
        :attr:`flight`).
    slow_threshold:
        Seconds at or above which a completed query is also admitted to
        the recorder's slow-query log.
    live_buckets / live_bucket_width:
        Geometry of the live :class:`~repro.obs.live.RollingWindow` fed
        by the same completion path (default 60 × 1 s;
        ``live_buckets=0`` disables live telemetry entirely; exposed as
        :attr:`live`).
    slo:
        Optional :class:`~repro.obs.slo.SLO` objective; when given, an
        :class:`~repro.obs.slo.SLOEngine` (exposed as
        :attr:`slo_engine`) evaluates it against the rolling window —
        requires live telemetry enabled.
    sampler_interval:
        Seconds between :class:`~repro.obs.live.ResourceSampler` ticks;
        ``None`` (default) disables the sampler.  The sampler starts
        lazily with the first :meth:`submit` (it needs a running event
        loop) and stops on :meth:`aclose`.
    """

    def __init__(
        self,
        *,
        registry: GraphRegistry | None = None,
        cache_size: int = 4096,
        window: float = 0.002,
        max_batch: int = 64,
        executor=None,
        n_workers: int | None = None,
        flight_capacity: int = 1024,
        slow_threshold: float = 0.25,
        live_buckets: int = 60,
        live_bucket_width: float = 1.0,
        slo=None,
        sampler_interval: float | None = None,
    ):
        if executor is not None and n_workers is not None:
            raise ValueError("pass either executor or n_workers, not both")
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if slo is not None and not live_buckets:
            raise ValueError("an SLO needs live telemetry (live_buckets > 0)")
        self.registry = registry if registry is not None else GraphRegistry()
        # One shared registry for every component this service owns; the
        # graph registry (possibly caller-supplied, possibly shared by
        # several services) keeps its own and is composed in below.
        self._metrics = MetricsRegistry()
        self._cache = ResultCache(cache_size, registry=self._metrics)
        self._coalescer = QueryCoalescer(
            self._solve_batch,
            window=window,
            max_batch=max_batch,
            registry=self._metrics,
        )
        self._metrics.include(self.registry.metrics)
        self._metrics.include(default_registry())
        self._executor = executor
        if executor is not None:
            self._metrics.include(executor.metrics)
        self._owns_executor = False
        self._n_workers = n_workers
        # Guards lazy pool creation: batches solve on concurrent engine
        # threads, and two must not each spawn (and one leak) a pool.
        self._executor_lock = threading.Lock()
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._closed = False
        self._expired = self._metrics.counter(
            "repro_service_deadline_expired_total",
            "Queries answered with DeadlineExceededError.",
        )
        #: The always-on flight recorder of completed queries — read by
        #: the wire debug endpoints (``/v1/debug/flight`` etc.) and by
        #: :meth:`stats`.
        self.flight = FlightRecorder(
            flight_capacity,
            slow_threshold=slow_threshold,
            registry=self._metrics,
        )
        self._query_seconds = self._metrics.histogram(
            "repro_service_query_seconds",
            "End-to-end seconds per submitted query (bucket exemplars "
            "carry flight-recorder trace ids).",
        )
        #: The live rolling window of per-(graph, backend, outcome)
        #: rates and streaming quantiles (``None`` when disabled) — what
        #: ``/v1/debug/stream`` and the SLO engine read.
        self.live = (
            RollingWindow(live_buckets, width=live_bucket_width)
            if live_buckets
            else None
        )
        #: The SLO engine evaluating :attr:`live` (``None`` without an
        #: ``slo=`` objective).
        self.slo_engine = (
            SLOEngine(slo, self.live, registry=self._metrics)
            if slo is not None
            else None
        )
        self._sampler_interval = sampler_interval
        self._sampler: ResourceSampler | None = None
        self.registry.add_listener(self._on_graph_change)

    # ------------------------------------------------------------------ #
    # Query admission
    # ------------------------------------------------------------------ #

    async def submit(self, query: MixingQuery, *, trace_id: str | None = None):
        """Answer one query (a
        :class:`~repro.walks.local_mixing.LocalMixingResult` bitwise equal
        to the direct engine call for the query's graph, source and
        knobs).  Invalid knobs or sources raise the engine's own fail-fast
        errors before any work is scheduled.

        A query carrying a ``deadline`` (relative seconds) is answered
        within it or fails with a typed
        :class:`~repro.service.errors.DeadlineExceededError`: the deadline
        is threaded into the coalescer, which flushes the query's group
        early enough to give the solve a head start, and if the answer
        still is not ready in time only *this* waiter is released — the
        shared solve keeps running for its co-waiters and the result
        cache.  Deadlines and ``priority`` never change what is computed
        (they are absent from both the cache key and the coalescing
        group).

        Every completed query — answered, deadline-expired, failed, or
        cancelled by a disconnecting wire client — leaves one
        :class:`~repro.obs.flight.QueryRecord` on :attr:`flight` and one
        observation (exemplar: the trace id) on the query latency
        histogram.  ``trace_id`` lets the wire layer pin the id it tagged
        its own histogram with; omitted, the recorder assigns one."""
        if self._closed:
            raise ServiceClosedError("MixingService is closed")
        if self._sampler_interval is not None and self._sampler is None:
            self._start_sampler()
        tid = (
            trace_id if trace_id is not None else self.flight.next_trace_id()
        )
        state: dict = {}
        outcome = "ok"
        qspan = None
        t0 = time.perf_counter()
        try:
            with trace(
                "query", source=int(query.source), trace_id=tid
            ) as qspan:
                return await self._submit_traced(query, tid, state, qspan)
        except BaseException as exc:
            outcome = _outcome_code(exc)
            raise
        finally:
            self._record_query(
                query, tid, outcome, time.perf_counter() - t0, state, qspan
            )

    async def _submit_traced(
        self, query: MixingQuery, tid: str, state: dict, qspan
    ):
        """The submit pipeline proper, running inside the query's trace
        span and flight-record window (``state`` collects what the record
        needs as it becomes known: graph, knobs, backend, disposition)."""
        deadline_at = None
        if query.deadline is not None:
            if query.deadline <= 0:
                self._expired.inc()
                raise DeadlineExceededError(
                    f"deadline {query.deadline!r} already expired at "
                    "submission",
                    deadline=query.deadline,
                )
            deadline_at = (
                asyncio.get_running_loop().time() + float(query.deadline)
            )
        g = self.registry.resolve(query.graph)
        state["graph"] = g
        source = int(query.source)
        if not 0 <= source < g.n:
            raise ValueError("source out of range")
        tkey = query.semantic_key(g)
        state["knobs"] = tkey
        cache_key = (g, source, tkey)

        # In-flight first: a key is in flight XOR cached XOR neither
        # (the completion callback retires one and fills the other
        # atomically on the loop), and dedup-served queries should not
        # count as cache misses — they never cost a solve.
        inflight = self._inflight.get(cache_key)
        if inflight is not None:
            self._cache.count_inflight_hit()
            state["cache"] = "inflight_dedup"
            if qspan is not None:
                qspan.meta["outcome"] = "inflight_dedup"
            result = await self._await_answer(
                inflight, deadline_at, query.deadline
            )
            self._adopt_batch_span(inflight)
            return result
        with trace("cache_lookup") as cspan:
            cached = self._cache.get(*cache_key)
        if cached is not None:
            state["cache"] = "hit"
            if qspan is not None:
                qspan.meta["outcome"] = "cache_hit"
            return cached
        state["cache"] = "miss"
        if cspan is not None:
            cspan.meta["outcome"] = "miss"

        exec_key = ExecutionKey(
            times=tkey,
            batch_size=query.batch_size,
            prefilter=query.prefilter,
            # Resolved to its registered name so backend=None and the
            # default backend's explicit name coalesce into one group;
            # the semantic cache key above excludes the backend
            # entirely (results are backend-independent by contract).
            backend=get_backend(query.backend).name,
        )
        state["backend"] = exec_key.backend
        fut = self._coalescer.enqueue(
            g,
            exec_key,
            source,
            query.engine_kwargs(),
            deadline=deadline_at,
            priority=query.priority,
            trace_id=tid,
        )
        self._inflight[cache_key] = fut
        fut.add_done_callback(
            lambda f, key=cache_key: self._finish(key, f)
        )
        if qspan is not None:
            qspan.meta["outcome"] = "solved"
        result = await self._await_answer(
            fut, deadline_at, query.deadline
        )
        self._adopt_batch_span(fut)
        return result

    def _record_query(
        self, query: MixingQuery, tid: str, outcome: str, dt: float,
        state: dict, qspan,
    ) -> None:
        """Completion hook of :meth:`submit` (runs for every outcome):
        observe the end-to-end latency with the query's trace id as the
        bucket exemplar and append the flight record — O(1) appends of
        numbers the pipeline already computed, never touching the result."""
        self._query_seconds.observe(dt, exemplar=tid)
        g = state.get("graph")
        if self.live is not None:
            self.live.record(
                dt,
                graph=graph_key(g) if g is not None else None,
                backend=state.get("backend"),
                outcome=outcome,
            )
        if not self.flight.enabled:
            return
        try:
            source = int(query.source)
        except (TypeError, ValueError):
            source = -1
        batch = None
        if qspan is not None:
            bspan = qspan.find("coalesced_batch")
            if bspan is not None:
                batch = {
                    "sources": bspan.meta.get("sources"),
                    "trigger": bspan.meta.get("trigger"),
                }
        self.flight.record(
            QueryRecord(
                trace_id=tid,
                graph=graph_key(g) if g is not None else None,
                source=source,
                outcome=outcome,
                duration=dt,
                knobs=state.get("knobs"),
                backend=state.get("backend"),
                cache=state.get("cache"),
                batch=batch,
                kernels=kernels_from_span(qspan),
                stages=stages_from_span(qspan),
                priority=query.priority,
                deadline=query.deadline,
                unix_ts=time.time(),
                span=qspan,
            )
        )

    async def _await_answer(
        self,
        fut: asyncio.Future,
        deadline_at: float | None,
        deadline: float | None,
    ):
        """Await a (possibly shared) solve future on behalf of one waiter.

        ``shield()``: one client cancelling its await — or timing out —
        must not cancel the shared future other waiters (and the cache
        insert) hang off.  With a deadline, waits at most until
        ``deadline_at`` (absolute loop time) and then raises the typed
        timeout; the underlying solve is deliberately left running."""
        if deadline_at is None:
            return await asyncio.shield(fut)
        loop = asyncio.get_running_loop()
        try:
            return await asyncio.wait_for(
                asyncio.shield(fut), timeout=deadline_at - loop.time()
            )
        except asyncio.TimeoutError:
            self._expired.inc()
            raise DeadlineExceededError(
                f"query deadline of {deadline}s expired before the "
                "answer was ready",
                deadline=deadline,
            ) from None

    async def submit_many(self, queries) -> list:
        """Answer many queries concurrently (results in query order) —
        the natural way to hand the coalescer a full batch at once."""
        return list(
            await asyncio.gather(*(self.submit(q) for q in queries))
        )

    @staticmethod
    def _adopt_batch_span(fut: asyncio.Future) -> None:
        """Attach the finished ``coalesced_batch`` span riding ``fut``
        (set by the coalescer when tracing is enabled) into the calling
        query's own trace — every waiter of a shared batch adopts the
        same span object."""
        attach_or_record(getattr(fut, "_obs_span", None))

    def _finish(self, cache_key: tuple, fut: asyncio.Future) -> None:
        """Loop callback when a solve future resolves: retire the
        in-flight entry and cache a successful result."""
        self._inflight.pop(cache_key, None)
        if not fut.cancelled() and fut.exception() is None:
            g, source, tkey = cache_key
            self._cache.put(g, source, tkey, fut.result())

    # ------------------------------------------------------------------ #
    # Solving + dynamic integration
    # ------------------------------------------------------------------ #

    def _solve_batch(self, g: Graph, sources: list[int], kwargs: dict):
        """The coalescer's blocking solver (runs on a worker thread): one
        batched engine call, sharded across the worker pool when one is
        configured and the batch is big enough to gain from it.  A
        single-source batch never touches (or lazily spawns) the pool."""
        if len(sources) > 1:
            ex = self._resolve_executor()
            if ex is not None:
                from repro.parallel import parallel_local_mixing_times

                return parallel_local_mixing_times(
                    g, sources=sources, executor=ex, **kwargs
                )
        return batched_local_mixing_times(g, sources=sources, **kwargs)

    def _resolve_executor(self):
        """The shard executor, lazily created when only ``n_workers`` was
        given (``None`` when the service solves in-process).  Thread-safe:
        concurrent batches race here, and exactly one pool may win."""
        if self._executor is None and self._n_workers is not None:
            with self._executor_lock:
                if self._executor is None:
                    from repro.parallel import ShardExecutor

                    ex = ShardExecutor(self._n_workers)
                    self._metrics.include(ex.metrics)
                    self._executor = ex
                    self._owns_executor = True
        return self._executor

    def _on_graph_change(self, prev_g, new_g, dmin, degrees_equal) -> None:
        """Registry listener: carry provably-clean cache entries onto the
        new snapshot so only dirty sources recompute."""
        self._cache.carry_forward(
            prev_g, new_g, dmin, degrees_equal=degrees_equal
        )

    # ------------------------------------------------------------------ #
    # Lifecycle + stats
    # ------------------------------------------------------------------ #

    def _start_sampler(self) -> None:
        """Lazily start the resource sampler on the running loop (first
        :meth:`submit`), wiring in the serving layer's own gauges:
        coalescer queue depth, in-flight batch solves, and the attached
        pool's worker count."""
        self._sampler = ResourceSampler(
            interval=self._sampler_interval,
            registry=self._metrics,
            sources={
                "repro_runtime_coalescer_depth": lambda: (
                    self._coalescer.depth
                ),
                "repro_runtime_inflight_batches": lambda: (
                    self._coalescer.inflight_batches
                ),
                "repro_runtime_executor_workers": lambda: (
                    self._executor.n_workers
                    if self._executor is not None
                    else 0
                ),
            },
        ).start()

    @property
    def sampler(self) -> ResourceSampler | None:
        """The running resource sampler (``None`` until the first
        :meth:`submit` of a service configured with
        ``sampler_interval``)."""
        return self._sampler

    def telemetry(self) -> dict:
        """The live-telemetry view one ``/v1/debug/stream`` frame embeds:
        the rolling-window :meth:`~repro.obs.live.RollingWindow.snapshot`,
        the current SLO verdict (evaluating it — gauges and transition
        alerts update as a side effect), and the latest resource-sampler
        values.  Each part is ``None`` where the corresponding feature is
        disabled."""
        verdict = (
            self.slo_engine.evaluate() if self.slo_engine is not None else None
        )
        return {
            "window": self.live.snapshot() if self.live is not None else None,
            "slo": verdict.to_dict() if verdict is not None else None,
            "sampler": (
                self._sampler.values() if self._sampler is not None else None
            ),
        }

    async def aclose(self) -> None:
        """Graceful shutdown: stop admitting, drain the coalescer (every
        admitted query resolves), stop the resource sampler, close an
        owned worker pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        await self._coalescer.drain()
        if self._sampler is not None:
            await self._sampler.aclose()
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None
            self._owns_executor = False

    async def __aenter__(self) -> "MixingService":
        """Enter the serving context."""
        return self

    async def __aexit__(self, *exc) -> None:
        """Drain and close on context exit."""
        await self.aclose()

    @property
    def metrics(self) -> MetricsRegistry:
        """The service's composed metrics registry: cache + coalescer
        counters, the graph registry's, an attached executor's, and the
        process-global engine/kernel metrics — ``metrics.render()`` is
        the full Prometheus payload for a ``/metrics`` endpoint, and
        ``metrics.snapshot()`` its JSON twin."""
        return self._metrics

    def stats(self) -> dict:
        """One dictionary of every layer's counters: ``cache`` (hits /
        misses / inflight dedup / carry-forward), ``coalescer`` (batches,
        flush triggers, largest batch), ``registry`` (resolves, changes),
        ``flight`` (recorder totals and occupancy) and — when a pool is
        attached — ``executor`` utilization."""
        out = {
            "cache": self._cache.stats(),
            "coalescer": self._coalescer.stats(),
            "registry": self.registry.stats(),
            "service": {"deadline_expired": self._expired.value},
            "flight": self.flight.stats(),
        }
        if self._executor is not None:
            out["executor"] = self._executor.stats()
        if self.live is not None:
            out["live"] = self.live.stats()
        if self.slo_engine is not None:
            out["slo"] = self.slo_engine.stats()
        return out
