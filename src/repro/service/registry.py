"""Named-graph registry with dynamic-snapshot change tracking.

A :class:`GraphRegistry` lets clients address graphs symbolically — a
query carries ``graph="social"`` instead of the object — and is the
serving layer's integration point with :mod:`repro.dynamic`:

* a registered static :class:`~repro.graphs.base.Graph` resolves to
  itself, forever;
* a registered :class:`~repro.dynamic.DynamicGraph` resolves to its
  *current* ``snapshot()`` — and whenever that snapshot differs from the
  one served last, the registry computes the locality radius of the edit
  (:func:`~repro.dynamic.tracker.edit_distance_bounds`) and notifies its
  change listeners with ``(prev_snapshot, new_snapshot, dmin,
  degrees_equal)``.  The :class:`~repro.service.MixingService` wires a
  listener that carries provably-unaffected cache entries forward
  (:meth:`~repro.service.cache.ResultCache.carry_forward`), so a mutation
  invalidates only the sources it can actually reach — the dirty set —
  exactly mirroring the incremental tracker's pruning argument.

Unregistered objects pass through: a query may always carry a ``Graph``
or ``DynamicGraph`` directly, and direct ``DynamicGraph`` objects get the
same change tracking (keyed by object identity) as registered ones.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.tracker import edit_distance_bounds
from repro.graphs.base import Graph
from repro.obs import MetricsRegistry

__all__ = ["GraphRegistry"]


class GraphRegistry:
    """Resolve query graph references (names, graphs, dynamic graphs) to
    concrete immutable snapshots, reporting dynamic-graph changes.

    Change listeners are callables
    ``listener(prev_g, new_g, dmin, degrees_equal)`` invoked synchronously
    from :meth:`resolve` when a tracked dynamic graph's snapshot moved to
    a different same-``n`` structure (``dmin`` is
    :func:`~repro.dynamic.tracker.edit_distance_bounds` of the pair).  A
    node-count change carries no per-node correspondence, so listeners are
    not called for it — dependent caches simply miss on the new structure.

    Parameters
    ----------
    max_tracked:
        How many dynamic graphs to keep change-tracking state for (each
        entry pins the graph and its last-served snapshot).  Queries that
        carry transient ``DynamicGraph`` objects directly would otherwise
        grow the map without bound; evicting an entry is always sound —
        the next resolve simply starts fresh, forgoing one carry-forward
        opportunity, never correctness.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` for
        the ``repro_registry_*`` counters (private when omitted); exposed
        as :attr:`metrics`.  The :meth:`stats` dict shape is unchanged.
    """

    def __init__(
        self,
        *,
        max_tracked: int = 64,
        registry: MetricsRegistry | None = None,
    ):
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self._named: dict[str, Graph | DynamicGraph] = {}
        #: Last snapshot served per tracked DynamicGraph, LRU-bounded (by
        #: object id; the value also pins the object so the id cannot be
        #: recycled while the entry lives).
        self._tracked: "OrderedDict[int, tuple[DynamicGraph, Graph]]" = (
            OrderedDict()
        )
        self._max_tracked = int(max_tracked)
        self._listeners: list[Callable] = []
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._resolves = self.metrics.counter(
            "repro_registry_resolves_total", "Graph-reference resolutions."
        )
        self._changes = self.metrics.counter(
            "repro_registry_changes_total",
            "Same-n dynamic-snapshot changes reported to listeners.",
        )
        self._n_changes = self.metrics.counter(
            "repro_registry_n_changes_total",
            "Dynamic-snapshot changes that altered the node count.",
        )

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #

    def register(self, name: str, graph: Graph | DynamicGraph) -> None:
        """Register ``graph`` under ``name`` (re-registering a name is an
        error unless it is the same object)."""
        if not isinstance(name, str) or not name:
            raise ValueError("graph name must be a non-empty string")
        if not isinstance(graph, (Graph, DynamicGraph)):
            raise TypeError("graph must be a Graph or DynamicGraph")
        existing = self._named.get(name)
        if existing is not None and existing is not graph:
            raise ValueError(f"graph name {name!r} already registered")
        self._named[name] = graph

    def unregister(self, name: str) -> None:
        """Remove a name (its change-tracking state is dropped too)."""
        graph = self._named.pop(name, None)
        if isinstance(graph, DynamicGraph) and graph not in [
            g for g in self._named.values() if isinstance(g, DynamicGraph)
        ]:
            self._tracked.pop(id(graph), None)

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._named)

    def add_listener(self, listener: Callable) -> None:
        """Subscribe to dynamic-snapshot changes (see the class docstring
        for the callback signature)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    def resolve(self, ref: "str | Graph | DynamicGraph") -> Graph:
        """The immutable :class:`Graph` a query against ``ref`` must be
        answered on *right now*.

        Strings look up registered objects; a :class:`Graph` is returned
        as-is; a :class:`DynamicGraph` (registered or direct) is
        snapshotted, and a changed snapshot fires the change listeners
        before the new snapshot is returned.
        """
        self._resolves.inc()
        if isinstance(ref, str):
            obj = self._named.get(ref)
            if obj is None:
                raise KeyError(f"no graph registered under {ref!r}")
            ref = obj
        if isinstance(ref, Graph):
            return ref
        if not isinstance(ref, DynamicGraph):
            raise TypeError(
                f"cannot resolve {type(ref).__name__} to a graph"
            )
        new = ref.snapshot()
        tracked = self._tracked.get(id(ref))
        prev = tracked[1] if tracked is not None else None
        if prev is not None and prev is not new:
            if prev.n == new.n:
                self._changes.inc()
                dmin = edit_distance_bounds(prev, new)
                degrees_equal = bool(
                    np.array_equal(prev.degrees, new.degrees)
                )
                for listener in self._listeners:
                    listener(prev, new, dmin, degrees_equal)
            else:
                self._n_changes.inc()
        self._tracked[id(ref)] = (ref, new)
        self._tracked.move_to_end(id(ref))
        while len(self._tracked) > self._max_tracked:
            self._tracked.popitem(last=False)
        return new

    def stats(self) -> dict:
        """Counters: ``resolves``, ``changes`` (same-``n`` snapshot moves
        reported to listeners), ``n_changes`` (node-count moves), plus the
        current ``registered`` and ``tracked`` graph counts.  The dict
        shape is unchanged by the metrics-registry migration."""
        return {
            "changes": self._changes.value,
            "n_changes": self._n_changes.value,
            "resolves": self._resolves.value,
            "registered": len(self._named),
            "tracked": len(self._tracked),
        }
