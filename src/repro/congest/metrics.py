"""Cost accounting for the CONGEST simulator.

The unit the paper's theorems bound is the **round**; the ledger also tracks
message and bit totals (interesting for the CONGEST-vs-LOCAL discussion in
§4, footnote 10) and a per-phase breakdown so Theorem 1's three cost terms
(BFS construction, Algorithm 1 flooding, binary-search aggregation) can be
reported separately by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseCost", "CostLedger"]


@dataclass
class PhaseCost:
    """Accumulated cost of one named phase."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0

    def add(self, rounds: int = 0, messages: int = 0, bits: int = 0) -> None:
        self.rounds += rounds
        self.messages += messages
        self.bits += bits


@dataclass
class CostLedger:
    """Total and per-phase CONGEST costs of a run.

    All charging goes through :meth:`charge`, which both layers call — the
    faithful engine once per simulated round, the fast layer once per
    primitive with the primitive's round formula.
    """

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    phases: dict[str, PhaseCost] = field(default_factory=dict)

    def charge(
        self,
        rounds: int = 0,
        messages: int = 0,
        bits: int = 0,
        phase: str = "other",
    ) -> None:
        """Record ``rounds`` rounds / ``messages`` messages / ``bits`` bits
        under ``phase``."""
        if rounds < 0 or messages < 0 or bits < 0:
            raise ValueError("costs must be non-negative")
        self.rounds += rounds
        self.messages += messages
        self.bits += bits
        self.phases.setdefault(phase, PhaseCost()).add(rounds, messages, bits)

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger into this one (phase-wise)."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.bits += other.bits
        for name, cost in other.phases.items():
            self.phases.setdefault(name, PhaseCost()).add(
                cost.rounds, cost.messages, cost.bits
            )

    def phase_rounds(self, phase: str) -> int:
        """Rounds charged to ``phase`` (0 if the phase never ran)."""
        return self.phases.get(phase, PhaseCost()).rounds

    def summary(self) -> str:
        """Multi-line human-readable breakdown."""
        lines = [
            f"total: rounds={self.rounds} messages={self.messages} bits={self.bits}"
        ]
        for name in sorted(self.phases):
            c = self.phases[name]
            lines.append(
                f"  {name}: rounds={c.rounds} messages={c.messages} bits={c.bits}"
            )
        return "\n".join(lines)
