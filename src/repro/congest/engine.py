"""The faithful per-node synchronous engine.

Execution contract (one synchronous round, paper §1.1):

1. every node's :meth:`NodeProgram.send` returns its outbox — a mapping
   ``neighbor → Message`` (at most one message per incident edge);
2. the engine validates every message width against the network budget and
   charges the ledger;
3. every node's :meth:`NodeProgram.receive` consumes its inbox — a mapping
   ``neighbor → Message`` of what arrived this round;
4. the round ends; a node that has set :attr:`NodeProgram.halted` stops
   being scheduled (it neither sends nor receives).

The engine runs until all programs halt or ``max_rounds`` elapses, and
charges exactly one round per iteration — so the faithful layer's round
count *is* the model's.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.congest.message import Message
from repro.congest.network import CongestNetwork
from repro.errors import ProtocolError

__all__ = ["NodeProgram", "SyncEngine"]


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Subclasses get :attr:`node`, :attr:`neighbors` (sorted NumPy array) and
    :attr:`net` injected before round 1 and override :meth:`send` /
    :meth:`receive`.  Set :attr:`halted` to ``True`` to stop participating.
    """

    node: int
    neighbors = None
    net: CongestNetwork
    halted: bool = False

    def setup(self) -> None:
        """Hook called once before the first round."""

    def send(self, round_no: int) -> Mapping[int, Message]:
        """Outbox for this round (default: silence)."""
        return {}

    def receive(self, round_no: int, inbox: Mapping[int, Message]) -> None:
        """Consume this round's inbox (default: ignore)."""


class SyncEngine:
    """Drives a set of :class:`NodeProgram` instances in lockstep."""

    def __init__(self, net: CongestNetwork, *, phase: str = "engine"):
        self.net = net
        self.phase = phase

    def run(
        self,
        programs: Sequence[NodeProgram],
        *,
        max_rounds: int,
    ) -> int:
        """Inject contexts, run setup hooks, then run until every program
        halts (or ``max_rounds``); return the number of rounds executed."""
        g = self.net.graph
        if len(programs) != g.n:
            raise ProtocolError(
                f"need one program per node: got {len(programs)} for n={g.n}"
            )
        for u, prog in enumerate(programs):
            prog.node = u
            prog.neighbors = g.neighbors(u)
            prog.net = self.net
            prog.setup()
        return self.run_prepared(programs, max_rounds=max_rounds)

    def run_prepared(
        self,
        programs: Sequence[NodeProgram],
        *,
        max_rounds: int = 1,
    ) -> int:
        """Run rounds on programs whose contexts are already injected —
        used for incremental stepping (the §3.2 flooding resumes from the
        previous state, so re-running ``setup`` would be wrong)."""
        g = self.net.graph
        rounds = 0
        for round_no in range(1, max_rounds + 1):
            if all(p.halted for p in programs):
                break
            inboxes: dict[int, dict[int, Message]] = {}
            n_msgs = 0
            n_bits = 0
            for u, prog in enumerate(programs):
                if prog.halted:
                    continue
                outbox = prog.send(round_no)
                for v, msg in outbox.items():
                    if not g.has_edge(u, int(v)):
                        raise ProtocolError(
                            f"node {u} tried to message non-neighbor {v}"
                        )
                    if not isinstance(msg, Message):
                        raise ProtocolError(
                            f"node {u} sent a raw payload; wrap it in Message"
                        )
                    self.net.check_bits(msg.bits)
                    inboxes.setdefault(int(v), {})[u] = msg
                    n_msgs += 1
                    n_bits += msg.bits
            for u, prog in enumerate(programs):
                if prog.halted:
                    continue
                prog.receive(round_no, inboxes.get(u, {}))
            rounds += 1
            self.net.ledger.charge(
                rounds=1, messages=n_msgs, bits=n_bits, phase=self.phase
            )
        return rounds
