"""The :class:`CongestNetwork`: a graph plus a bandwidth budget and a ledger.

The network object is what the paper's algorithms take as input.  It owns:

* the topology (a :class:`repro.graphs.Graph`);
* the per-edge-per-round bandwidth ``bandwidth_bits`` (``O(log n)``:
  ``bandwidth_factor · ⌈log₂ n⌉``, default factor 16 — enough for one
  fixed-point probability with ``c ≤ 15`` or a constant number of ids);
* a :class:`~repro.congest.metrics.CostLedger`;
* the execution ``mode``: ``"fast"`` (vectorized) or ``"faithful"``
  (per-node engine).  Primitives branch on it; results and charged rounds
  are identical by construction and verified by tests.
"""

from __future__ import annotations

from repro.congest.metrics import CostLedger
from repro.congest.message import id_bits
from repro.errors import CongestViolationError
from repro.graphs.base import Graph

__all__ = ["CongestNetwork"]

_MODES = ("fast", "faithful")


class CongestNetwork:
    """A CONGEST-model network over ``graph``.

    Parameters
    ----------
    graph:
        Connected topology; node ids double as CONGEST identifiers (the
        paper assumes distinct ids, e.g. IP addresses).
    bandwidth_factor:
        Per-edge budget in units of ``⌈log₂ n⌉`` bits (the constant inside
        the model's ``O(log n)``).
    mode:
        ``"fast"`` or ``"faithful"`` — see module docstring.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        bandwidth_factor: int = 16,
        mode: str = "fast",
    ):
        graph.require_connected()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if bandwidth_factor < 1:
            raise ValueError("bandwidth_factor must be >= 1")
        self.graph = graph
        self.mode = mode
        self.bandwidth_factor = bandwidth_factor
        self.bandwidth_bits = bandwidth_factor * id_bits(graph.n)
        self.ledger = CostLedger()

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.graph.n

    def check_bits(self, bits: int) -> int:
        """Validate one message width against the per-edge budget."""
        if bits > self.bandwidth_bits:
            raise CongestViolationError(
                f"message of {bits} bits exceeds the per-edge budget of "
                f"{self.bandwidth_bits} bits "
                f"({self.bandwidth_factor}·⌈log₂ {self.n}⌉)"
            )
        return bits

    def reset_ledger(self) -> CostLedger:
        """Swap in a fresh ledger; return the old one."""
        old = self.ledger
        self.ledger = CostLedger()
        return old

    def __repr__(self) -> str:
        return (
            f"CongestNetwork({self.graph.name!r}, mode={self.mode!r}, "
            f"bandwidth={self.bandwidth_bits} bits/edge/round)"
        )
