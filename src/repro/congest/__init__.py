"""CONGEST-model simulator.

A synchronous message-passing network in which every node may send one
``O(log n)``-bit message per edge per round (paper §1.1).  Two execution
layers share one cost model:

* **faithful** — per-node programs exchanging real message objects through
  :class:`~repro.congest.engine.SyncEngine`; every message's declared bit
  width is checked against the per-edge budget each round.
* **fast** — vectorized NumPy implementations of the same primitives that
  compute identical values and charge identical rounds to the
  :class:`~repro.congest.metrics.CostLedger` by construction.

Tests assert that both layers agree on results and round counts; benchmarks
run the fast layer so experiment sweeps reach realistic sizes.
"""

from repro.congest.metrics import CostLedger, PhaseCost
from repro.congest.message import (
    fixed_point_bits,
    id_bits,
    int_bits,
    Message,
)
from repro.congest.network import CongestNetwork
from repro.congest.engine import NodeProgram, SyncEngine
from repro.congest.bfs import BFSTree, build_bfs_tree
from repro.congest.tree_ops import (
    broadcast_value,
    convergecast_count,
    convergecast_max,
    convergecast_min,
    convergecast_sum,
)
from repro.congest.ksmallest import KSmallestResult, k_smallest_sum
from repro.congest.upcast import UpcastResult, k_smallest_sum_upcast, upcast_values

__all__ = [
    "CostLedger",
    "PhaseCost",
    "Message",
    "fixed_point_bits",
    "id_bits",
    "int_bits",
    "CongestNetwork",
    "NodeProgram",
    "SyncEngine",
    "BFSTree",
    "build_bfs_tree",
    "broadcast_value",
    "convergecast_count",
    "convergecast_max",
    "convergecast_min",
    "convergecast_sum",
    "KSmallestResult",
    "k_smallest_sum",
    "UpcastResult",
    "upcast_values",
    "k_smallest_sum_upcast",
]
