"""BFS-tree construction by flooding (paper §3.1, "Compute BFS tree from s").

Algorithm 2 builds, at the start of each phase, a BFS tree of depth
``min{D, ℓ}`` rooted at the source; all aggregation (broadcast,
convergecast, binary search) then runs over this tree.

Protocol (both layers):

* round ``d+1``: every node that joined at depth ``d < depth_limit``
  *beacons* to all neighbors; every node that joined at depth ``d > 0``
  also notifies its chosen parent (*accept*), piggybacked on the beacon
  where both use the same edge.  Parent choice is the smallest-id neighbor
  heard in the joining round (deterministic, so both layers build the same
  tree).
* a node at the depth cap sends only the accept.

Cost: ``min(ecc(s), depth_limit) + 1`` rounds — the ``+1`` is the finishing
round that carries the deepest layer's accepts (and the beacons that
discover there is nothing left).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.congest.engine import NodeProgram, SyncEngine
from repro.congest.message import Message
from repro.congest.network import CongestNetwork

__all__ = ["BFSTree", "build_bfs_tree"]


@dataclass(frozen=True)
class BFSTree:
    """A rooted BFS tree of bounded depth.

    Attributes
    ----------
    source:
        Root node.
    parent:
        ``parent[u]`` is ``u``'s tree parent; ``-1`` for the root and for
        nodes outside the tree.
    depth:
        BFS depth of each node; ``-1`` outside the tree.
    height:
        Maximum depth over tree nodes.
    rounds_used:
        CONGEST rounds the construction cost (already charged).
    """

    source: int
    parent: np.ndarray
    depth: np.ndarray
    height: int
    rounds_used: int

    @cached_property
    def in_tree(self) -> np.ndarray:
        """Boolean membership mask."""
        mask = self.depth >= 0
        mask.setflags(write=False)
        return mask

    @cached_property
    def size(self) -> int:
        """Number of tree nodes (including the root)."""
        return int(np.count_nonzero(self.depth >= 0))

    @cached_property
    def children(self) -> list[np.ndarray]:
        """``children[u]``: array of ``u``'s tree children (sorted)."""
        n = self.parent.size
        kids: list[list[int]] = [[] for _ in range(n)]
        for u in np.flatnonzero(self.parent >= 0):
            kids[int(self.parent[u])].append(int(u))
        return [np.array(sorted(k), dtype=np.int64) for k in kids]

    def layers(self) -> list[np.ndarray]:
        """Tree nodes grouped by depth."""
        return [
            np.flatnonzero(self.depth == d) for d in range(self.height + 1)
        ]


def _fast_bfs(net: CongestNetwork, source: int, depth_limit: int) -> BFSTree:
    g = net.graph
    n = g.n
    depth = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size and level < depth_limit:
        level += 1
        # Candidate (child, parent) pairs: neighbors of the frontier.
        pairs_child = []
        pairs_parent = []
        for u in frontier:
            nbrs = g.neighbors(int(u))
            fresh = nbrs[depth[nbrs] == -1]
            if fresh.size:
                pairs_child.append(fresh)
                pairs_parent.append(np.full(fresh.size, u, dtype=np.int64))
        if not pairs_child:
            level -= 1
            break
        child = np.concatenate(pairs_child)
        par = np.concatenate(pairs_parent)
        # Deterministic parent = smallest-id beaconing neighbor.
        order = np.lexsort((par, child))
        child, par = child[order], par[order]
        keep = np.ones(child.size, dtype=bool)
        keep[1:] = child[1:] != child[:-1]
        child, par = child[keep], par[keep]
        depth[child] = level
        parent[child] = par
        frontier = child
    height = int(depth.max())
    # The finishing round carries the deepest layer's beacons/accepts; since
    # height <= depth_limit always, this equals the faithful engine's count.
    rounds = height + 1

    # Message/bit accounting (see module docstring):
    #   beacons: every tree node with depth < depth_limit, to every neighbor;
    #   accepts: every non-root tree node, to its parent (merged with the
    #   beacon on that edge when the node also beacons).
    reached = np.flatnonzero(depth >= 0)
    beaconers = reached[depth[reached] < depth_limit]
    beacon_msgs = int(g.degrees[beaconers].sum())
    accept_only = int(np.count_nonzero(depth[reached] == depth_limit))
    messages = beacon_msgs + accept_only
    merged_accepts = int(
        np.count_nonzero((depth[reached] > 0) & (depth[reached] < depth_limit))
    )
    bits = beacon_msgs + accept_only + merged_accepts  # accept adds one bit
    net.ledger.charge(rounds=rounds, messages=messages, bits=bits, phase="bfs")
    return BFSTree(
        source=source,
        parent=parent,
        depth=depth,
        height=height,
        rounds_used=rounds,
    )


class _BFSProgram(NodeProgram):
    """Faithful per-node BFS program (see module docstring for protocol)."""

    def __init__(self, source: int, depth_limit: int):
        self.source = source
        self.depth_limit = depth_limit
        self.depth = -1
        self.parent = -1
        self._announce_round: int | None = None

    def setup(self) -> None:
        if self.node == self.source:
            self.depth = 0
            self._announce_round = 1

    def send(self, round_no: int):
        if self._announce_round != round_no:
            return {}
        out = {}
        beacon = self.depth < self.depth_limit
        for v in self.neighbors:
            v = int(v)
            if v == self.parent:
                # Beacon + accept share this edge (2 bits), or accept alone.
                out[v] = Message(("beacon", "accept") if beacon else ("accept",), 2 if beacon else 1)
            elif beacon:
                out[v] = Message(("beacon",), 1)
        self.halted = True
        return out

    def receive(self, round_no: int, inbox) -> None:
        if self.depth >= 0:
            return
        senders = [u for u, msg in inbox.items() if "beacon" in msg.value]
        if senders:
            self.depth = round_no
            self.parent = min(senders)
            self._announce_round = round_no + 1


def _faithful_bfs(net: CongestNetwork, source: int, depth_limit: int) -> BFSTree:
    g = net.graph
    programs = [_BFSProgram(source, depth_limit) for _ in range(g.n)]
    engine = SyncEngine(net, phase="bfs")
    # +1: the deepest layer's accepts go out the round after it joins.
    rounds = engine.run(programs, max_rounds=depth_limit + 1)
    depth = np.array([p.depth for p in programs], dtype=np.int64)
    parent = np.array([p.parent for p in programs], dtype=np.int64)
    return BFSTree(
        source=source,
        parent=parent,
        depth=depth,
        height=int(depth.max()),
        rounds_used=rounds,
    )


def build_bfs_tree(
    net: CongestNetwork, source: int, depth_limit: int | None = None
) -> BFSTree:
    """Build a BFS tree of depth at most ``depth_limit`` rooted at ``source``.

    ``depth_limit=None`` means unbounded (the full BFS tree).  Construction
    rounds are charged to the ledger under phase ``"bfs"``.
    """
    n = net.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    if depth_limit is None:
        depth_limit = n  # an eccentricity is at most n-1
    if depth_limit < 1:
        raise ValueError("depth_limit must be >= 1")
    if net.mode == "fast":
        return _fast_bfs(net, source, depth_limit)
    return _faithful_bfs(net, source, depth_limit)
