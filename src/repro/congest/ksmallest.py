"""Distributed k-smallest-sum via binary search (paper §3.1).

The source needs ``Σ`` of the ``k`` smallest values ``x_u`` held by the
nodes.  Upcasting all values through the BFS tree could take Ω(n) rounds;
instead (paper §3.1):

1. every node adds a tiny random perturbation ``r_u ∈ [n^{-8}, n^{-4}]`` so
   all values are distinct whp (the added mass, ≤ ``n·n^{-4}``, is far below
   the ε threshold);
2. the source learns ``(x_min, x_max)`` by one convergecast;
3. it binary-searches a threshold ``x_mid``: broadcast ``x_mid`` down the
   tree, convergecast the count of nodes with ``x_u ≤ x_mid``, and narrow
   until the count is exactly ``k``;
4. one final convergecast returns the sum over qualified nodes.

Each probe costs one broadcast + one convergecast = ``2·height`` rounds;
the whole search is ``O(D log n)`` rounds as the paper charges.

**Out-of-tree nodes.**  When Algorithm 2 runs with walk length ``ℓ < D``,
the BFS tree only spans the radius-ℓ ball, but the check ranges over all
``n`` nodes.  Every out-of-tree node provably holds ``p̃_ℓ(u) = 0``, hence
``x_u = |0 − 1/R| = 1/R`` *exactly* — a value the source already knows, so
it folds those ``n − tree_size`` "virtual" entries into the count/sum
arithmetic locally (``virtual_value`` / ``virtual_count`` below).  This is
the natural completion of a detail the paper leaves implicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.congest.bfs import BFSTree
from repro.congest.message import fixed_point_bits
from repro.congest.network import CongestNetwork
from repro.congest.tree_ops import broadcast_value, convergecast
from repro.constants import PERTURB_HIGH_EXP, PERTURB_LOW_EXP
from repro.errors import ConvergenceError
from repro.utils.seeding import as_rng

__all__ = ["KSmallestResult", "k_smallest_sum"]


@dataclass(frozen=True)
class KSmallestResult:
    """Result of one distributed k-smallest-sum query.

    Attributes
    ----------
    total:
        Sum of the ``k`` smallest (perturbed) values — overshoots the true
        sum by at most ``k·n^{-4}``.
    iterations:
        Binary-search probes used (each costs ``2·height`` rounds).
    rounds:
        Total CONGEST rounds charged by this query.
    from_virtual:
        How many of the ``k`` selected entries were virtual (out-of-tree).
    """

    total: float
    iterations: int
    rounds: int
    from_virtual: int


def _binary_search_sum(
    net: CongestNetwork,
    tree: BFSTree,
    pert: np.ndarray,
    k: int,
    *,
    lo: float,
    hi: float,
    floor: float | None,
    bits: int,
    phase: str,
    max_iters: int,
) -> tuple[float, int]:
    """Sum of the ``k`` smallest in-tree values in ``(floor, hi]``.

    Invariant: ``count(≤ lo) < k ≤ count(≤ hi)`` over participating values.
    """
    participating = tree.in_tree.copy()
    if floor is not None:
        participating &= pert > floor
    p_count = int(np.count_nonzero(participating))
    if k > p_count:
        raise ValueError(f"k={k} exceeds the {p_count} participating values")
    if k == p_count:
        # The source knows the participating count (tree size and, in the
        # floored case, the below-count it just computed), so it can skip
        # the search and sum everything in one convergecast.
        total = float(
            convergecast(
                net, tree, np.where(participating, pert, 0.0), "sum", bits,
                phase=phase,
            )
        )
        return total, 0
    iterations = 0
    qualified = None
    while True:
        iterations += 1
        if iterations > max_iters:
            raise ConvergenceError(
                f"k-smallest binary search did not converge in {max_iters} "
                "probes (duplicate values despite perturbation?)"
            )
        mid = 0.5 * (lo + hi)
        if not (lo < mid < hi):
            raise ConvergenceError(
                "binary-search interval collapsed before hitting the count"
            )
        broadcast_value(net, tree, mid, bits, phase=phase)
        qualified = participating & (pert <= mid)
        cnt = int(
            round(
                float(
                    convergecast(
                        net, tree, qualified.astype(np.float64), "sum", bits,
                        phase=phase,
                    )
                )
            )
        )
        if cnt == k:
            break
        if cnt < k:
            lo = mid
        else:
            hi = mid
    total = float(
        convergecast(
            net, tree, np.where(qualified, pert, 0.0), "sum", bits, phase=phase
        )
    )
    return total, iterations


def k_smallest_sum(
    net: CongestNetwork,
    tree: BFSTree,
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    value_bits: int | None = None,
    virtual_value: float | None = None,
    virtual_count: int = 0,
    phase: str = "ksearch",
    max_iters: int = 200,
) -> KSmallestResult:
    """Distributed sum of the ``k`` smallest values (see module docstring).

    ``values`` is indexed by node id; only in-tree entries participate.
    ``virtual_count`` extra copies of the exact ``virtual_value`` are folded
    in analytically at the source.
    """
    n = net.n
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (n,):
        raise ValueError("values must have one entry per node")
    if virtual_count < 0:
        raise ValueError("virtual_count must be >= 0")
    if virtual_count > 0 and virtual_value is None:
        raise ValueError("virtual_count > 0 needs virtual_value")
    pool = tree.size + virtual_count
    if not 1 <= k <= pool:
        raise ValueError(f"k={k} out of range [1, {pool}]")
    if value_bits is None:
        # Values are modeled as fixed point on the n^-7 grid (Algorithm 1's
        # probabilities are on the n^-c grid with c = 6, and the perturbation
        # adds at most one more digit of useful precision); a (min, max)
        # pair then still fits the default 16·⌈log₂ n⌉ budget.
        value_bits = fixed_point_bits(n, 7)
    net.check_bits(2 * value_bits)  # the (min, max) pair must fit too
    rng = as_rng(seed)

    rounds_before = net.ledger.rounds
    # Perturb (every node locally; drawn centrally for reproducibility).
    r = rng.uniform(
        float(n) ** -PERTURB_HIGH_EXP, float(n) ** -PERTURB_LOW_EXP, size=n
    )
    pert = values + r

    # One convergecast carries (min, max): stack value with its negation and
    # take the column-wise min.
    mm = convergecast(
        net,
        tree,
        np.stack([pert, -pert], axis=1),
        "min",
        value_bits,
        phase=phase,
    )
    x_min, x_max = float(mm[0]), float(-mm[1])
    lo0 = x_min - 1.0

    if virtual_count == 0:
        total, iters = _binary_search_sum(
            net, tree, pert, k,
            lo=lo0, hi=x_max, floor=None,
            bits=value_bits, phase=phase, max_iters=max_iters,
        )
        return KSmallestResult(
            total=total,
            iterations=iters,
            rounds=net.ledger.rounds - rounds_before,
            from_virtual=0,
        )

    v = float(virtual_value)
    # Count/sum of in-tree values at or below the virtual value — one
    # broadcast of v plus one two-column convergecast.
    broadcast_value(net, tree, v, value_bits, phase=phase)
    below = tree.in_tree & (pert <= v)
    cs = convergecast(
        net,
        tree,
        np.stack([below.astype(np.float64), np.where(below, pert, 0.0)], axis=1),
        "sum",
        value_bits,
        phase=phase,
    )
    cb, sb = int(round(float(cs[0]))), float(cs[1])

    if cb >= k:
        # The k smallest live entirely below (or at) the virtual value.
        total, iters = _binary_search_sum(
            net, tree, pert, k,
            lo=lo0, hi=v, floor=None,
            bits=value_bits, phase=phase, max_iters=max_iters,
        )
        return KSmallestResult(
            total=total,
            iterations=iters,
            rounds=net.ledger.rounds - rounds_before,
            from_virtual=0,
        )
    if cb + virtual_count >= k:
        # All cb below-values plus (k − cb) virtual copies.
        total = sb + (k - cb) * v
        return KSmallestResult(
            total=total,
            iterations=0,
            rounds=net.ledger.rounds - rounds_before,
            from_virtual=k - cb,
        )
    # Everything below, all virtual copies, and the remainder from above v.
    rest = k - cb - virtual_count
    above_total, iters = _binary_search_sum(
        net, tree, pert, rest,
        lo=v, hi=x_max, floor=v,
        bits=value_bits, phase=phase, max_iters=max_iters,
    )
    total = sb + virtual_count * v + above_total
    return KSmallestResult(
        total=total,
        iterations=iters,
        rounds=net.ledger.rounds - rounds_before,
        from_virtual=virtual_count,
    )
