"""Message envelopes and bit-width bookkeeping.

CONGEST allows ``O(log n)`` bits per edge per round.  Every payload a
program sends declares its width; the helpers here compute the widths the
paper's algorithms need:

* node identifiers — ``⌈log₂ n⌉`` bits;
* fixed-point probabilities (Algorithm 1) — multiples of ``n^{-c}`` in
  ``[0, 1]``, i.e. ``⌈c·log₂ n⌉ + 1`` bits;
* small counters — ``⌈log₂(max+1)⌉`` bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["Message", "id_bits", "int_bits", "fixed_point_bits"]


def id_bits(n: int) -> int:
    """Bits to name one of ``n`` nodes."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return max(1, math.ceil(math.log2(n)))


def int_bits(max_value: int) -> int:
    """Bits for a non-negative integer up to ``max_value`` inclusive."""
    if max_value < 0:
        raise ValueError("max_value must be >= 0")
    return max(1, math.ceil(math.log2(max_value + 1)))


def fixed_point_bits(n: int, c: int) -> int:
    """Bits for a value in ``[0, 1]`` stored as a multiple of ``n^{-c}``.

    ``n^c`` grid points plus the endpoint — ``⌈c·log₂ n⌉ + 1`` bits.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    return c * id_bits(n) + 1


@dataclass(frozen=True)
class Message:
    """One payload traversing one edge in one round.

    Attributes
    ----------
    value:
        The payload (any Python object; programs agree on its meaning).
    bits:
        Declared width.  The engine rejects messages wider than the
        network's per-edge budget — this is what *enforces* CONGEST.
    """

    value: Any
    bits: int

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError("a message carries at least one bit")
