"""Tree broadcast and convergecast (paper §3.1 aggregation primitives).

Both primitives run over a :class:`~repro.congest.bfs.BFSTree` and cost
``height`` rounds (one sweep down or up the tree); each tree edge carries
exactly one message, so ``size − 1`` messages total.

``convergecast`` supports vector payloads: ``values`` may be shape ``(n,)``
or ``(n, k)`` with the aggregation applied column-wise and one message
carrying all ``k`` components (``k·bits_each`` bits — the caller keeps ``k``
constant, so messages stay ``O(log n)``).  This is how the paper ships
``(x_min, x_max)`` up the tree in a single convergecast.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.congest.bfs import BFSTree
from repro.congest.engine import NodeProgram, SyncEngine
from repro.congest.message import Message
from repro.congest.network import CongestNetwork

__all__ = [
    "broadcast_value",
    "convergecast",
    "convergecast_sum",
    "convergecast_min",
    "convergecast_max",
    "convergecast_count",
]

_OPS: dict[str, Callable] = {
    "sum": lambda arr: arr.sum(axis=0),
    "min": lambda arr: arr.min(axis=0),
    "max": lambda arr: arr.max(axis=0),
}


def broadcast_value(
    net: CongestNetwork,
    tree: BFSTree,
    value,
    bits: int,
    *,
    phase: str = "broadcast",
):
    """Send ``value`` from the root to every tree node; returns ``value``.

    Costs ``tree.height`` rounds, ``size − 1`` messages of ``bits`` bits.
    """
    net.check_bits(bits)
    if net.mode == "fast":
        net.ledger.charge(
            rounds=tree.height,
            messages=tree.size - 1,
            bits=(tree.size - 1) * bits,
            phase=phase,
        )
        return value

    programs = [_BroadcastProgram(tree, value, bits) for _ in range(net.n)]
    SyncEngine(net, phase=phase).run(programs, max_rounds=tree.height + 1)
    # Every tree node must have received the value.
    for u in np.flatnonzero(tree.in_tree):
        got = programs[int(u)].value
        if got is None:
            raise AssertionError(f"broadcast failed to reach node {u}")
    return programs[tree.source].value


class _BroadcastProgram(NodeProgram):
    def __init__(self, tree: BFSTree, value, bits: int):
        self.tree = tree
        self.bits = bits
        self.value = None
        self._root_value = value

    def setup(self) -> None:
        if not self.tree.in_tree[self.node]:
            self.halted = True
            return
        if self.node == self.tree.source:
            self.value = self._root_value
        if self.tree.children[self.node].size == 0 and self.value is not None:
            self.halted = True  # lone root

    def send(self, round_no: int):
        # A node at depth d forwards in round d+1 (it received in round d).
        if self.value is None or round_no != self.tree.depth[self.node] + 1:
            return {}
        out = {
            int(v): Message(self.value, self.bits)
            for v in self.tree.children[self.node]
        }
        self.halted = True
        return out

    def receive(self, round_no: int, inbox) -> None:
        parent = self.tree.parent[self.node]
        if parent >= 0 and parent in inbox:
            self.value = inbox[parent].value
            if self.tree.children[self.node].size == 0:
                self.halted = True  # leaf: nothing to forward


def convergecast(
    net: CongestNetwork,
    tree: BFSTree,
    values: np.ndarray,
    op: str,
    bits_each: int,
    *,
    phase: str = "convergecast",
) -> np.ndarray:
    """Aggregate ``values`` (shape ``(n,)`` or ``(n, k)``) up the tree with
    ``op`` ∈ {"sum", "min", "max"}; returns the root's aggregate
    (scalar-shaped ``(k,)`` array, or 0-d for flat input).

    Costs ``tree.height`` rounds and ``size − 1`` messages of
    ``k·bits_each`` bits.
    """
    if op not in _OPS:
        raise ValueError(f"op must be one of {sorted(_OPS)}")
    values = np.asarray(values, dtype=np.float64)
    flat = values.ndim == 1
    if flat:
        values = values[:, None]
    if values.shape[0] != net.n:
        raise ValueError("values must have one row per node")
    k = values.shape[1]
    msg_bits = net.check_bits(k * bits_each)

    if net.mode == "fast":
        net.ledger.charge(
            rounds=tree.height,
            messages=tree.size - 1,
            bits=(tree.size - 1) * msg_bits,
            phase=phase,
        )
        result = _OPS[op](values[tree.in_tree])
        return result[0] if flat else result

    programs = [
        _ConvergecastProgram(tree, values[u], op, msg_bits) for u in range(net.n)
    ]
    SyncEngine(net, phase=phase).run(programs, max_rounds=tree.height + 1)
    result = np.asarray(programs[tree.source].acc, dtype=np.float64)
    return result[0] if flat else result


class _ConvergecastProgram(NodeProgram):
    def __init__(self, tree: BFSTree, own: np.ndarray, op: str, bits: int):
        self.tree = tree
        self.op = op
        self.bits = bits
        self.acc = np.array(own, dtype=np.float64, copy=True)
        self.pending: set[int] | None = None

    def setup(self) -> None:
        if not self.tree.in_tree[self.node]:
            self.halted = True
            return
        self.pending = set(int(v) for v in self.tree.children[self.node])
        if self.node == self.tree.source and not self.pending:
            self.halted = True  # lone root

    def send(self, round_no: int):
        if self.pending or self.node == self.tree.source:
            return {}
        parent = int(self.tree.parent[self.node])
        self.halted = True
        return {parent: Message(self.acc.copy(), self.bits)}

    def receive(self, round_no: int, inbox) -> None:
        if self.pending is None:
            return
        for u, msg in inbox.items():
            if u in self.pending:
                self.pending.discard(u)
                incoming = np.asarray(msg.value, dtype=np.float64)
                if self.op == "sum":
                    self.acc = self.acc + incoming
                elif self.op == "min":
                    self.acc = np.minimum(self.acc, incoming)
                else:
                    self.acc = np.maximum(self.acc, incoming)
        if self.node == self.tree.source and not self.pending:
            self.halted = True


def convergecast_sum(net, tree, values, bits_each, *, phase="convergecast"):
    """Column-wise sum convergecast (see :func:`convergecast`)."""
    return convergecast(net, tree, values, "sum", bits_each, phase=phase)


def convergecast_min(net, tree, values, bits_each, *, phase="convergecast"):
    """Column-wise min convergecast (see :func:`convergecast`)."""
    return convergecast(net, tree, values, "min", bits_each, phase=phase)


def convergecast_max(net, tree, values, bits_each, *, phase="convergecast"):
    """Column-wise max convergecast (see :func:`convergecast`)."""
    return convergecast(net, tree, values, "max", bits_each, phase=phase)


def convergecast_count(net, tree, mask, bits_each, *, phase="convergecast"):
    """Count tree nodes where ``mask`` is truthy (sum of indicators)."""
    values = np.asarray(mask, dtype=np.float64)
    return int(round(float(convergecast(net, tree, values, "sum", bits_each, phase=phase))))
