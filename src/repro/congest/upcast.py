"""Pipelined upcast — the paper's "naive" aggregation (§3.1).

    "A naive way of doing this is to upcast all the values through the BFS
     tree edges in a pipelining manner. [...] The upcast may take Ω(n) time
     in the worst case due to congestion in the BFS tree."

Upcast ships every tree node's item to the root, one item per tree edge per
round; with pipelining it completes in ``height + (size − 1) − 1`` rounds
(the standard bound: depth plus the number of items minus one).  The §3.1
binary search replaces it with ``O(height·log)`` rounds — the ablation
benchmark ``bench_ab3`` measures exactly this crossover.

The faithful layer implements true pipelining: each node forwards one
pending item to its parent per round, draining its own item and everything
its subtree sends up.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.congest.bfs import BFSTree
from repro.congest.engine import NodeProgram, SyncEngine
from repro.congest.message import Message
from repro.congest.network import CongestNetwork

__all__ = ["UpcastResult", "upcast_values", "k_smallest_sum_upcast"]


@dataclass(frozen=True)
class UpcastResult:
    """All in-tree values delivered to the root.

    Attributes
    ----------
    values:
        ``(node, value)`` pairs in delivery order (root's own first).
    rounds:
        CONGEST rounds consumed.
    """

    values: list[tuple[int, float]]
    rounds: int


def _pipelined_rounds(tree: BFSTree) -> int:
    """Worst-case pipelined completion time: ``height + items − 1`` where
    ``items = size − 1`` (every non-root node ships one item)."""
    items = tree.size - 1
    if items == 0:
        return 0
    return tree.height + items - 1


class _UpcastProgram(NodeProgram):
    def __init__(self, tree: BFSTree, value: float, bits: int):
        self.tree = tree
        self.bits = bits
        self.queue: deque[tuple[int, float]] = deque([(0, value)])
        self.received: list[tuple[int, float]] = []
        self.pending_children: set[int] | None = None

    def setup(self) -> None:
        if not self.tree.in_tree[self.node]:
            self.halted = True
            return
        own = self.queue.popleft()
        if self.node == self.tree.source:
            self.received.append((self.node, own[1]))
        else:
            self.queue.append((self.node, own[1]))
        self.pending_children = set(
            int(v) for v in self.tree.children[self.node]
        )
        self._expect = self._subtree_size() - 1  # items still to arrive
        if self.node == self.tree.source and self._expect == 0:
            self.halted = True

    def _subtree_size(self) -> int:
        # Count descendants (including self) — local precomputation.
        stack = [self.node]
        count = 0
        while stack:
            u = stack.pop()
            count += 1
            stack.extend(int(v) for v in self.tree.children[u])
        return count

    def send(self, round_no: int):
        if self.node == self.tree.source or not self.queue:
            return {}
        item = self.queue.popleft()
        out = {
            int(self.tree.parent[self.node]): Message(item, self.bits)
        }
        if not self.queue and self._expect == 0:
            self.halted = True
        return out

    def receive(self, round_no: int, inbox) -> None:
        for _, msg in inbox.items():
            self._expect -= 1
            if self.node == self.tree.source:
                self.received.append(tuple(msg.value))
            else:
                self.queue.append(tuple(msg.value))
        if (
            self.node == self.tree.source
            and self._expect == 0
        ):
            self.halted = True
        # Non-root nodes may still have queued items; they halt in send.


def upcast_values(
    net: CongestNetwork,
    tree: BFSTree,
    values: np.ndarray,
    bits: int,
    *,
    phase: str = "upcast",
) -> UpcastResult:
    """Ship every in-tree node's ``(id, value)`` pair to the root.

    Fast layer charges the worst-case pipelined round count
    ``height + (size−1) − 1``; the faithful layer actually pipelines and is
    verified by tests to finish within that bound (it can finish earlier on
    bushy trees where branches drain in parallel).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (net.n,):
        raise ValueError("values must have one entry per node")
    net.check_bits(bits)

    if net.mode == "fast":
        rounds = _pipelined_rounds(tree)
        items = tree.size - 1
        # messages: each item crosses depth(u) tree edges
        depths = tree.depth[tree.in_tree]
        msgs = int(depths[depths > 0].sum())
        net.ledger.charge(
            rounds=rounds, messages=msgs, bits=msgs * bits, phase=phase
        )
        nodes = np.flatnonzero(tree.in_tree)
        pairs = [(int(u), float(values[u])) for u in nodes]
        return UpcastResult(values=pairs, rounds=rounds)

    programs = [
        _UpcastProgram(tree, float(values[u]), bits) for u in range(net.n)
    ]
    engine = SyncEngine(net, phase=phase)
    rounds = engine.run(programs, max_rounds=_pipelined_rounds(tree) + 1)
    got = programs[tree.source].received
    # Charge the worst-case/fast-path difference so both layers agree on
    # the ledger (the faithful run may drain early on bushy trees; the
    # model cost is the pipelined bound).
    if rounds < _pipelined_rounds(tree):
        net.ledger.charge(
            rounds=_pipelined_rounds(tree) - rounds, phase=phase
        )
        rounds = _pipelined_rounds(tree)
    return UpcastResult(values=sorted(got), rounds=rounds)


def k_smallest_sum_upcast(
    net: CongestNetwork,
    tree: BFSTree,
    values: np.ndarray,
    k: int,
    bits: int,
    *,
    virtual_value: float | None = None,
    virtual_count: int = 0,
    phase: str = "upcast",
) -> float:
    """The naive k-smallest-sum: upcast everything, sort at the source.

    Same semantics as :func:`repro.congest.ksmallest.k_smallest_sum` (no
    perturbation needed — the source sees exact values), at upcast cost
    ``Θ(height + size)`` instead of ``Θ(height·log)``.
    """
    pool_size = tree.size + virtual_count
    if not 1 <= k <= pool_size:
        raise ValueError(f"k={k} out of range [1, {pool_size}]")
    if virtual_count > 0 and virtual_value is None:
        raise ValueError("virtual_count > 0 needs virtual_value")
    res = upcast_values(net, tree, values, bits, phase=phase)
    pool = [v for _, v in res.values]
    if virtual_count:
        pool.extend([float(virtual_value)] * virtual_count)
    pool.sort()
    return float(sum(pool[:k]))
