"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NotRegularError",
    "DisconnectedGraphError",
    "BipartiteGraphError",
    "ConvergenceError",
    "CongestViolationError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class GraphError(ReproError):
    """A graph argument is structurally invalid for the requested operation."""


class NotRegularError(GraphError):
    """An algorithm that requires a regular graph received a non-regular one.

    The paper's local mixing algorithms (Section 3) assume d-regular graphs;
    the restricted stationary distribution is then uniform (1/|S|) on the set.
    """


class DisconnectedGraphError(GraphError):
    """Random-walk quantities are undefined on disconnected graphs."""


class BipartiteGraphError(GraphError):
    """A simple (non-lazy) walk on a bipartite graph does not converge.

    Mixing time is well-defined only for non-bipartite graphs (paper,
    Section 2.1, footnote 5); use ``lazy=True`` to side-step this.
    """


class ConvergenceError(ReproError):
    """An iterative estimator exhausted its budget without converging."""

    def __init__(self, message: str, last_length: int | None = None):
        super().__init__(message)
        #: The largest walk length that was examined before giving up.
        self.last_length = last_length


class CongestViolationError(ReproError):
    """A message exceeded the per-edge bandwidth budget of the CONGEST model."""


class ProtocolError(ReproError):
    """A node program violated the simulator's execution contract."""
