"""Global constants shared across the library.

The defaults mirror the choices made in the paper:

* ``DEFAULT_EPS`` — the accuracy parameter :math:`\\varepsilon` of
  Definitions 1 and 2.  The paper (Section 3) fixes
  :math:`\\varepsilon = 1/(8e)` "which is typically done".
* ``DEFAULT_C`` — the fixed-point exponent of Algorithm 1.  Node values are
  rounded to the nearest integer multiple of :math:`n^{-c}` every round, and
  the paper notes that any :math:`c \\ge 6` suffices because mixing times are
  at most :math:`O(n^3)`.
* ``DEFAULT_BETA`` — a convenient default for the set-size parameter
  :math:`\\beta` (local mixing over sets of size at least :math:`n/\\beta`).
"""

from __future__ import annotations

import math

#: Paper default accuracy parameter (Section 3): eps = 1/(8e).
DEFAULT_EPS: float = 1.0 / (8.0 * math.e)

#: Fixed-point rounding exponent used by Algorithm 1 (values are multiples of
#: ``n**-DEFAULT_C``).  The paper requires ``c >= 6``.
DEFAULT_C: int = 6

#: Default set-size parameter: local mixing over sets of size >= n / beta.
DEFAULT_BETA: float = 2.0

#: Hard ceiling on walk lengths explored by iterative estimators.  The mixing
#: time of any connected non-bipartite graph is O(n^3); a multiple of that is
#: a safe upper bound that turns would-be infinite loops into clean errors.
MAX_WALK_LENGTH_FACTOR: int = 8

#: Tie-breaking perturbation interval for the distributed k-smallest search
#: (Section 3.1): each node adds a random r_u drawn from
#: [n**-PERTURB_HIGH_EXP, n**-PERTURB_LOW_EXP].
PERTURB_LOW_EXP: int = 4
PERTURB_HIGH_EXP: int = 8

__all__ = [
    "DEFAULT_EPS",
    "DEFAULT_C",
    "DEFAULT_BETA",
    "MAX_WALK_LENGTH_FACTOR",
    "PERTURB_LOW_EXP",
    "PERTURB_HIGH_EXP",
]
