"""Plain-text table rendering for benchmark/experiment output.

The benchmark harness prints the same rows that EXPERIMENTS.md records; this
module keeps the formatting in one place so tables look identical everywhere.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.
    title:
        Optional line printed above the table.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
