"""Scaling-law fits used to check asymptotic claims on finite sweeps.

A theory paper's claims are of the form "τ grows like n²"; on a finite sweep
we check them by fitting the slope of log(y) against log(x).  The fitted
exponent, its residual, and the multiplicative constant are reported next to
the claimed exponent in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["loglog_slope", "PowerLawFit"]


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y ≈ coeff * x**exponent``.

    Attributes
    ----------
    exponent:
        Fitted power-law exponent (slope in log–log space).
    coeff:
        Fitted multiplicative constant.
    residual:
        Root-mean-square residual in log space (0 = perfect power law).
    """

    exponent: float
    coeff: float
    residual: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted law at ``x``."""
        return self.coeff * x**self.exponent


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x**a`` by linear regression in log–log space.

    Points with non-positive ``y`` are clamped to the smallest positive value
    (they arise when a measured time is 0 rounds, e.g. a constant-time family);
    the caller should interpret near-zero exponents as "constant".
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("xs and ys must be 1-D sequences of equal length")
    if len(x) < 2:
        raise ValueError("need at least two points to fit a slope")
    if np.any(x <= 0):
        raise ValueError("xs must be positive")
    y = np.maximum(y, np.min(y[y > 0], initial=1.0) * 1e-3)
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    resid = float(np.sqrt(np.mean((ly - (slope * lx + intercept)) ** 2)))
    return PowerLawFit(exponent=float(slope), coeff=float(np.exp(intercept)), residual=resid)
