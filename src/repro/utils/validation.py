"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_fraction",
    "check_probability_vector",
    "ensure_int",
]


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, closed_right: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1)`` (or ``(0, 1]``)."""
    upper_ok = value <= 1 if closed_right else value < 1
    if not (0 < value and upper_ok):
        interval = "(0, 1]" if closed_right else "(0, 1)"
        raise ValueError(f"{name} must be in {interval}, got {value!r}")
    return value


def check_probability_vector(p: np.ndarray, *, atol: float = 1e-8) -> np.ndarray:
    """Validate that ``p`` is a 1-D non-negative vector summing to 1."""
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1:
        raise ValueError(f"probability vector must be 1-D, got shape {p.shape}")
    if np.any(p < -atol):
        raise ValueError("probability vector has negative entries")
    total = float(p.sum())
    if abs(total - 1.0) > atol:
        raise ValueError(f"probability vector sums to {total}, expected 1")
    return p


def ensure_int(name: str, value: float) -> int:
    """Coerce ``value`` to ``int``, rejecting non-integral floats."""
    if isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{name} must be an integer, got bool")
    ivalue = int(value)
    if ivalue != value:
        raise ValueError(f"{name} must be integral, got {value!r}")
    return ivalue
