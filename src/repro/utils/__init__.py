"""Small shared utilities: RNG handling, validation, formatting, fitting."""

from repro.utils.seeding import as_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
    ensure_int,
)
from repro.utils.tables import format_table
from repro.utils.fitting import loglog_slope

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
    "ensure_int",
    "format_table",
    "loglog_slope",
]
