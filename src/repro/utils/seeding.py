"""Deterministic random-number-generator plumbing.

Every randomized entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, or a ``numpy.random.Generator``; :func:`as_rng`
normalizes all three.  Experiments that need several independent streams
(e.g. one per node, or one per repetition) use :func:`spawn_rngs`, which
derives child generators through NumPy's ``SeedSequence`` spawning so streams
are statistically independent and reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        generator (returned unchanged, so callers can thread one generator
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(
    seed: int | np.random.Generator | None, count: int
) -> Sequence[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Child streams are independent of each other and of the parent, and the
    whole family is reproducible from the original integer seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawning from a Generator requires numpy >= 1.25 (Generator.spawn).
        return list(seed.spawn(count))
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]
