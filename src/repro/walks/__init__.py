"""Random-walk toolkit: exact distribution evolution, Monte-Carlo walkers,
mixing times, restricted distributions, and the centralized local mixing
time (the ground truth the distributed algorithms are validated against)."""

from repro.walks.distribution import (
    SpectralPropagator,
    distribution_at,
    distribution_trajectory,
    initial_distribution,
    l1_distance,
)
from repro.walks.restricted import (
    restrict,
    restricted_stationary,
    set_l1_deviation,
    set_mixing_time,
)
from repro.walks.mixing import graph_mixing_time, mixing_time
from repro.walks.local_mixing import (
    LocalMixingResult,
    local_mixing_spectrum,
    best_uniform_deviation,
    find_witness_set,
    graph_local_mixing_time,
    local_mixing_time,
    size_grid,
)
from repro.walks.simulate import (
    empirical_distribution,
    random_walk,
    token_diffusion,
    walk_endpoints,
)

__all__ = [
    "initial_distribution",
    "distribution_at",
    "distribution_trajectory",
    "SpectralPropagator",
    "l1_distance",
    "restrict",
    "restricted_stationary",
    "set_l1_deviation",
    "set_mixing_time",
    "mixing_time",
    "graph_mixing_time",
    "LocalMixingResult",
    "local_mixing_time",
    "local_mixing_spectrum",
    "graph_local_mixing_time",
    "best_uniform_deviation",
    "find_witness_set",
    "size_grid",
    "random_walk",
    "walk_endpoints",
    "token_diffusion",
    "empirical_distribution",
]
