"""Exact random-walk probability distributions.

Two evaluation strategies:

* **iterative** — repeated sparse matvec ``p ← A p`` (``O(t·m)``); the right
  tool when distributions are needed at *every* step (local mixing scans).
* **spectral** — :class:`SpectralPropagator` diagonalizes the symmetrized
  walk operator once (``O(n³)``) and then evaluates ``p_t`` at *any* ``t`` in
  ``O(n²)``; the right tool for binary searches over ``t`` (global mixing
  time, which is monotone by the paper's Lemma 1).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graphs.base import Graph
from repro.spectral.transition import walk_operator

__all__ = [
    "initial_distribution",
    "distribution_at",
    "distribution_trajectory",
    "SpectralPropagator",
    "l1_distance",
]


def initial_distribution(n: int, source: int) -> np.ndarray:
    """The paper's ``p_0(s)``: probability 1 at ``source``, 0 elsewhere."""
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    p = np.zeros(n, dtype=np.float64)
    p[source] = 1.0
    return p


def l1_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``‖p − q‖₁`` (the paper's distance throughout)."""
    return float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def distribution_at(
    g: Graph, source: int, t: int, *, lazy: bool = False
) -> np.ndarray:
    """Exact ``p_t`` for a walk from ``source`` by ``t`` sparse matvecs."""
    if t < 0:
        raise ValueError("t must be non-negative")
    A = walk_operator(g, lazy=lazy)
    p = initial_distribution(g.n, source)
    for _ in range(t):
        p = A @ p
    return p


def distribution_trajectory(
    g: Graph, source: int, *, lazy: bool = False, t_max: int | None = None
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(t, p_t)`` for ``t = 0, 1, 2, …`` (up to ``t_max`` inclusive).

    The yielded array is reused internally — callers that keep a reference
    must copy.
    """
    A = walk_operator(g, lazy=lazy)
    p = initial_distribution(g.n, source)
    t = 0
    yield t, p
    while t_max is None or t < t_max:
        p = A @ p
        t += 1
        yield t, p


class SpectralPropagator:
    """Random-access evaluation of ``p_t`` via eigendecomposition.

    Diagonalizes ``N = D^{-1/2} A_adj D^{-1/2}`` (symmetric, same spectrum as
    the walk matrix).  With ``N = U Λ Uᵀ``::

        p_t = D^{1/2} U Λ^t Uᵀ D^{-1/2} p_0

    so after the one-time ``O(n³)`` setup each evaluation is a dense matvec.
    Intended for ``n`` up to a few thousand.

    Parameters
    ----------
    g:
        Connected graph.
    lazy:
        Diagonalize the lazy operator ``(I+N)/2`` instead (needed for
        bipartite graphs where the simple walk is periodic).
    """

    def __init__(self, g: Graph, *, lazy: bool = False):
        g.require_connected()
        self.graph = g
        self.lazy = lazy
        import scipy.sparse as sp

        deg = g.degrees.astype(np.float64)
        self._sqrt_deg = np.sqrt(deg)
        inv = sp.diags(1.0 / self._sqrt_deg)
        N = (inv @ g.adjacency_matrix() @ inv).toarray()
        if lazy:
            N = 0.5 * (np.eye(g.n) + N)
        # eigh returns ascending eigenvalues.
        self._eigvals, self._eigvecs = np.linalg.eigh(N)

    @classmethod
    def from_arrays(
        cls,
        g: Graph,
        *,
        lazy: bool,
        sqrt_deg: np.ndarray,
        eigvals: np.ndarray,
        eigvecs: np.ndarray,
    ) -> "SpectralPropagator":
        """Rebuild a propagator from a previously computed decomposition
        without re-running ``eigh``.

        The caller guarantees the arrays came from an *identical*
        decomposition of this ``(g, lazy)`` operator — including memory
        layout, since BLAS products can differ bitwise between C- and
        F-contiguous operands.  This is the zero-copy attach path of
        :class:`~repro.parallel.SharedEigenbasis`: the parent publishes
        its eigenbasis once and every worker rebuilds the propagator on
        views of the shared segment, so evaluations match the parent's
        bitwise."""
        self = cls.__new__(cls)
        self.graph = g
        self.lazy = lazy
        self._sqrt_deg = np.asarray(sqrt_deg, dtype=np.float64)
        self._eigvals = np.asarray(eigvals, dtype=np.float64)
        self._eigvecs = np.asarray(eigvecs, dtype=np.float64)
        return self

    def _lambda_power(self, t: int) -> np.ndarray:
        # |λ| ≤ 1 so λ**t underflows gracefully to 0 for huge t.
        return self._eigvals ** int(t)

    def propagate(self, p0: np.ndarray, t: int) -> np.ndarray:
        """``p_t`` for an arbitrary start distribution ``p0``.

        ``p0`` may also be an ``(n, k)`` block of ``k`` start distributions
        (one per column, as produced by
        :class:`~repro.engine.propagator.BlockPropagator`); the result then
        has the same shape, each column propagated independently.
        """
        if t < 0:
            raise ValueError("t must be non-negative")
        p0 = np.asarray(p0, dtype=np.float64)
        if p0.ndim == 1:
            coeff = self._eigvecs.T @ (p0 / self._sqrt_deg)
            return self._sqrt_deg * (
                self._eigvecs @ (self._lambda_power(t) * coeff)
            )
        if p0.ndim != 2:
            raise ValueError("p0 must be a vector or an (n, k) block")
        coeff = self._eigvecs.T @ (p0 / self._sqrt_deg[:, None])
        return self._sqrt_deg[:, None] * (
            self._eigvecs @ (self._lambda_power(t)[:, None] * coeff)
        )

    def from_source(self, source: int, t: int) -> np.ndarray:
        """``p_t`` for the one-hot start at ``source``."""
        if t < 0:
            raise ValueError("t must be non-negative")
        coeff = self._eigvecs[source, :] / self._sqrt_deg[source]
        return self._sqrt_deg * (self._eigvecs @ (self._lambda_power(t) * coeff))

    def from_sources_at(
        self, sources: np.ndarray, ts: np.ndarray
    ) -> np.ndarray:
        """``p_{ts[j]}`` for the one-hot start at ``sources[j]`` as an
        ``(n, k)`` block — each column evaluated at its *own* walk length.

        This is the workhorse of batched binary searches over ``t`` (global
        mixing times), where every column carries a different bracket.  The
        per-column arithmetic matches :meth:`from_source` up to BLAS
        accumulation order; callers that need decisions identical to the
        per-source path must re-verify near-threshold columns with
        :meth:`from_source` (see :func:`repro.engine.batch.batched_mixing_times`).
        """
        src = np.asarray(sources, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.int64)
        if src.ndim != 1 or ts.shape != src.shape:
            raise ValueError("sources and ts must be 1-D of the same length")
        if np.any(ts < 0):
            raise ValueError("t must be non-negative")
        # (n, k): coefficient vectors of each one-hot start, as in from_source.
        coeff = (self._eigvecs[src, :] / self._sqrt_deg[src, None]).T
        lam = np.power(self._eigvals[:, None], ts[None, :])
        return self._sqrt_deg[:, None] * (self._eigvecs @ (lam * coeff))
