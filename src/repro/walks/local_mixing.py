"""Centralized computation of the **local mixing time** (Definition 2).

This is the ground-truth reference that the paper's distributed algorithms
(Algorithms 1 and 2, and the exact variant of §3.2) are validated against.

Core fact used throughout (regular graphs; paper §3): for a fixed walk
distribution ``p`` and set size ``R``, the set minimizing
``Σ_{u∈S} |p(u) − 1/R|`` is the ``R`` nodes with the smallest
``x_u = |p(u) − 1/R|``; on a copy of ``p`` sorted ascending those nodes form
a **contiguous window**, because ``x`` is V-shaped in ``p``.  The
:class:`UniformDeviationOracle` therefore sorts ``p`` once and answers every
size query with an ``O(n)`` vectorized window scan (windows, prefix sums and
the split point at ``1/R`` are all ``numpy`` primitives).

Semantics knobs mirror the paper exactly:

* ``sizes="all"`` checks every integer ``R ≥ ⌈n/β⌉`` (pure Definition 2);
  ``sizes="grid"`` checks the algorithm's geometric grid
  ``R = n/β·(1+ε)^i`` and should be combined with ``threshold_factor=4``
  (the Lemma 3 relaxation) to reproduce Algorithm 2's stopping rule.
* ``t_schedule="all"`` scans ``t = 0, 1, 2, …`` (exact; §3.2);
  ``"doubling"`` scans ``t = 1, 2, 4, …`` (Algorithm 2; 2-approximation
  under the paper's ``τ·φ(S) = o(1)`` assumption, Lemma 4).
* ``require_source`` enforces ``s ∈ S`` (Definition 2 requires it; the
  distributed algorithm does not — both are available, default ``False`` to
  match Algorithm 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_EPS, MAX_WALK_LENGTH_FACTOR
from repro.errors import BipartiteGraphError, ConvergenceError
from repro.graphs.base import Graph
from repro.walks.distribution import distribution_trajectory

__all__ = [
    "UniformDeviationOracle",
    "best_uniform_deviation",
    "window_deviation_sums",
    "size_grid",
    "LocalMixingResult",
    "local_mixing_time",
    "graph_local_mixing_time",
    "local_mixing_profile",
    "find_witness_set",
]


def window_deviation_sums(
    sorted_p: np.ndarray, prefix: np.ndarray, length: int, c: float,
    starts: np.ndarray,
) -> np.ndarray:
    """``Σ_{j∈[i, i+length)} |sorted_p[j] − c|`` for each start ``i``, given
    the ascending-sorted distribution and its zero-led prefix sums.

    This is the one home of the split-point window formula — shared by
    :class:`UniformDeviationOracle` and the dynamic tracker's transcript
    verifier (:mod:`repro.dynamic.tracker`), whose exactness contract
    depends on both evaluating it with identical arithmetic.
    """
    k0 = int(np.searchsorted(sorted_p, c))
    k = np.clip(k0, starts, starts + length)
    below = c * (k - starts) - (prefix[k] - prefix[starts])
    above = (prefix[starts + length] - prefix[k]) - c * (length - (k - starts))
    return below + above


class UniformDeviationOracle:
    """Answers ``min_{|S|=R} Σ_{u∈S} |p(u) − 1/R|`` queries for one ``p``.

    Parameters
    ----------
    p:
        Walk distribution (1-D, non-negative).
    source:
        Optional source node; needed only for ``require_source`` queries.
    """

    def __init__(self, p: np.ndarray, source: int | None = None):
        p = np.asarray(p, dtype=np.float64)
        if p.ndim != 1:
            raise ValueError("p must be 1-D")
        self.n = p.size
        self.order = np.argsort(p, kind="stable")
        self.sorted = p[self.order]
        self.prefix = np.concatenate([[0.0], np.cumsum(self.sorted)])
        self.source = source
        if source is not None:
            # The slot in sorted order holding the source node itself
            # (stable argsort makes this well-defined among ties).
            self._src_pos = int(np.flatnonzero(self.order == source)[0])

    def _window_sums(
        self, length: int, c: float, starts: np.ndarray
    ) -> np.ndarray:
        """``Σ_{j∈[i, i+length)} |sorted[j] − c|`` for each start ``i``."""
        return window_deviation_sums(self.sorted, self.prefix, length, c, starts)

    def _best_constrained(self, R: int) -> tuple[float, str, int]:
        """Best sum over sets of size ``R`` that contain the source.

        Exact decomposition: a source-containing set is ``{s}`` plus the best
        ``R−1`` nodes among the rest; in sorted order those are either a
        window avoiding the source's slot, or a length-``R`` window through
        the slot with the slot itself removed.
        """
        n, c = self.n, 1.0 / R
        pos = self._src_pos
        x_s = abs(self.sorted[pos] - c)
        best, case, start = math.inf, "window", 0
        # Length-R windows containing the source's slot (slot counted in).
        lo, hi = max(0, pos - R + 1), min(pos, n - R)
        if hi >= lo:
            starts = np.arange(lo, hi + 1)
            sums = self._window_sums(R, c, starts)
            j = int(np.argmin(sums))
            best, case, start = float(sums[j]), "window", int(starts[j])
        if R >= 2:
            # Length-(R−1) windows avoiding the slot, plus the source term.
            L = R - 1
            pieces = []
            if pos - L >= 0:
                pieces.append(np.arange(0, pos - L + 1))
            if pos + 1 <= n - L:
                pieces.append(np.arange(pos + 1, n - L + 1))
            if pieces:
                starts = np.concatenate(pieces)
                sums = self._window_sums(L, c, starts) + x_s
                j = int(np.argmin(sums))
                if sums[j] < best:
                    best, case, start = float(sums[j]), "punctured", int(starts[j])
        elif x_s < best:
            best, case, start = x_s, "punctured", pos
        return best, case, start

    def best_sum(
        self, R: int, *, require_source: bool = False
    ) -> tuple[float, int]:
        """Return ``(min_sum, window_start)`` for set size ``R``.

        Without ``require_source``, ``window_start`` indexes :attr:`order`
        and the witness nodes are ``order[window_start : window_start + R]``.
        With it, use :meth:`witness` to materialize the set (the optimum may
        be a punctured window plus the source).
        """
        n = self.n
        if not 1 <= R <= n:
            raise ValueError(f"R={R} out of range [1, {n}]")
        if require_source:
            if self.source is None:
                raise ValueError("oracle built without a source")
            best, _case, start = self._best_constrained(R)
            return best, start
        starts = np.arange(n - R + 1)
        sums = self._window_sums(R, 1.0 / R, starts)
        j = int(np.argmin(sums))
        return float(sums[j]), int(starts[j])

    def witness(self, R: int, *, require_source: bool = False) -> np.ndarray:
        """A node set achieving :meth:`best_sum`."""
        if not require_source:
            _, start = self.best_sum(R)
            return np.sort(self.order[start : start + R].copy())
        _, case, start = self._best_constrained(R)
        if case == "window":
            # The window contains the source's own slot by construction.
            return np.sort(self.order[start : start + R].copy())
        if R == 1:
            return np.array([self.source], dtype=self.order.dtype)
        # Punctured case: a length-(R−1) window that avoids the source's
        # slot, plus the source itself.
        picks = self.order[start : start + R - 1]
        nodes = np.concatenate([picks, [self.source]])
        return np.sort(nodes)


def best_uniform_deviation(
    p: np.ndarray, R: int, *, source: int | None = None, require_source: bool = False
) -> float:
    """One-shot convenience wrapper around :class:`UniformDeviationOracle`."""
    oracle = UniformDeviationOracle(p, source=source)
    return oracle.best_sum(R, require_source=require_source)[0]


def size_grid(n: int, beta: float, grid_factor: float) -> list[int]:
    """The algorithm's set-size grid ``R = n/β, (1+ε)n/β, …, n`` (integers,
    deduplicated, always ending at ``n``)."""
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if grid_factor <= 0:
        raise ValueError("grid_factor must be positive")
    sizes = []
    r = n / beta
    while r < n:
        sizes.append(int(math.ceil(r)))
        r *= 1.0 + grid_factor
    sizes.append(n)
    return sorted(set(min(max(s, 1), n) for s in sizes))


@dataclass(frozen=True)
class LocalMixingResult:
    """Outcome of a local mixing time computation.

    Attributes
    ----------
    time:
        The (approximate or exact, per the knobs used) local mixing time.
    set_size:
        The set size ``R`` at which the stopping rule fired.
    deviation:
        The achieved ``Σ|p − 1/R|`` at that size (below the threshold).
    threshold:
        The threshold that was compared against (``ε·threshold_factor``).
    steps_checked:
        Number of walk lengths examined.
    sizes_checked:
        Total number of ``(t, R)`` checks performed.
    """

    time: int
    set_size: int
    deviation: float
    threshold: float
    steps_checked: int
    sizes_checked: int


def _candidate_sizes(n: int, beta: float, sizes, grid_factor: float) -> list[int]:
    if isinstance(sizes, str):
        if sizes == "all":
            return list(range(int(math.ceil(n / beta)), n + 1))
        if sizes == "grid":
            return size_grid(n, beta, grid_factor)
        raise ValueError(f"unknown sizes mode {sizes!r}")
    out = sorted(set(int(s) for s in sizes))
    if not out or out[0] < 1 or out[-1] > n:
        raise ValueError("explicit sizes out of range")
    return out


def _resolve_walk_bounds(g: Graph, lazy: bool, t_max: int | None) -> int:
    """Shared preconditions for walk-length searches (centralized and the
    batch engine): the graph must be connected and, unless the walk is lazy,
    non-bipartite; returns ``t_max`` with the ``O(n³)`` default applied."""
    g.require_connected()
    if not lazy and g.is_bipartite:
        raise BipartiteGraphError(
            f"{g.name} is bipartite; pass lazy=True for a well-defined walk"
        )
    return MAX_WALK_LENGTH_FACTOR * g.n**3 if t_max is None else t_max


def _t_iter(schedule: str, t_max: int):
    if schedule == "all":
        t = 0
        while t <= t_max:
            yield t
            t += 1
    elif schedule == "doubling":
        t = 1
        while t <= t_max:
            yield t
            t *= 2
    else:
        raise ValueError(f"unknown t_schedule {schedule!r}")


def local_mixing_time(
    g: Graph,
    source: int,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    sizes: str | list[int] = "all",
    threshold_factor: float = 1.0,
    grid_factor: float | None = None,
    t_schedule: str = "all",
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
    target: str = "uniform",
) -> LocalMixingResult:
    """Centralized local mixing time ``τ_s(β, ε)`` (Definition 2).

    Default knobs give the *exact* value under the paper's uniform-target
    semantics (regular graphs): every integer set size, every walk length,
    threshold ``ε``.  To reproduce Algorithm 2's stopping rule exactly, use
    ``sizes="grid", threshold_factor=4, t_schedule="doubling"``.

    Parameters
    ----------
    target:
        ``"uniform"`` — Algorithm 2's check ``Σ|p(u) − 1/R| < threshold``
        (exact Definition 2 on regular graphs).  ``"degree"`` — a
        degree-aware fixed-point heuristic for irregular graphs that
        targets ``π_S(v) = d(v)/µ(S)`` (a documented deviation from the
        paper's regular-graph setting; see docs/paper_map.md).  Both
        targets are equally supported by the batched engine
        (:func:`~repro.engine.batch.batched_local_mixing_times`), whose
        per-source results are identical to this loop.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if beta < 1:
        raise ValueError("beta must be >= 1 (sets of size at least n/beta)")
    if not 0 <= source < g.n:
        raise ValueError("source out of range")
    t_max = _resolve_walk_bounds(g, lazy, t_max)
    grid_factor = eps if grid_factor is None else grid_factor
    candidates = _candidate_sizes(g.n, beta, sizes, grid_factor)
    threshold = eps * threshold_factor

    schedule = _t_iter(t_schedule, t_max)
    target_t = next(schedule, None)
    steps = 0
    checks = 0
    degrees = g.degrees.astype(np.float64)
    for t, p in distribution_trajectory(g, source, lazy=lazy, t_max=t_max):
        if target_t is None:
            break
        if t < target_t:
            continue
        target_t = next(schedule, None)
        steps += 1
        if target == "uniform":
            oracle = UniformDeviationOracle(p, source=source)
            for R in candidates:
                checks += 1
                s, _ = oracle.best_sum(R, require_source=require_source)
                if s < threshold:
                    return LocalMixingResult(
                        time=t,
                        set_size=R,
                        deviation=s,
                        threshold=threshold,
                        steps_checked=steps,
                        sizes_checked=checks,
                    )
        elif target == "degree":
            for R in candidates:
                checks += 1
                s = _degree_target_best(p, degrees, R, source, require_source)
                if s < threshold:
                    return LocalMixingResult(
                        time=t,
                        set_size=R,
                        deviation=s,
                        threshold=threshold,
                        steps_checked=steps,
                        sizes_checked=checks,
                    )
        else:
            raise ValueError(f"unknown target {target!r}")
    raise ConvergenceError(
        f"no local mixing found up to t_max={t_max} "
        f"(beta={beta}, eps={eps}, threshold={threshold})",
        last_length=t_max,
    )


def _degree_target_best(
    p: np.ndarray,
    degrees: np.ndarray,
    R: int,
    source: int,
    require_source: bool,
    iters: int = 4,
) -> float:
    """Fixed-point heuristic for irregular graphs: choose S of size R
    minimizing ``Σ_{v∈S} |p(v) − d(v)/µ(S)|`` where ``µ(S)`` depends on S.

    Start from the mean-degree volume guess, select the R smallest residuals
    (stable argsort, so exact ties break deterministically by node id — the
    batched transcript in
    :class:`~repro.engine.oracle.BatchedDegreeDeviationOracle` reproduces
    the selection bitwise), recompute µ(S), repeat.  Exact when the graph is
    regular (then it reduces to the uniform window).
    """
    mu = R * float(degrees.mean())
    best = math.inf
    for _ in range(iters):
        resid = np.abs(p - degrees / mu)
        if require_source:
            resid = resid.copy()
            resid[source] = -1.0  # force inclusion
        idx = np.argsort(resid, kind="stable")[:R]
        mu_new = float(degrees[idx].sum())
        val = float(np.abs(p[idx] - degrees[idx] / mu_new).sum())
        best = min(best, val)
        if abs(mu_new - mu) < 1e-12:
            break
        mu = mu_new
    return best


def graph_local_mixing_time(
    g: Graph,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    sources=None,
    engine: str = "batch",
    **kwargs,
) -> int:
    """``τ(β,ε) = max_v τ_v(β,ε)`` — optionally over a sample of sources
    (the paper notes a full pass costs an ``O(n)`` factor; sampling is
    appropriate when local mixing times are homogeneous).

    By default the sources are solved together on the batched multi-source
    engine (:mod:`repro.engine`): one block trajectory and one batched
    deviation oracle replace the per-source loop, with identical per-source
    outputs for every knob combination — ``target="degree"`` and
    ``require_source=True`` included.  ``engine="parallel"`` shards the
    sources across a process pool (:mod:`repro.parallel`; forward
    ``n_workers=`` or a long-lived ``executor=`` through ``kwargs``) —
    same results again, the loop-equivalence guarantee is worker-count
    independent.  ``engine="loop"`` forces the original per-source loop
    (the reference both engines are validated against)."""
    if engine not in ("batch", "loop", "parallel"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "parallel":
        from repro.parallel import parallel_local_mixing_times

        results = parallel_local_mixing_times(
            g, beta, eps, sources=sources, **kwargs
        )
        return max(r.time for r in results)
    if engine == "batch":
        from repro.engine import batched_local_mixing_times

        results = batched_local_mixing_times(
            g, beta, eps, sources=sources, **kwargs
        )
        return max(r.time for r in results)
    if sources is None:
        sources = range(g.n)
    return max(
        local_mixing_time(g, int(s), beta, eps, **kwargs).time for s in sources
    )


def local_mixing_profile(
    g: Graph,
    source: int,
    beta: float,
    *,
    sizes: str | list[int] = "all",
    grid_factor: float = DEFAULT_EPS,
    t_max: int = 100,
    lazy: bool = False,
    require_source: bool = False,
) -> np.ndarray:
    """The best achievable deviation ``min_R min_S Σ|p_t − 1/R|`` for each
    ``t = 0..t_max`` — used to demonstrate the *non-monotonicity* of the
    restricted deviation (paper §3 remark before Lemma 4).

    Runs on the batched engine
    (:func:`repro.engine.batched_local_mixing_profiles` with a single
    column, bitwise identical to the trajectory loop) for every knob
    combination, including the source-containment constraint
    (``require_source=True``), which the engine evaluates with the exact
    constrained single-source arithmetic on the shared block trajectory.
    """
    from repro.engine import batched_local_mixing_profiles

    return batched_local_mixing_profiles(
        g,
        beta,
        sources=[source],
        sizes=sizes,
        grid_factor=grid_factor,
        t_max=t_max,
        lazy=lazy,
        require_source=require_source,
    )[0]


def local_mixing_spectrum(
    g: Graph,
    source: int,
    eps: float = DEFAULT_EPS,
    *,
    sizes: list[int] | None = None,
    grid_factor: float | None = None,
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
) -> dict[int, int | float]:
    """The full local-mixing *spectrum*: for each candidate set size ``R``,
    the first time ``t`` with ``min_{|S|=R} Σ|p_t − 1/R| < ε``.

    This generalizes the single-β query: ``τ_s(β,ε)`` is the minimum of the
    spectrum over ``R ≥ n/β`` (since Definition 2 minimizes over all sets
    of size *at least* ``n/β``).  Sizes that never mix within ``t_max``
    map to ``math.inf``.

    Default sizes: the geometric grid over the full range ``[1, n]``.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    t_max = _resolve_walk_bounds(g, lazy, t_max)
    if sizes is None:
        sizes = size_grid(g.n, g.n, eps if grid_factor is None else grid_factor)
    else:
        sizes = sorted(set(int(s) for s in sizes))
        if not sizes or sizes[0] < 1 or sizes[-1] > g.n:
            raise ValueError("sizes out of range")
    unresolved = set(sizes)
    out: dict[int, int | float] = {}
    for t, p in distribution_trajectory(g, source, lazy=lazy, t_max=t_max):
        if not unresolved:
            break
        oracle = UniformDeviationOracle(p, source=source)
        for R in sorted(unresolved):
            s, _ = oracle.best_sum(R, require_source=require_source)
            if s < eps:
                out[R] = t
                unresolved.discard(R)
    for R in unresolved:
        out[R] = math.inf
    return out


def find_witness_set(
    g: Graph,
    source: int,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    lazy: bool = False,
    **kwargs,
) -> tuple[LocalMixingResult, np.ndarray]:
    """Compute the local mixing time and return the witness set ``S`` the
    stopping rule fired on (needed by the Lemma 4 experiment, which tracks
    how much probability escapes ``S`` between ``ℓ`` and ``2ℓ``)."""
    res = local_mixing_time(g, source, beta, eps, lazy=lazy, **kwargs)
    from repro.walks.distribution import distribution_at

    p = distribution_at(g, source, res.time, lazy=lazy)
    oracle = UniformDeviationOracle(p, source=source)
    nodes = oracle.witness(
        res.set_size, require_source=kwargs.get("require_source", False)
    )
    return res, nodes
