"""Monte-Carlo random walks and token diffusion.

Used by the Molla–Pandurangan (ICDCN'17) baseline — which estimates ``p_ℓ``
by running many walks and histogramming their endpoints — and by tests that
cross-check the exact distribution machinery against simulation.

The walkers are vectorized: all ``k`` walks advance one step per iteration
with a single fancy-indexing gather (``O(k)`` per step, no Python loop over
walkers), following the HPC guide's "vectorize the hot loop" rule.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph
from repro.utils.seeding import as_rng

__all__ = [
    "random_walk",
    "walk_endpoints",
    "empirical_distribution",
    "token_diffusion",
]

#: Per-node token cap for token_diffusion's grouped (per-token) sampling;
#: nodes holding more use one rng.multinomial so per-step memory stays
#: O(n + Σ min(count, cap)) no matter how many tokens are diffused.
_GROUPED_SAMPLE_MAX = 4096


def random_walk(
    g: Graph, source: int, length: int, *, lazy: bool = False, seed=None
) -> np.ndarray:
    """A single walk trajectory: array of ``length + 1`` node ids."""
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = as_rng(seed)
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = source
    u = source
    for t in range(1, length + 1):
        if lazy and rng.random() < 0.5:
            path[t] = u
            continue
        nbrs = g.neighbors(u)
        u = int(nbrs[rng.integers(nbrs.size)])
        path[t] = u
    return path


def walk_endpoints(
    g: Graph,
    source: int,
    length: int,
    k_walks: int,
    *,
    lazy: bool = False,
    seed=None,
) -> np.ndarray:
    """Endpoints of ``k_walks`` independent walks of ``length`` steps from
    ``source``.  All walks advance in lockstep; each step is one vectorized
    gather into the CSR arrays."""
    if length < 0 or k_walks <= 0:
        raise ValueError("need length >= 0 and k_walks >= 1")
    rng = as_rng(seed)
    pos = np.full(k_walks, source, dtype=np.int64)
    indptr, indices = g.indptr, g.indices
    deg = g.degrees
    for _ in range(length):
        if lazy:
            move = rng.random(k_walks) < 0.5
            if not move.any():
                continue
            active = pos[move]
            offs = rng.integers(0, deg[active])
            pos[move] = indices[indptr[active] + offs]
        else:
            offs = rng.integers(0, deg[pos])
            pos = indices[indptr[pos] + offs]
    return pos


def empirical_distribution(endpoints: np.ndarray, n: int) -> np.ndarray:
    """Endpoint histogram normalized to a probability vector of length ``n``.

    Raises
    ------
    ValueError
        If any endpoint id falls outside ``[0, n)`` — out-of-range ids would
        otherwise silently stretch the returned vector past length ``n``.
    """
    endpoints = np.asarray(endpoints, dtype=np.int64)
    if endpoints.size == 0:
        raise ValueError("no endpoints")
    if n <= 0:
        raise ValueError("n must be positive")
    lo, hi = int(endpoints.min()), int(endpoints.max())
    if lo < 0 or hi >= n:
        raise ValueError(
            f"endpoint ids must lie in [0, {n}); got range [{lo}, {hi}]"
        )
    counts = np.bincount(endpoints, minlength=n).astype(np.float64)
    return counts / counts.sum()


def token_diffusion(
    g: Graph,
    source: int,
    length: int,
    tokens: int,
    *,
    lazy: bool = False,
    seed=None,
) -> np.ndarray:
    """Diffuse ``tokens`` identical walkers from ``source`` for ``length``
    steps, tracking only per-node *counts* (multinomial splitting).

    Equivalent in distribution to :func:`walk_endpoints` — this is exactly
    how the ICDCN'17 distributed estimator moves walk tokens (each node
    forwards counts, not individual walker ids).

    The hot loop is vectorized: nodes holding at most
    :data:`_GROUPED_SAMPLE_MAX` tokens are split in one grouped sample
    (``np.repeat`` of the active nodes, one ``rng.integers`` over per-token
    degree bounds, one ``bincount`` — a multinomial split over a node's
    neighbors is exactly the histogram of that many iid uniform neighbor
    choices), while nodes holding more fall back to a single
    ``rng.multinomial``, keeping per-step memory bounded regardless of the
    token count.
    """
    if tokens <= 0:
        raise ValueError("tokens must be >= 1")
    rng = as_rng(seed)
    counts = np.zeros(g.n, dtype=np.int64)
    counts[source] = tokens
    indptr, indices = g.indptr, g.indices
    deg = g.degrees
    for _ in range(length):
        active = np.flatnonzero(counts)
        moving = counts[active]
        nxt = np.zeros(g.n, dtype=np.int64)
        if lazy:
            stay = rng.binomial(moving, 0.5)
            nxt[active] = stay
            moving = moving - stay
        bulk = moving > _GROUPED_SAMPLE_MAX
        for u, c in zip(active[bulk], moving[bulk]):
            nbrs = g.neighbors(int(u))
            split = rng.multinomial(int(c), np.full(nbrs.size, 1.0 / nbrs.size))
            np.add.at(nxt, nbrs, split)
        owners = np.repeat(active[~bulk], moving[~bulk])
        if owners.size:
            offs = rng.integers(0, deg[owners])
            dest = indices[indptr[owners] + offs]
            nxt += np.bincount(dest, minlength=g.n)
        counts = nxt
    return counts
