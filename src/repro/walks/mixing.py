"""Exact (global) mixing times — Definition 1.

``τ_s^mix(ε) = min{t : ‖p_t − π‖₁ < ε}``.  By the paper's Lemma 1 the
deviation ``‖p_t − π‖₁`` is non-increasing in ``t``, so the minimum can be
located by doubling + binary search — which is what the ``spectral`` method
does (each probe is ``O(n²)`` after one ``O(n³)`` diagonalization).  The
``iterative`` method scans ``t`` linearly with sparse matvecs and is better
when the answer is small or ``n`` is large.
"""

from __future__ import annotations

import numpy as np

from repro.constants import MAX_WALK_LENGTH_FACTOR
from repro.errors import BipartiteGraphError, ConvergenceError
from repro.graphs.base import Graph
from repro.spectral.stationary import stationary_distribution
from repro.walks.distribution import (
    SpectralPropagator,
    distribution_trajectory,
    l1_distance,
)

__all__ = ["mixing_time", "graph_mixing_time"]


def _check_walk_defined(g: Graph, lazy: bool) -> None:
    g.require_connected()
    if not lazy and g.is_bipartite:
        raise BipartiteGraphError(
            f"{g.name} is bipartite; the simple walk is periodic — "
            "pass lazy=True (paper, Section 2.1 footnote 5)"
        )


def mixing_time(
    g: Graph,
    source: int,
    eps: float,
    *,
    lazy: bool = False,
    method: str = "auto",
    t_max: int | None = None,
    propagator: SpectralPropagator | None = None,
) -> int:
    """Exact ε-mixing time ``τ_s^mix(ε)`` with respect to ``source``.

    Parameters
    ----------
    method:
        ``"iterative"`` (linear scan), ``"spectral"`` (doubling + binary
        search on a cached eigendecomposition, valid by Lemma 1
        monotonicity), or ``"auto"`` (spectral for n ≤ 3000, else iterative).
    propagator:
        Optional pre-built :class:`SpectralPropagator` (must match ``lazy``)
        so sweeps over many sources pay the ``O(n³)`` setup once.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    _check_walk_defined(g, lazy)
    if t_max is None:
        t_max = MAX_WALK_LENGTH_FACTOR * g.n**3
    pi = stationary_distribution(g)
    if method == "auto":
        method = "spectral" if g.n <= 3000 else "iterative"

    if method == "iterative":
        for t, p in distribution_trajectory(g, source, lazy=lazy, t_max=t_max):
            if l1_distance(p, pi) < eps:
                return t
        raise ConvergenceError(
            f"no t <= {t_max} reached eps={eps}", last_length=t_max
        )

    if method != "spectral":
        raise ValueError(f"unknown method {method!r}")
    prop = propagator or SpectralPropagator(g, lazy=lazy)

    def dist(t: int) -> float:
        return l1_distance(prop.from_source(source, t), pi)

    if dist(0) < eps:
        return 0
    # Doubling phase: find hi with dist(hi) < eps.
    hi = 1
    while dist(hi) >= eps:
        hi *= 2
        if hi > t_max:
            raise ConvergenceError(
                f"no t <= {t_max} reached eps={eps}", last_length=hi // 2
            )
    lo = hi // 2  # dist(lo) >= eps, dist(hi) < eps
    # Binary search the threshold; valid because dist is non-increasing
    # (Lemma 1).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if dist(mid) < eps:
            hi = mid
        else:
            lo = mid
    return hi


def graph_mixing_time(
    g: Graph,
    eps: float,
    *,
    lazy: bool = False,
    sources=None,
    method: str = "auto",
    t_max: int | None = None,
    engine: str = "batch",
) -> int:
    """``τ_mix(ε) = max_v τ_v^mix(ε)``, optionally over a subset of sources.

    For vertex-transitive families a single source suffices; the experiment
    harness passes an explicit sample elsewhere.

    By default all sources are solved together on the batched multi-source
    engine (:func:`repro.engine.batched_mixing_times`): one block trajectory
    (iterative) or one shared eigendecomposition with lockstep doubling +
    binary search (spectral), with per-source outputs identical to the loop.
    ``engine="loop"`` forces the original per-source loop (the reference the
    batch path is validated against).
    """
    if engine not in ("batch", "loop"):
        raise ValueError(f"unknown engine {engine!r}")
    _check_walk_defined(g, lazy)
    if sources is None:
        sources = range(g.n)
    if engine == "batch":
        from repro.engine import batched_mixing_times

        return max(
            batched_mixing_times(
                g, eps, sources=sources, lazy=lazy, method=method, t_max=t_max
            )
        )
    prop = (
        SpectralPropagator(g, lazy=lazy)
        if (method in ("auto", "spectral") and g.n <= 3000)
        else None
    )
    eff_method = "spectral" if prop is not None else "iterative"
    if method != "auto":
        eff_method = method
    return max(
        mixing_time(
            g, int(s), eps, lazy=lazy, method=eff_method, t_max=t_max,
            propagator=prop,
        )
        for s in sources
    )
