"""Restricted distributions over a vertex subset (paper Section 2.2).

For a subset ``S``:

* ``π_S(v) = d(v)/µ(S)`` on ``S``, 0 outside — the stationary distribution
  restricted to ``S`` (it *is* a probability distribution on ``S``).
* ``p_t↾S`` — the walk distribution with entries outside ``S`` zeroed (not
  renormalized; its sum can be < 1).
* ``τ_s^S(β,ε) = min{t : ‖p_t↾S − π_S‖₁ < ε}`` — the set mixing time, which
  may not exist (the paper then takes it to be ∞): the deviation is **not**
  monotone in ``t`` for proper subsets, unlike Lemma 1's global statement.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.base import Graph
from repro.walks.distribution import distribution_trajectory

__all__ = [
    "restrict",
    "restricted_stationary",
    "set_l1_deviation",
    "set_mixing_time",
]


def _as_index(nodes, n: int) -> np.ndarray:
    idx = np.unique(np.asarray(nodes, dtype=np.int64))
    if idx.size == 0:
        raise ValueError("subset must be non-empty")
    if idx[0] < 0 or idx[-1] >= n:
        raise ValueError("node label out of range")
    return idx


def restrict(p: np.ndarray, nodes, n: int | None = None) -> np.ndarray:
    """``p↾S``: copy of ``p`` with entries outside ``nodes`` zeroed."""
    p = np.asarray(p, dtype=np.float64)
    idx = _as_index(nodes, p.size)
    out = np.zeros_like(p)
    out[idx] = p[idx]
    return out


def restricted_stationary(g: Graph, nodes) -> np.ndarray:
    """``π_S`` as a length-``n`` vector: ``d(v)/µ(S)`` on ``S``, 0 outside."""
    idx = _as_index(nodes, g.n)
    out = np.zeros(g.n, dtype=np.float64)
    vol = float(g.degrees[idx].sum())
    out[idx] = g.degrees[idx] / vol
    return out


def set_l1_deviation(g: Graph, p: np.ndarray, nodes) -> float:
    """``‖p↾S − π_S‖₁`` — the quantity Definition 2 thresholds at ε.

    Only entries inside ``S`` contribute (both vectors vanish outside).
    """
    idx = _as_index(nodes, g.n)
    p = np.asarray(p, dtype=np.float64)
    vol = float(g.degrees[idx].sum())
    target = g.degrees[idx] / vol
    return float(np.abs(p[idx] - target).sum())


def set_mixing_time(
    g: Graph,
    source: int,
    nodes,
    eps: float,
    *,
    lazy: bool = False,
    t_max: int | None = None,
) -> float:
    """``τ_s^S(ε)``: first ``t`` with ``‖p_t↾S − π_S‖₁ < ε``.

    Returns ``math.inf`` when no such ``t ≤ t_max`` exists (Definition 2
    allows the walk to never mix in a given set).  Because the deviation is
    not monotone in ``t``, every step up to ``t_max`` is examined.

    ``t_max`` defaults to ``8·n³`` — a safe multiple of the worst-case
    mixing time, after which larger ``t`` cannot help on these scales.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    idx = _as_index(nodes, g.n)
    if source not in set(idx.tolist()):
        # Definition 2 wants s ∈ S; allow it but flag clearly.
        raise ValueError("source must belong to the subset S")
    if t_max is None:
        from repro.constants import MAX_WALK_LENGTH_FACTOR

        t_max = MAX_WALK_LENGTH_FACTOR * g.n**3
    vol = float(g.degrees[idx].sum())
    target = g.degrees[idx] / vol
    for t, p in distribution_trajectory(g, source, lazy=lazy, t_max=t_max):
        if float(np.abs(p[idx] - target).sum()) < eps:
            return t
    return math.inf
