"""Update-schedule generators for dynamic-network experiments.

Each generator simulates its own scratch :class:`~repro.dynamic.graph.DynamicGraph`
copy while emitting events, so every returned
:class:`~repro.dynamic.graph.GraphUpdate` is *valid in sequence* (no
double-adds, no removals of absent edges) and — by default — keeps every
intermediate snapshot connected, which is what the walk-based trackers
require.  All randomness flows through
:func:`repro.utils.seeding.as_rng`, so a fixed seed reproduces the trace.

The four workloads mirror the dynamic-network literature:

* :func:`edge_markovian_churn` — the edge-Markovian model: random pairs
  flip between present and absent (birth with probability ``p_add``).
* :func:`random_rewiring` — degree-preserving-at-``u`` rewires
  ``(u,v) → (u,w)``, the canonical "evolving expander" update.
* :func:`barbell_bridge_schedule` — the paper's Figure-1 graph under
  structural surgery: shortcut bridges between cliques appear, hold while
  intra-clique churn runs, then vanish.
* :func:`node_churn` — nodes join (attaching uniformly) and leave
  (swap-with-last relabelling, see
  :meth:`~repro.dynamic.graph.DynamicGraph.remove_node`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.base import Graph
from repro.utils.seeding import as_rng
from repro.dynamic.graph import DynamicGraph, GraphUpdate

__all__ = [
    "edge_markovian_churn",
    "random_rewiring",
    "barbell_bridge_schedule",
    "node_churn",
]

#: Resampling budget per event before a generator gives up.
_MAX_TRIES = 400


def _connected_without(
    dyn: DynamicGraph, u: int, v: int, *, also_without: tuple | None = None
) -> bool:
    """Would the graph stay connected after deleting edge ``(u, v)``?
    BFS from ``u`` toward ``v`` on the adjacency sets, skipping the edge
    (and optionally a second edge ``also_without`` — used to guarantee a
    held shortcut's later removal stays safe)."""
    banned = {(u, v), (v, u)}
    if also_without is not None:
        a, b = also_without
        banned |= {(a, b), (b, a)}
    seen = {u}
    stack = [u]
    while stack:
        x = stack.pop()
        for y in dyn._adj[x]:
            if (x, y) in banned:
                continue
            if y == v:
                return True
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return False


def _connected_without_node(dyn: DynamicGraph, u: int) -> bool:
    """Would the graph stay connected (and non-empty) after removing ``u``?"""
    if dyn.n <= 2:
        return False
    start = 0 if u != 0 else 1
    seen = {start}
    stack = [start]
    while stack:
        x = stack.pop()
        for y in dyn._adj[x]:
            if y != u and y not in seen:
                seen.add(y)
                stack.append(y)
    return len(seen) == dyn.n - 1


def _give_up(name: str) -> GraphError:
    return GraphError(
        f"{name}: could not draw a valid update in {_MAX_TRIES} tries "
        "(graph too constrained for this schedule)"
    )


def edge_markovian_churn(
    base: Graph,
    events: int,
    *,
    p_add: float = 0.5,
    seed=None,
    keep_connected: bool = True,
) -> list[GraphUpdate]:
    """Edge-Markovian churn: each event flips a random node pair — an absent
    pair is born (chosen with probability ``p_add``), a present edge dies.

    Removals that would disconnect the graph are resampled when
    ``keep_connected`` (the default, since walk trackers need connected
    snapshots); births are forced when the graph runs out of removable
    edges, and deaths when it is complete.
    """
    if events < 0:
        raise ValueError("events must be >= 0")
    if not 0 <= p_add <= 1:
        raise ValueError("p_add must be in [0, 1]")
    rng = as_rng(seed)
    dyn = DynamicGraph(base)
    updates: list[GraphUpdate] = []
    for _ in range(events):
        for _ in range(_MAX_TRIES):
            n = dyn.n
            complete = dyn.m == n * (n - 1) // 2
            add = (rng.random() < p_add or dyn.m == 0) and not complete
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u == v:
                continue
            if add and not dyn.has_edge(u, v):
                dyn.add_edge(u, v)
                updates.append(GraphUpdate("add", u=u, v=v))
                break
            if not add and dyn.has_edge(u, v):
                if keep_connected and not _connected_without(dyn, u, v):
                    continue
                dyn.remove_edge(u, v)
                updates.append(GraphUpdate("remove", u=u, v=v))
                break
        else:
            raise _give_up("edge_markovian_churn")
    return updates


def random_rewiring(
    base: Graph,
    events: int,
    *,
    seed=None,
    keep_connected: bool = True,
) -> list[GraphUpdate]:
    """Random rewiring: each event picks a random oriented edge ``(u, v)``
    and a random non-neighbor ``w`` of ``u`` and rewires ``(u,v) → (u,w)``.
    The total edge count is invariant and ``u``'s degree is preserved."""
    if events < 0:
        raise ValueError("events must be >= 0")
    rng = as_rng(seed)
    dyn = DynamicGraph(base)
    if dyn.m == 0:
        raise GraphError("random_rewiring needs at least one edge")
    updates: list[GraphUpdate] = []
    for _ in range(events):
        for _ in range(_MAX_TRIES):
            n = dyn.n
            u = int(rng.integers(n))
            if not dyn._adj[u]:
                continue
            nbrs = sorted(dyn._adj[u])
            v = int(nbrs[rng.integers(len(nbrs))])
            w = int(rng.integers(n))
            if w == u or w == v or dyn.has_edge(u, w):
                continue
            # If the graph stays connected without (u, v), the rewire —
            # which only adds (u, w) on top — cannot disconnect it.
            if keep_connected and not _connected_without(dyn, u, v):
                continue
            dyn.rewire(u, v, w)
            updates.append(GraphUpdate("rewire", u=u, v=v, w=w))
            break
        else:
            raise _give_up("random_rewiring")
    return updates


def barbell_bridge_schedule(
    beta: int,
    clique_size: int,
    *,
    cycles: int = 3,
    hold: int = 2,
    seed=None,
) -> tuple[Graph, list[GraphUpdate]]:
    """Bridge surgery on the paper's Figure-1 β-barbell.

    Returns ``(base, updates)`` where ``base`` is
    :func:`~repro.graphs.generators.beta_barbell` and each cycle emits
    ``2 + hold`` events: **insert** a shortcut bridge between two random
    distinct cliques, run ``hold`` churn rewires while it is up (a random
    clique edge is redirected to a random node elsewhere — within a
    complete clique there is no absent pair to rewire onto), then
    **remove** the shortcut.  The shortcut collapses the global mixing
    bottleneck while it lives; local mixing stays ``O(1)`` throughout —
    the dynamic version of the paper's §2.3(d) contrast.
    """
    from repro.graphs.generators import beta_barbell

    if beta < 2:
        raise GraphError("bridge schedule needs beta >= 2")
    if cycles < 0 or hold < 0:
        raise ValueError("cycles and hold must be >= 0")
    rng = as_rng(seed)
    base = beta_barbell(beta, clique_size)
    dyn = DynamicGraph(base)
    k = clique_size
    updates: list[GraphUpdate] = []
    for _ in range(cycles):
        for _ in range(_MAX_TRIES):
            bi, bj = rng.choice(beta, size=2, replace=False)
            u = int(bi) * k + int(rng.integers(k))
            v = int(bj) * k + int(rng.integers(k))
            if not dyn.has_edge(u, v):
                break
        else:
            raise _give_up("barbell_bridge_schedule")
        dyn.add_edge(u, v)
        updates.append(GraphUpdate("add", u=u, v=v))
        for _ in range(hold):
            for _ in range(_MAX_TRIES):
                b = int(rng.integers(beta))
                x = b * k + int(rng.integers(k))
                y = b * k + int(rng.integers(k))
                w = int(rng.integers(dyn.n))
                if x == y or w in (x, y):
                    continue
                if {x, y} == {u, v}:
                    continue  # keep the live shortcut removable
                if not dyn.has_edge(x, y) or dyn.has_edge(x, w):
                    continue
                # Connectivity must survive without the live shortcut too,
                # or the cycle-closing removal of (u, v) could disconnect.
                if not _connected_without(dyn, x, y, also_without=(u, v)):
                    continue
                dyn.rewire(x, y, w)
                updates.append(GraphUpdate("rewire", u=x, v=y, w=w))
                break
            else:
                raise _give_up("barbell_bridge_schedule")
        dyn.remove_edge(u, v)
        updates.append(GraphUpdate("remove", u=u, v=v))
    return base, updates


def node_churn(
    base: Graph,
    events: int,
    *,
    attach: int = 2,
    seed=None,
    n_min: int | None = None,
    p_join: float = 0.5,
) -> list[GraphUpdate]:
    """Node join/leave churn.

    A join attaches a fresh node to ``attach`` distinct random nodes (so the
    newcomer is immediately connected); a leave removes a random node whose
    departure keeps the graph connected (resampled otherwise, and skipped in
    favor of a join below ``n_min`` nodes, default: the base size minus
    ``events``, floored at ``attach + 1``).
    """
    if events < 0:
        raise ValueError("events must be >= 0")
    if attach < 1:
        raise ValueError("attach must be >= 1")
    rng = as_rng(seed)
    dyn = DynamicGraph(base)
    if n_min is None:
        n_min = max(attach + 1, base.n - events)
    updates: list[GraphUpdate] = []
    for _ in range(events):
        join = rng.random() < p_join or dyn.n <= n_min
        if join:
            nbrs = rng.choice(dyn.n, size=min(attach, dyn.n), replace=False)
            nbrs = tuple(int(x) for x in np.sort(nbrs))
            dyn.add_node(nbrs)
            updates.append(GraphUpdate("join", neighbors=nbrs))
            continue
        for _ in range(_MAX_TRIES):
            u = int(rng.integers(dyn.n))
            if _connected_without_node(dyn, u):
                dyn.remove_node(u)
                updates.append(GraphUpdate("leave", u=u))
                break
        else:
            raise _give_up("node_churn")
    return updates
