"""Incremental tracking of the local-mixing τ-spectrum over a dynamic graph.

:class:`MixingTracker` maintains, across a stream of topology snapshots, the
full per-source vector ``(τ_s(β, ε))_{s ∈ V}`` — and its results are
**identical** (same times, set sizes, bitwise-equal deviations, same
bookkeeping counters) to running
:func:`~repro.engine.batch.batched_local_mixing_times` from scratch on every
snapshot.  Three exact accelerations make that affordable:

1. **Structural memoization** — snapshots hash by their CSR arrays, so a
   topology the tracker has already solved (an add/remove round trip, an
   oscillating bridge) is answered from the memo without touching the walk
   engine at all.

2. **Locality pruning** — the paper's whole point is that local mixing is a
   *local* quantity.  ``p_t(x)`` sums, over length-``t`` walks from ``s``,
   products of ``1/d(w_i)`` at the walk's first ``t`` positions — nodes
   within distance ``t-1`` of ``s`` — over edges the walk traverses; so if
   every edited node sits at distance ``≥ τ_s`` from ``s`` in **both** the
   old and the new snapshot, the trajectory prefix ``p_0 … p_{τ_s}`` is
   bitwise unchanged (changed operator entries only ever multiply exact
   zeros, and exact-zero terms never perturb a CSR accumulation), and the
   previous result for ``s`` — every ``(t, R)`` decision the from-scratch
   scan would make — is provably still correct.  Prior τ values thus bound
   each source's replay radius; only sources inside it are re-solved.  (A
   binary search warm-started at the prior τ would *not* be sound: the
   restricted deviation is non-monotone in ``t`` — the paper's §3 remark —
   so the first firing time must be re-scanned, not bisected.)

3. **Fused re-scan prefilter** — the sources that do need re-solving are
   handed to :func:`~repro.engine.batch.batched_local_mixing_times`, whose
   ``_solve_chunk`` screens every candidate set size × every live column
   with one search-free
   :meth:`~repro.engine.oracle.BatchedUniformDeviationOracle.deviation_lower_bounds`
   call per step (``O(1)`` per pair) and decides every flagged
   ``(t, R, source)`` with the exact single-source arithmetic — so
   over-flagging costs a verification and under-flagging is impossible.
   (The kernel originated here and moved into the engine, where every
   batched call now benefits; the tracker simply delegates.)

The tracker covers the engine's full knob space, including
``target="degree"`` (the irregular-graph degree-proportional target) and
``require_source=True``.  One target-specific soundness guard applies: the
degree heuristic ranks *every* node by ``|p(v) − d(v)/µ|`` against the
global mean degree, so any edit that changes the degree vector anywhere
can flip its selections regardless of distance — locality pruning is
therefore applied under ``target="degree"`` only when the edit preserved
the degree vector exactly (e.g. degree-preserving rewires); otherwise the
snapshot is re-solved in full (still batched, memoized and prefiltered).
Under the uniform target, decisions depend only on the source's own
trajectory and pruning applies unconditionally; ``require_source`` does
not change the pruning argument for either target.

Whenever an update breaks the assumptions (node join/leave changed ``n``,
no prior snapshot, ``method="from_scratch"``), the tracker falls back to a
full exact recomputation — so the identity guarantee holds unconditionally.

With a :class:`~repro.parallel.ShardExecutor` attached (``executor=`` or
``n_workers=``), the post-event dirty-source set is partitioned into
contiguous shards and re-solved on the worker pool
(:func:`~repro.parallel.parallel_local_mixing_times`); since every sharded
per-source result is identical to the serial engine's, parallelism changes
wall-clock only, never the trace.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.graphs.base import Graph
from repro.graphs.properties import multi_source_distances
from repro.engine.batch import batched_local_mixing_times
from repro.obs import CounterDict, MetricsRegistry
from repro.dynamic.graph import DynamicGraph, GraphUpdate

__all__ = [
    "MixingTracker",
    "TrackedSnapshot",
    "TrackingTrace",
    "edit_distance_bounds",
    "track_local_mixing",
]

#: Sentinel distance for nodes no edit can reach.
_FAR = np.iinfo(np.int64).max


@dataclass(frozen=True)
class TrackedSnapshot:
    """One observed snapshot: the graph, its full τ-spectrum, and how much
    work the tracker actually did to produce it."""

    index: int
    graph: Graph
    results: tuple
    update: GraphUpdate | None = None
    memo_hit: bool = False
    reused_sources: int = 0
    solved_sources: int = 0
    seconds: float = 0.0

    @property
    def tau(self) -> int:
        """``τ(β,ε) = max_s τ_s(β,ε)`` of this snapshot."""
        return max(r.time for r in self.results)

    @property
    def times(self) -> list[int]:
        """Per-source local mixing times, in node order."""
        return [r.time for r in self.results]


@dataclass
class TrackingTrace:
    """The output of :func:`track_local_mixing`: every observed snapshot in
    order, plus the tracker (for its counters)."""

    snapshots: list[TrackedSnapshot] = field(default_factory=list)
    tracker: "MixingTracker | None" = None

    @property
    def tau_trace(self) -> list[int]:
        """``τ(β,ε)`` per snapshot — the headline time series."""
        return [s.tau for s in self.snapshots]

    @property
    def stats(self) -> dict:
        """A copy of the tracker's work counters (snapshots, memo hits,
        reused/solved sources, full/partial solves)."""
        return dict(self.tracker.stats) if self.tracker is not None else {}


def _changed_nodes(a: Graph, b: Graph) -> np.ndarray:
    """Nodes whose neighbor list differs between two same-``n`` graphs —
    the endpoints of the edge-set symmetric difference, computed on packed
    ``u·n + v`` keys (CSR order makes them sorted and unique)."""
    n = a.n
    keys_a = np.repeat(np.arange(n), np.diff(a.indptr)) * n + a.indices
    keys_b = np.repeat(np.arange(n), np.diff(b.indptr)) * n + b.indices
    diff = np.setxor1d(keys_a, keys_b, assume_unique=True)
    return np.unique(diff // n)


def edit_distance_bounds(prev_g: Graph, g: Graph) -> np.ndarray:
    """Per node ``s``, the distance from ``s`` to the nearest *edited* node,
    minimized over both snapshots (``_FAR``-like ``iinfo.max`` when no edit
    is reachable from ``s`` in either graph).

    This is the locality-pruning radius shared by the incremental
    :class:`MixingTracker` and the serving layer's
    :class:`~repro.service.GraphRegistry` cache carry-forward: a uniform-
    target result for source ``s`` with local mixing time ``τ_s`` computed
    on ``prev_g`` is provably still exact on ``g`` whenever
    ``τ_s <= bounds[s]`` — every edit then sits at distance ``≥ τ_s`` from
    ``s`` in both snapshots, so the trajectory prefix ``p_0 … p_{τ_s}``
    (and with it every ``(t, R)`` decision up to the stopping point) is
    bitwise unchanged (see the module docstring for the walk argument).
    Under ``target="degree"`` the caller must additionally check that the
    degree vector is unchanged before relying on this bound.

    Raises :class:`ValueError` when the two graphs differ in node count —
    the relabelling a join/leave implies breaks the per-node correspondence
    this bound needs.
    """
    if prev_g.n != g.n:
        raise ValueError(
            f"edit_distance_bounds needs same-n snapshots, got "
            f"{prev_g.n} vs {g.n}"
        )
    touched = _changed_nodes(prev_g, g)
    if touched.size == 0:
        return np.full(g.n, _FAR, dtype=np.int64)
    d_old = multi_source_distances(prev_g, touched)
    d_new = multi_source_distances(g, touched)
    return np.minimum(
        np.where(d_old < 0, _FAR, d_old), np.where(d_new < 0, _FAR, d_new)
    )


class MixingTracker:
    """Maintain the per-source τ-spectrum of an evolving graph.

    Parameters mirror :func:`~repro.engine.batch.batched_local_mixing_times`
    (``beta``, ``eps``, ``sizes``, ``threshold_factor``, ``grid_factor``,
    ``t_schedule``, ``t_max``, ``lazy``, ``require_source``, ``target``) —
    the tracker covers the engine's full knob space, and its per-snapshot
    results equal a from-scratch engine call for every combination.

    target:
        ``"uniform"`` (default) — Definition 2's uniform-target deviation.
        ``"degree"`` — the degree-proportional target for irregular
        (churned) graphs.  Locality pruning under ``"degree"`` is applied
        only across degree-preserving edits (see the module docstring);
        other edits trigger a full — still batched and memoized — re-solve.
    require_source:
        Pin each source inside its own witness set (Definition 2's
        ``s ∈ S``); handled in-block by the engine.
    method:
        ``"incremental"`` (default) applies the memo + locality pruning +
        fused re-scan pipeline.  ``"from_scratch"`` recomputes every
        snapshot with :func:`~repro.engine.batch.batched_local_mixing_times`
        — the reference the incremental path is tested (and benchmarked)
        against.
    memo_size:
        How many distinct solved structures to remember.
    backend:
        Optional compute-backend *name* (see :mod:`repro.engine.backends`)
        every tracker solve — full, partial and sharded — runs under.
        Validated at construction; results are bitwise identical for every
        registered backend, so the incremental-equals-from-scratch
        guarantee is backend-independent.
    executor:
        Optional :class:`~repro.parallel.ShardExecutor`: after each event
        the dirty-source set (the sources locality pruning could not keep)
        is partitioned into contiguous shards and re-solved on the worker
        pool.  Sharding changes nothing about the results — every
        per-source result is identical to the serial engine call (and so
        to from-scratch recomputation), it only spreads the replay across
        cores.  The executor is *not* owned: the caller closes it.
    n_workers:
        Convenience alternative to ``executor``: the tracker lazily creates
        (and owns) a :class:`~repro.parallel.ShardExecutor` of this size;
        call :meth:`close` to tear it down.
    """

    def __init__(
        self,
        beta: float,
        eps: float = DEFAULT_EPS,
        *,
        sizes: str | list[int] = "all",
        threshold_factor: float = 1.0,
        grid_factor: float | None = None,
        t_schedule: str = "all",
        t_max: int | None = None,
        lazy: bool = False,
        require_source: bool = False,
        target: str = "uniform",
        method: str = "incremental",
        memo_size: int = 32,
        backend: str | None = None,
        executor=None,
        n_workers: int | None = None,
    ):
        if not 0 < eps < 1:
            raise ValueError("eps must be in (0,1)")
        if beta < 1:
            raise ValueError("beta must be >= 1 (sets of size at least n/beta)")
        if target not in ("uniform", "degree"):
            raise ValueError(f"unknown target {target!r}")
        if method not in ("incremental", "from_scratch"):
            raise ValueError(f"unknown method {method!r}")
        if memo_size < 0:
            raise ValueError("memo_size must be >= 0")
        if backend is not None:
            # Fail fast at construction (same front-door discipline as the
            # other knobs); keep the *name* so the knob stays picklable for
            # the sharded re-solve path.
            from repro.engine import get_backend

            if not isinstance(backend, str):
                raise TypeError(
                    "backend must be a registered backend name, "
                    f"got {backend!r}"
                )
            backend = get_backend(backend).name
        self.beta = beta
        self.eps = eps
        self.sizes = sizes
        self.threshold_factor = threshold_factor
        self.grid_factor = grid_factor
        self.t_schedule = t_schedule
        self.t_max = t_max
        self.lazy = lazy
        self.require_source = require_source
        self.target = target
        self.method = method
        self.memo_size = memo_size
        self.backend = backend
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if executor is not None and n_workers is not None:
            # An executor fixes both the pool and the shard count; a second
            # knob would be silently ignored — reject instead.
            raise ValueError("pass either executor or n_workers, not both")
        self._executor = executor
        self._owns_executor = False
        self._n_workers = n_workers
        self._memo: OrderedDict[Graph, tuple] = OrderedDict()
        self._prev_graph: Graph | None = None
        self._prev_results: tuple | None = None
        self._index = 0
        #: Work counters, dict-shaped for backwards compatibility but
        #: stored on :attr:`metrics` as ``repro_tracker_*_total`` counters
        #: (one private registry per tracker, composable into a service
        #: exposition via ``MetricsRegistry.include``).
        self.metrics = MetricsRegistry()
        self.stats: CounterDict = CounterDict(
            self.metrics,
            "repro_tracker_",
            keys=(
                "snapshots",
                "memo_hits",
                "reused_sources",
                "solved_sources",
                "full_solves",
                "partial_solves",
            ),
            help_prefix="Incremental-tracker work counter: ",
        )

    # ------------------------------------------------------------------ #
    # Observation pipeline
    # ------------------------------------------------------------------ #

    def observe(
        self, g: Graph, *, update: GraphUpdate | None = None
    ) -> TrackedSnapshot:
        """Ingest one snapshot and return its (exact) τ-spectrum."""
        t0 = time.perf_counter()
        memo_hit = False
        reused = 0
        solved = 0
        # The from-scratch reference must actually recompute every snapshot
        # (it is what the incremental path is benchmarked against), so only
        # the incremental method consults the structural memo.
        cached = self._memo.get(g) if self.method == "incremental" else None
        if cached is not None:
            self._memo.move_to_end(g)
            results = cached
            memo_hit = True
            self.stats["memo_hits"] += 1
        elif (
            self.method == "from_scratch"
            or self._prev_graph is None
            or self._prev_graph.n != g.n
        ):
            results = tuple(self._solve_full(g))
            solved = g.n
            self.stats["full_solves"] += 1
        else:
            results, reused, solved = self._solve_incremental(g)
        self._remember(g, results)
        self.stats["snapshots"] += 1
        self.stats["reused_sources"] += reused
        self.stats["solved_sources"] += solved
        snap = TrackedSnapshot(
            index=self._index,
            graph=g,
            results=results,
            update=update,
            memo_hit=memo_hit,
            reused_sources=reused,
            solved_sources=solved,
            seconds=time.perf_counter() - t0,
        )
        self._index += 1
        return snap

    def _remember(self, g: Graph, results: tuple) -> None:
        self._prev_graph = g
        self._prev_results = results
        if self.memo_size > 0 and self.method == "incremental":
            self._memo[g] = results
            self._memo.move_to_end(g)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    def _get_executor(self):
        """The sharding executor, lazily created when only ``n_workers``
        was given (``None`` when the tracker runs serial)."""
        if self._executor is None and self._n_workers is not None:
            from repro.parallel import ShardExecutor

            self._executor = ShardExecutor(self._n_workers)
            self._owns_executor = True
        return self._executor

    def close(self) -> None:
        """Tear down an executor the tracker created for itself
        (a caller-supplied ``executor`` is left untouched)."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()
            self._executor = None
            self._owns_executor = False

    def _solve_batch(self, g: Graph, sources: list[int] | None = None):
        """One engine call with the tracker's full knob set.

        :func:`~repro.engine.batch.batched_local_mixing_times` carries the
        loop-equivalence guarantee (and, since the fused-kernel port, the
        search-free ``deviation_lower_bounds`` prefilter) for every target
        / constraint combination, so both tracker methods — and the partial
        re-solves — share this single code path.  With an executor
        configured, the source set (the post-event dirty set, for partial
        re-solves) is partitioned into contiguous shards and solved on the
        worker pool — per-source results are identical either way, so the
        equivalence-to-from-scratch guarantee is untouched."""
        knobs = dict(
            sizes=self.sizes,
            threshold_factor=self.threshold_factor,
            grid_factor=self.grid_factor,
            t_schedule=self.t_schedule,
            t_max=self.t_max,
            lazy=self.lazy,
            require_source=self.require_source,
            target=self.target,
            backend=self.backend,
        )
        ex = self._get_executor()
        k = g.n if sources is None else len(sources)
        if ex is not None and k > 1:
            from repro.parallel import parallel_local_mixing_times

            return parallel_local_mixing_times(
                g, self.beta, self.eps, sources=sources, executor=ex, **knobs
            )
        return batched_local_mixing_times(
            g, self.beta, self.eps, sources=sources, **knobs
        )

    def _solve_full(self, g: Graph):
        return self._solve_batch(g)

    def _solve_incremental(self, g: Graph) -> tuple[tuple, int, int]:
        prev_g = self._prev_graph
        prev_res = self._prev_results
        if prev_g == g:
            # Structurally identical but evicted from the memo.
            return prev_res, g.n, 0
        if self.target == "degree" and not np.array_equal(
            prev_g.degrees, g.degrees
        ):
            # The degree heuristic ranks every node against the global mean
            # degree, so a degree change anywhere can flip selections for
            # any source — distance-based pruning is unsound here (module
            # docstring); re-solve the snapshot in full.
            self.stats["full_solves"] += 1
            return tuple(self._solve_full(g)), 0, g.n
        dmin = edit_distance_bounds(prev_g, g)
        # Source s is provably unaffected iff every edited node lies at
        # distance >= τ_s in both snapshots: p_t only involves degrees and
        # neighbor lists of nodes walks visit in their first t-1 steps —
        # nodes within distance t-1 — so edits at distance >= t leave
        # p_0 … p_t bitwise alone (see module docstring).
        prev_times = np.asarray([r.time for r in prev_res], dtype=np.int64)
        keep = prev_times <= dmin
        redo = np.flatnonzero(~keep)
        if redo.size == 0:
            # Nothing to re-solve — still run the driver's walk
            # preconditions so an invalid snapshot raises exactly as a
            # from-scratch call would.
            from repro.walks.local_mixing import _resolve_walk_bounds

            _resolve_walk_bounds(g, self.lazy, self.t_max)
            fresh = []
        else:
            fresh = self._solve_batch(g, [int(s) for s in redo])
        merged = list(prev_res)
        for pos, res in zip(redo, fresh):
            merged[int(pos)] = res
        self.stats["partial_solves"] += 1
        return tuple(merged), int(keep.sum()), int(redo.size)


def track_local_mixing(
    dyn: DynamicGraph | Graph,
    updates: Sequence[GraphUpdate],
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    include_initial: bool = True,
    **tracker_kwargs,
) -> TrackingTrace:
    """Drive a :class:`MixingTracker` over an update schedule.

    Applies each :class:`~repro.dynamic.graph.GraphUpdate` to ``dyn`` (a
    :class:`Graph` is wrapped into a fresh :class:`DynamicGraph` first),
    observes every intermediate snapshot, and returns the full
    :class:`TrackingTrace` — the τ time series plus work counters.  Extra
    keyword arguments go to the :class:`MixingTracker` constructor.
    """
    if isinstance(dyn, Graph):
        dyn = DynamicGraph(dyn)
    tracker = MixingTracker(beta, eps, **tracker_kwargs)
    trace = TrackingTrace(tracker=tracker)
    try:
        if include_initial:
            trace.snapshots.append(tracker.observe(dyn.snapshot()))
        for upd in updates:
            dyn.apply(upd)
            trace.snapshots.append(tracker.observe(dyn.snapshot(), update=upd))
    finally:
        # Only tears down a pool the tracker spawned for itself
        # (n_workers=...); a caller-supplied executor stays open.
        tracker.close()
    return trace
