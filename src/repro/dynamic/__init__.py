"""Dynamic networks: evolving graphs with incremental local-mixing tracking.

The subsystem layers three pieces on top of the immutable CSR
:class:`~repro.graphs.base.Graph` and the batched walk engine
(:mod:`repro.engine`):

* :class:`~repro.dynamic.graph.DynamicGraph` — a mutable edge-set overlay
  with ``add_edge`` / ``remove_edge`` / ``rewire`` / node join–leave and a
  structurally memoized ``snapshot()`` (unchanged or revisited topologies
  return the same :class:`Graph` object, so downstream per-graph caches —
  including the engine's shared eigenbasis cache — keep hitting).
* :mod:`~repro.dynamic.schedules` — reproducible update-schedule
  generators: edge-Markovian churn, random rewiring, barbell bridge
  insertion/removal, node join/leave.
* :class:`~repro.dynamic.tracker.MixingTracker` /
  :func:`~repro.dynamic.tracker.track_local_mixing` — maintain the full
  per-source τ-spectrum across updates, provably identical to a
  from-scratch :func:`~repro.engine.batch.batched_local_mixing_times` on
  every snapshot, via structural memoization, locality pruning (prior τ
  values bound each source's replay radius) and the engine's fused
  search-free re-scan prefilter.  The tracker covers the engine's full
  knob space — ``target="degree"`` for irregular/churned graphs and
  ``require_source=True`` included (under the degree target, locality
  pruning applies only across degree-preserving edits; see
  :mod:`repro.dynamic.tracker`).
"""

from repro.dynamic.graph import DynamicGraph, GraphUpdate
from repro.dynamic.schedules import (
    barbell_bridge_schedule,
    edge_markovian_churn,
    node_churn,
    random_rewiring,
)
from repro.dynamic.tracker import (
    MixingTracker,
    TrackedSnapshot,
    TrackingTrace,
    edit_distance_bounds,
    track_local_mixing,
)

__all__ = [
    "DynamicGraph",
    "GraphUpdate",
    "edge_markovian_churn",
    "random_rewiring",
    "barbell_bridge_schedule",
    "node_churn",
    "MixingTracker",
    "TrackedSnapshot",
    "TrackingTrace",
    "edit_distance_bounds",
    "track_local_mixing",
]
