"""Mutable edge-set overlay over the immutable CSR :class:`Graph`.

The library's :class:`~repro.graphs.base.Graph` is deliberately immutable —
every algorithm, cache and hash relies on that.  Dynamic-network workloads
("Fast Distributed Computation in Dynamic Networks via Random Walks", Das
Sarma–Molla–Pandurangan) instead evolve a topology round by round, so the
:class:`DynamicGraph` keeps the live edge set in adjacency-set form, applies
``O(1)`` edge updates, and materializes an immutable CSR snapshot on demand.

Snapshots are *structurally memoized*: :meth:`DynamicGraph.snapshot` returns
the **same** :class:`Graph` object whenever the edge set matches a recently
materialized structure (graphs hash by their CSR arrays, so an
add-then-remove round trip lands back on the earlier instance).  Downstream
per-graph caches — ``Graph``'s own ``cached_property`` bits and the engine's
:func:`~repro.engine.propagator.shared_spectral_propagator` eigenbasis
cache — therefore hit on unchanged or revisited structures and are naturally
invalidated (by keying to a new object) on changed ones.

Node churn is supported via :meth:`add_node` / :meth:`remove_node`.  Nodes
are always the contiguous integers ``0..n-1`` (a :class:`Graph` invariant),
so removal relabels the last node into the freed slot and reports the move —
the *swap-with-last* convention schedule generators and trackers follow.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import GraphError
from repro.graphs.base import Graph

__all__ = ["DynamicGraph", "GraphUpdate"]


@dataclass(frozen=True)
class GraphUpdate:
    """One topology event, applied via :meth:`DynamicGraph.apply`.

    Kinds
    -----
    ``"add"``
        Insert edge ``(u, v)``.
    ``"remove"``
        Delete edge ``(u, v)``.
    ``"rewire"``
        Replace edge ``(u, v)`` by ``(u, w)`` atomically.
    ``"join"``
        Add a new node (label ``n``) attached to ``neighbors``.
    ``"leave"``
        Remove node ``u`` (the last node is relabelled into its slot).
    """

    kind: str
    u: int | None = None
    v: int | None = None
    w: int | None = None
    neighbors: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.kind not in ("add", "remove", "rewire", "join", "leave"):
            raise ValueError(f"unknown update kind {self.kind!r}")


#: How many distinct materialized structures a DynamicGraph remembers for
#: snapshot reuse (each entry is one immutable Graph).
_STRUCTURE_MEMO_SIZE = 16


class DynamicGraph:
    """A mutable, undirected, simple graph with cheap immutable snapshots.

    Parameters
    ----------
    base:
        Either a :class:`Graph` to copy the initial topology from, or an
        integer node count for an initially empty graph.
    name:
        Used in snapshot names (``"<name>@v<version>"``).
    """

    def __init__(self, base: Graph | int, *, name: str | None = None):
        if isinstance(base, Graph):
            self._n = base.n
            self._adj: list[set[int]] = [
                set(base.neighbors(u).tolist()) for u in range(base.n)
            ]
            self._m = base.m
            self.name = name or f"dyn({base.name})"
        else:
            n = int(base)
            if n <= 0:
                raise GraphError(f"graph must have at least one node, got n={n}")
            self._n = n
            self._adj = [set() for _ in range(n)]
            self._m = 0
            self.name = name or f"dyn(n={n})"
        self._version = 0
        self._snapshot: Graph | None = None
        self._snapshot_version = -1
        self._built: OrderedDict[Graph, Graph] = OrderedDict()
        if isinstance(base, Graph):
            # Seed the structure memo so a round trip back to the base
            # topology reuses the original object (and its caches).
            self._built[base] = base
            self._snapshot = base
            self._snapshot_version = 0

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutation."""
        return self._version

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of node ``u`` (a fresh array)."""
        self._check_node(u)
        return np.fromiter(sorted(self._adj[u]), dtype=np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` iff ``{u, v}`` is currently an edge."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in sorted(self._adj[u]):
                if u < v:
                    yield (u, v)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(name={self.name!r}, n={self._n}, m={self._m}, "
            f"version={self._version})"
        )

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def _check_node(self, u) -> None:
        if not isinstance(u, (int, np.integer)) or not 0 <= u < self._n:
            raise GraphError(f"node {u!r} out of range [0, {self._n})")

    def _touch(self) -> None:
        self._version += 1

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}`` (must not exist; no self-loops)."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError("self-loops are not allowed")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) already present")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._m += 1
        self._touch()

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}`` (must exist)."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) not present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._m -= 1
        self._touch()

    def rewire(self, u: int, v: int, w: int) -> None:
        """Atomically replace edge ``{u, v}`` by ``{u, w}``.

        The classic dynamic-network primitive (degree of ``u`` is
        preserved); validation happens before either half executes, so a
        failed rewire leaves the graph untouched.
        """
        self._check_node(u)
        self._check_node(v)
        self._check_node(w)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) not present")
        if w == u:
            raise GraphError("self-loops are not allowed")
        if w == v:
            raise GraphError("rewire target equals the removed endpoint")
        if w in self._adj[u]:
            raise GraphError(f"edge ({u}, {w}) already present")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._adj[u].add(w)
        self._adj[w].add(u)
        self._touch()

    def add_node(self, neighbors=()) -> int:
        """Node join: append node ``n`` attached to ``neighbors``; returns
        the new node's label."""
        nbrs = sorted(set(int(x) for x in neighbors))
        if nbrs and (nbrs[0] < 0 or nbrs[-1] >= self._n):
            raise GraphError("join neighbor out of range")
        new = self._n
        self._adj.append(set(nbrs))
        for w in nbrs:
            self._adj[w].add(new)
        self._n += 1
        self._m += len(nbrs)
        self._touch()
        return new

    def remove_node(self, u: int) -> int | None:
        """Node leave: drop ``u`` and its incident edges.

        Labels must stay contiguous, so the last node (``n-1``) is
        relabelled into slot ``u``; returns the moved label (``n-1``) or
        ``None`` when ``u`` *was* the last node.
        """
        self._check_node(u)
        if self._n == 1:
            raise GraphError("graph must keep at least one node")
        for w in self._adj[u]:
            self._adj[w].discard(u)
        self._m -= len(self._adj[u])
        self._adj[u] = set()
        last = self._n - 1
        moved = None
        if u != last:
            for w in self._adj[last]:
                self._adj[w].discard(last)
                self._adj[w].add(u)
            self._adj[u] = self._adj[last]
            moved = last
        self._adj.pop()
        self._n -= 1
        self._touch()
        return moved

    def apply(self, update: GraphUpdate) -> None:
        """Apply one :class:`GraphUpdate` (dispatch on ``kind``)."""
        if update.kind == "add":
            self.add_edge(update.u, update.v)
        elif update.kind == "remove":
            self.remove_edge(update.u, update.v)
        elif update.kind == "rewire":
            self.rewire(update.u, update.v, update.w)
        elif update.kind == "join":
            self.add_node(update.neighbors)
        elif update.kind == "leave":
            self.remove_node(update.u)
        else:  # pragma: no cover - guarded by GraphUpdate.__post_init__
            raise ValueError(f"unknown update kind {update.kind!r}")

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Graph:
        """The current topology as an immutable :class:`Graph`.

        ``O(n + m)`` on first materialization of a structure; unchanged (or
        structurally revisited) states return the previously built object so
        per-graph caches downstream keep hitting.
        """
        if self._snapshot is not None and self._snapshot_version == self._version:
            return self._snapshot
        n = self._n
        degrees = np.fromiter(
            (len(nbrs) for nbrs in self._adj), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for u, nbrs in enumerate(self._adj):
            indices[indptr[u] : indptr[u + 1]] = sorted(nbrs)
        g = Graph.from_csr(
            indptr,
            indices,
            name=f"{self.name}@v{self._version}",
            validate=False,
        )
        cached = self._built.get(g)
        if cached is not None:
            self._built.move_to_end(g)
            g = cached
        else:
            self._built[g] = g
            while len(self._built) > _STRUCTURE_MEMO_SIZE:
                self._built.popitem(last=False)
        self._snapshot = g
        self._snapshot_version = self._version
        return g
