"""Zero-copy graph sharing across worker processes.

A :class:`SharedCSR` places a graph's two CSR arrays (``indptr`` and
``indices``, both ``int64``) in **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, written once
by the publishing process.  Workers receive only a tiny picklable
:class:`SharedCSRHandle` (segment name + array shapes) and map the segment
read-only into their own address space — :meth:`SharedCSR.attach` rebuilds
the :class:`~repro.graphs.base.Graph` with
:meth:`~repro.graphs.base.Graph.from_csr` *directly on views of the shared
buffer*, so no worker ever copies or re-validates the topology.  This is
the same shared-memory CSR design production graph systems use to fan
sampling out across cores (e.g. DGL's ``shared_memory``-backed graph
store).

Because :class:`~repro.graphs.base.Graph` hashes by its CSR bytes, the
worker-side graph is ``==`` to (and hashes with) the publisher's graph, so
every structure-keyed cache downstream — in particular the engine's shared
spectral-propagator cache — behaves identically in workers and parent.

Lifecycle contract
------------------
The **publisher** owns the segment: it must eventually call
:meth:`SharedCSR.unlink` (or use the instance as a context manager, or let
:class:`~repro.parallel.executor.ShardExecutor` manage it) to remove the
segment from the OS namespace.  **Attachers** only :meth:`close` their
mapping (see :meth:`SharedCSR.attach` for the resource-tracker rules).
Unlinking while a worker still holds a mapping is safe on POSIX
(the memory lives until the last mapping closes) and a no-op on Windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.graphs.base import Graph

__all__ = ["SharedCSR", "SharedCSRHandle"]

_DTYPE = np.dtype(np.int64)


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable pointer to a published graph.

    Attributes
    ----------
    shm_name:
        OS name of the shared-memory segment.
    n:
        Number of nodes (``indptr`` has ``n + 1`` entries).
    nnz:
        Number of directed CSR entries (``indices`` length, ``2m``).
    graph_name:
        The graph's human-readable name, forwarded so worker-side reprs and
        error messages match the parent's.
    """

    shm_name: str
    n: int
    nnz: int
    graph_name: str


class SharedCSR:
    """One graph's CSR arrays in a shared-memory segment.

    Construct via :meth:`publish` (in the owning process) or
    :meth:`attach` (in a worker); the raw constructor is internal.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n: int,
        nnz: int,
        graph_name: str,
        *,
        owner: bool,
    ):
        self._shm = shm
        self.n = int(n)
        self.nnz = int(nnz)
        self.graph_name = graph_name
        self.owner = owner
        self._graph: Graph | None = None
        self._unlinked = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def publish(cls, g: Graph) -> "SharedCSR":
        """Copy ``g``'s CSR arrays into a fresh shared segment (done once;
        every worker maps the same physical pages afterwards)."""
        n, nnz = g.n, g.indices.size
        nbytes = max((n + 1 + nnz) * _DTYPE.itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        indptr = np.ndarray(n + 1, dtype=_DTYPE, buffer=shm.buf)
        indptr[:] = g.indptr
        indices = np.ndarray(
            nnz, dtype=_DTYPE, buffer=shm.buf, offset=(n + 1) * _DTYPE.itemsize
        )
        indices[:] = g.indices
        # Drop the exported views so close() can unmap the segment later.
        del indptr, indices
        return cls(shm, n, nnz, g.name, owner=True)

    @classmethod
    def attach(cls, handle: SharedCSRHandle, *, untrack: bool = False) -> "SharedCSR":
        """Map an already-published segment (worker side, zero-copy).

        ``untrack=True`` removes the segment from this process's
        :mod:`multiprocessing` resource tracker after attaching.  Pass it
        only from a process *unrelated* to the publisher (whose private
        tracker would otherwise unlink the publisher's segment on exit,
        bpo-38119).  Pool workers must leave it ``False``: they inherit
        the publisher's tracker under every start method, so the attach
        registration dedups against the publisher's entry and the
        publisher's unlink is the single deregistration."""
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        if untrack:
            try:  # pragma: no cover - tracker internals vary across versions
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, handle.n, handle.nnz, handle.graph_name, owner=False)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def handle(self) -> SharedCSRHandle:
        """The picklable descriptor workers attach by."""
        return SharedCSRHandle(
            self._shm.name, self.n, self.nnz, self.graph_name
        )

    @property
    def graph(self) -> Graph:
        """The :class:`Graph` whose CSR arrays are *views* of the shared
        buffer (built lazily, cached so per-graph ``cached_property``
        state — degrees, connectivity — stays warm across tasks)."""
        if self._graph is None:
            indptr = np.ndarray(self.n + 1, dtype=_DTYPE, buffer=self._shm.buf)
            indices = np.ndarray(
                self.nnz,
                dtype=_DTYPE,
                buffer=self._shm.buf,
                offset=(self.n + 1) * _DTYPE.itemsize,
            )
            # The publisher validated the graph when it was first built;
            # re-validating 2m entries per worker would defeat the point.
            self._graph = Graph.from_csr(
                indptr, indices, name=self.graph_name, validate=False
            )
        return self._graph

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Unmap this process's view of the segment (keeps the segment
        itself alive for other processes)."""
        self._graph = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported numpy views
            # A live numpy view still points into the mapping; the OS
            # reclaims it with the process instead.
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS namespace (publisher only;
        idempotent).  Existing mappings stay valid until closed."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.unlink()
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"SharedCSR({self.graph_name!r}, n={self.n}, nnz={self.nnz}, "
            f"shm={self._shm.name!r}, {role})"
        )
