"""Sharded parallel execution: multi-core, shared-memory solves with the
loop-equivalence guarantee.

The paper's headline is *distributed* computation of the local mixing
time; this subsystem is the shared-memory realization of that idea on one
machine.  It multiplies the batched engine (:mod:`repro.engine`) across
cores without giving up a single bit of exactness:

* :class:`~repro.parallel.shared_csr.SharedCSR` — the graph's CSR arrays
  are placed in :mod:`multiprocessing.shared_memory` once and mapped
  zero-copy by every worker (no per-task pickling of the topology, no
  re-validation).
* :class:`~repro.parallel.shared_eigenbasis.SharedEigenbasis` — the
  companion segment for spectral solves: the parent's ``O(n³)``
  eigendecomposition is published once and every worker rebuilds the
  propagator on zero-copy views (memory order preserved, so BLAS products
  stay bitwise the parent's); no worker re-runs ``eigh``.
* :class:`~repro.parallel.executor.ShardExecutor` — a persistent process
  pool with per-worker warm state (engine spectral-cache settings
  forwarded on spawn, attached graphs and their caches kept hot across
  tasks), deterministic contiguous source sharding and ordered merges.
* Front doors :func:`~repro.parallel.api.parallel_local_mixing_times`,
  :func:`~repro.parallel.api.parallel_local_mixing_spectra`,
  :func:`~repro.parallel.api.parallel_local_mixing_profiles` — drop-in
  counterparts of the batched drivers carrying the full knob space
  (``target``, ``require_source``, ``method``, ``prefilter``,
  ``backend`` — compute-backend names validated in the parent), whose
  outputs are **identical** to the serial engine (and therefore to the
  per-source reference loop) for every knob combination and any worker
  count.  Peak dense-block memory per process is ``n × ⌈k/W⌉``.
* :func:`~repro.parallel.api.shard_map` — the generic per-item fan-out the
  Monte-Carlo estimator sweeps and family sweeps ride on.

The dynamic :class:`~repro.dynamic.MixingTracker` accepts an executor (or
``n_workers``) and re-solves its dirty-source set in parallel shards after
each event, keeping its provable equivalence to from-scratch
recomputation; :func:`~repro.walks.local_mixing.graph_local_mixing_time`
dispatches here via ``engine="parallel"``.

When sharding loses to batching: worker spawn plus one shared-memory
publication is milliseconds (``fork``) to ~a second (``spawn``), so for
small graphs or few sources the serial batched call wins — reuse one
:class:`ShardExecutor` across calls to amortize, or stay serial below a
few hundred sources.
"""

from repro.parallel.shared_csr import SharedCSR, SharedCSRHandle
from repro.parallel.shared_eigenbasis import (
    SharedEigenbasis,
    SharedEigenbasisHandle,
)
from repro.parallel.executor import (
    ShardExecutor,
    default_start_method,
    shard_bounds,
)
from repro.parallel.api import (
    parallel_local_mixing_profiles,
    parallel_local_mixing_spectra,
    parallel_local_mixing_times,
    shard_map,
)

__all__ = [
    "SharedCSR",
    "SharedCSRHandle",
    "SharedEigenbasis",
    "SharedEigenbasisHandle",
    "ShardExecutor",
    "default_start_method",
    "shard_bounds",
    "parallel_local_mixing_times",
    "parallel_local_mixing_spectra",
    "parallel_local_mixing_profiles",
    "shard_map",
]
