"""Zero-copy eigenbasis sharing across worker processes.

A :class:`SharedEigenbasis` places a
:class:`~repro.walks.distribution.SpectralPropagator`'s three arrays —
``sqrt_deg`` (``n``), ``eigvals`` (``n``) and ``eigvecs`` (``n × n``), all
float64 — in **one** :class:`multiprocessing.shared_memory.SharedMemory`
segment, written once by the publishing process.  Workers receive only a
tiny picklable :class:`SharedEigenbasisHandle` and rebuild the propagator
with :meth:`~repro.walks.distribution.SpectralPropagator.from_arrays`
*directly on views of the shared buffer*, so no worker ever pays the
``O(n³)`` eigendecomposition the parent already paid.  This is the
companion of :class:`~repro.parallel.shared_csr.SharedCSR` for spectral
solves: the CSR segment ships topology, this one ships the decomposition.

Bitwise contract
----------------
Spectral evaluations are BLAS products over the eigenbasis, and BLAS
results can differ bitwise between C- and F-contiguous operands
(``numpy.linalg.eigh`` returns an F-contiguous eigenvector matrix).  The
handle therefore records the publisher's ``eigvecs`` memory order and
:meth:`SharedEigenbasis.propagator` rebuilds the array **in that order**,
so every worker's propagator performs exactly the parent's arithmetic —
the parallel spectral path stays element-for-element identical to the
serial one regardless of which process evaluates a column.

Lifecycle contract
------------------
Same as :class:`~repro.parallel.shared_csr.SharedCSR`: the **publisher**
owns the segment and must eventually :meth:`unlink` it (or let
:class:`~repro.parallel.executor.ShardExecutor` manage it); **attachers**
only :meth:`close` their mapping.  Pool workers never untrack — they
inherit the publisher's resource tracker, so the publisher's unlink is the
single deregistration.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.graphs.base import Graph
from repro.walks.distribution import SpectralPropagator

__all__ = ["SharedEigenbasis", "SharedEigenbasisHandle"]

_DTYPE = np.dtype(np.float64)


@dataclass(frozen=True)
class SharedEigenbasisHandle:
    """Picklable pointer to a published eigendecomposition.

    Attributes
    ----------
    shm_name:
        OS name of the shared-memory segment.
    n:
        Number of nodes (``sqrt_deg`` and ``eigvals`` have ``n`` entries,
        ``eigvecs`` has ``n × n``).
    lazy:
        Whether the decomposed operator is the lazy walk ``(I + N)/2`` —
        part of the propagator-cache key workers seed.
    graph_name:
        The graph's human-readable name (worker reprs match the parent's).
    vec_order:
        Memory order of the publisher's eigenvector matrix (``"C"`` or
        ``"F"``); workers rebuild in the same order so BLAS products are
        bitwise the parent's.
    """

    shm_name: str
    n: int
    lazy: bool
    graph_name: str
    vec_order: str


class SharedEigenbasis:
    """One spectral propagator's arrays in a shared-memory segment.

    Construct via :meth:`publish` (in the owning process) or
    :meth:`attach` (in a worker); the raw constructor is internal.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n: int,
        lazy: bool,
        graph_name: str,
        vec_order: str,
        *,
        owner: bool,
    ):
        self._shm = shm
        self.n = int(n)
        self.lazy = bool(lazy)
        self.graph_name = graph_name
        self.vec_order = vec_order
        self.owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def publish(cls, prop: SpectralPropagator) -> "SharedEigenbasis":
        """Copy ``prop``'s decomposition into a fresh shared segment (done
        once; every worker maps the same physical pages afterwards).

        ``eigvecs`` is written element-for-element in its own memory order
        (``eigh`` returns F-contiguous), recorded on the handle so attachers
        reconstruct an identically laid out operand."""
        n = prop.graph.n
        vecs = prop._eigvecs
        vec_order = "C" if vecs.flags.c_contiguous else "F"
        nbytes = max((2 * n + n * n) * _DTYPE.itemsize, 1)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        buf = np.ndarray(2 * n, dtype=_DTYPE, buffer=shm.buf)
        buf[:n] = prop._sqrt_deg
        buf[n:] = prop._eigvals
        vec_view = np.ndarray(
            (n, n),
            dtype=_DTYPE,
            buffer=shm.buf,
            offset=2 * n * _DTYPE.itemsize,
            order=vec_order,
        )
        vec_view[:, :] = vecs
        del buf, vec_view
        return cls(
            shm, n, prop.lazy, prop.graph.name, vec_order, owner=True
        )

    @classmethod
    def attach(
        cls, handle: SharedEigenbasisHandle, *, untrack: bool = False
    ) -> "SharedEigenbasis":
        """Map an already-published segment (worker side, zero-copy).

        ``untrack`` follows the same rule as
        :meth:`~repro.parallel.shared_csr.SharedCSR.attach`: pool workers
        must leave it ``False`` (they share the publisher's resource
        tracker); only a process unrelated to the publisher passes
        ``True``."""
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        if untrack:
            try:  # pragma: no cover - tracker internals vary across versions
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(
            shm,
            handle.n,
            handle.lazy,
            handle.graph_name,
            handle.vec_order,
            owner=False,
        )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def handle(self) -> SharedEigenbasisHandle:
        """The picklable descriptor workers attach by."""
        return SharedEigenbasisHandle(
            self._shm.name, self.n, self.lazy, self.graph_name, self.vec_order
        )

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sqrt_deg, eigvals, eigvecs)`` as views of the shared buffer
        (``eigvecs`` in the publisher's recorded memory order)."""
        n = self.n
        sqrt_deg = np.ndarray(n, dtype=_DTYPE, buffer=self._shm.buf)
        eigvals = np.ndarray(
            n, dtype=_DTYPE, buffer=self._shm.buf, offset=n * _DTYPE.itemsize
        )
        eigvecs = np.ndarray(
            (n, n),
            dtype=_DTYPE,
            buffer=self._shm.buf,
            offset=2 * n * _DTYPE.itemsize,
            order=self.vec_order,
        )
        return sqrt_deg, eigvals, eigvecs

    def propagator(self, g: Graph) -> SpectralPropagator:
        """Rebuild the publisher's propagator for ``g`` on zero-copy views
        (no ``eigh``; bitwise the parent's evaluations — see the module
        docstring).  ``g`` must be the published graph (workers resolve it
        from the companion :class:`~repro.parallel.shared_csr.SharedCSR`
        segment; :class:`Graph` equality is structural, so the worker-side
        view graph keys the same caches)."""
        if g.n != self.n:
            raise ValueError(
                f"graph has n={g.n} but the published eigenbasis has "
                f"n={self.n}"
            )
        sqrt_deg, eigvals, eigvecs = self.arrays()
        return SpectralPropagator.from_arrays(
            g, lazy=self.lazy, sqrt_deg=sqrt_deg, eigvals=eigvals,
            eigvecs=eigvecs,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Unmap this process's view of the segment (keeps the segment
        itself alive for other processes)."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported numpy views
            # A live numpy view still points into the mapping; the OS
            # reclaims it with the process instead.
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS namespace (publisher only;
        idempotent).  Existing mappings stay valid until closed."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __enter__(self) -> "SharedEigenbasis":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.unlink()
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        role = "owner" if self.owner else "attached"
        return (
            f"SharedEigenbasis({self.graph_name!r}, n={self.n}, "
            f"lazy={self.lazy}, order={self.vec_order!r}, "
            f"shm={self._shm.name!r}, {role})"
        )
