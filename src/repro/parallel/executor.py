"""The sharded process-pool executor behind the parallel front doors.

:class:`ShardExecutor` owns a persistent
:class:`concurrent.futures.ProcessPoolExecutor` whose workers are warmed
once on spawn (engine spectral-cache settings forwarded via the pool
initializer) and then reused across calls — the pool survives any number of
solves, graphs and snapshots.  Graphs travel to workers through
:class:`~repro.parallel.shared_csr.SharedCSR` segments published once per
structure; tasks carry only the tiny handle.

Determinism contract
--------------------
Work is split by :func:`shard_bounds` into **contiguous** shards in input
order (``numpy.array_split`` semantics: the first ``k mod W`` shards get
one extra item), and results are merged back in shard order.  Because every
batched-engine result is per-source identical to the per-source reference
loop (the loop-equivalence guarantee), a shard's block solve performs
bitwise the same arithmetic per column as the corresponding single-process
chunk — so the merged output is *independent of the worker count and shard
boundaries*, not merely statistically equivalent.  Each worker propagates
only its own ``k/W`` columns, which also caps peak dense-block memory at
``n × ⌈k/W⌉`` per process (the column compression the single-process
engine's ``batch_size`` knob provides, now spread across cores).

Start methods
-------------
The pool uses the platform default start method unless overridden by the
``start_method`` argument or the ``REPRO_PARALLEL_START_METHOD``
environment variable (the CI matrix runs the suite under both ``fork`` and
``spawn``).  Everything shipped to workers — the module-level task
functions, :class:`SharedCSRHandle`, knob dictionaries, seeds — is
picklable, so ``spawn`` (macOS/Windows default) is fully supported.

Observability
-------------
Utilization counters live on the executor's
:class:`~repro.obs.metrics.MetricsRegistry` (``repro_executor_*``, with
per-worker attribution as a pid-labelled counter family) behind the
unchanged :meth:`ShardExecutor.stats` dict; :meth:`ShardExecutor.reset`
zeroes them for windowed measurement.  While tracing is enabled in the
*parent*, :meth:`ShardExecutor.run_sharded` asks each worker to collect
(``collect=True`` on the task): the worker scopes observability around
its solve, wraps it in a ``shard_solve`` span carrying the kernel-profile
delta of exactly that solve, and ships the span dict back on the existing
task-return channel — the parent re-attaches each worker timeline under
the dispatching span and folds the kernel deltas into its own profiler,
so cross-process kernel time aggregates into one trace.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.graphs.base import Graph
from repro.obs import (
    MetricsRegistry,
    Span,
    attach_or_record,
    diff_kernel_snapshots,
    kernel_profiler,
    observability,
    observability_enabled,
    use_span,
)
from repro.parallel.shared_csr import SharedCSR, SharedCSRHandle
from repro.parallel.shared_eigenbasis import (
    SharedEigenbasis,
    SharedEigenbasisHandle,
)

__all__ = ["ShardExecutor", "shard_bounds", "default_start_method"]

#: Environment variable overriding the multiprocessing start method (the CI
#: portability matrix sets it to ``spawn``).
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def default_start_method() -> str:
    """The start method new executors use: ``REPRO_PARALLEL_START_METHOD``
    if set, else the platform default (``fork`` on Linux, ``spawn`` on
    macOS/Windows)."""
    env = os.environ.get(START_METHOD_ENV, "").strip()
    if env:
        return env
    return mp.get_start_method(allow_none=False)


def shard_bounds(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-even shard boundaries ``[(lo, hi), …)`` over
    ``range(n_items)`` — ``numpy.array_split`` semantics (the first
    ``n_items mod n_shards`` shards get one extra item), with empty shards
    dropped (``n_shards > n_items`` degrades to one shard per item).

    This is the deterministic sharding every parallel driver uses; the
    boundaries are part of the equivalence contract only in that they are
    *contiguous and in input order* — the merged result is the same for any
    partition (see the module docstring).
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_items == 0:
        return []
    n_shards = min(n_shards, n_items)
    base, extra = divmod(n_items, n_shards)
    bounds = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ---------------------------------------------------------------------- #
# Worker side (module-level so every start method can pickle the tasks)
# ---------------------------------------------------------------------- #

#: Per-worker LRU of attached segments: keeps the worker-side ``Graph`` (and
#: its warm ``cached_property`` state) alive across tasks, bounded so long
#: snapshot streams do not pin stale mappings.
_WORKER_GRAPH_CACHE_SIZE = 8
_worker_graphs: "OrderedDict[str, SharedCSR]" = OrderedDict()

#: Per-worker LRU of attached eigenbasis segments (same bound and rotation
#: discipline as the graph cache; entries are only mappings — the dense
#: arrays live once in shared memory).
_worker_eigenbases: "OrderedDict[str, SharedEigenbasis]" = OrderedDict()


def _init_worker(
    cache_maxsize: int | None, default_backend: str | None = None
) -> None:
    """Pool initializer: apply forwarded engine settings once per worker.

    Both settings were validated parent-side, so a bad value fails fast in
    the submitting process instead of crashing the pool on spawn."""
    if cache_maxsize is not None:
        from repro.engine import set_propagator_cache_maxsize

        set_propagator_cache_maxsize(cache_maxsize)
    if default_backend is not None:
        from repro.engine import set_default_backend

        set_default_backend(default_backend)


def _resolve_graph(handle: SharedCSRHandle) -> Graph:
    """Attach (or reuse) the shared segment and return its zero-copy graph."""
    shared = _worker_graphs.get(handle.shm_name)
    if shared is None:
        # Pool workers inherit the publisher's resource tracker (under
        # every start method: the tracker fd travels in the spawn
        # preparation data), so attach-registration dedups against the
        # publisher's entry and must NOT be untracked — the publisher's
        # unlink is the one and only deregistration.
        shared = SharedCSR.attach(handle)
        _worker_graphs[handle.shm_name] = shared
        while len(_worker_graphs) > _WORKER_GRAPH_CACHE_SIZE:
            _worker_graphs.popitem(last=False)[1].close()
    else:
        _worker_graphs.move_to_end(handle.shm_name)
    return shared.graph


def _seed_eigenbasis(
    eigen_handle: SharedEigenbasisHandle, g: Graph
) -> None:
    """Attach (or reuse) the shared eigenbasis and seed the worker's
    spectral-propagator cache with a zero-copy rebuild, so the engine's
    ``shared_spectral_propagator(g, lazy)`` lookup hits instead of paying
    ``O(n³)`` per worker.  Seeding is first-publish-wins and idempotent."""
    from repro.engine import seed_shared_propagator

    shared = _worker_eigenbases.get(eigen_handle.shm_name)
    if shared is None:
        # Same tracker rule as the graph cache: pool workers inherit the
        # publisher's resource tracker, so never untrack here.
        shared = SharedEigenbasis.attach(eigen_handle)
        _worker_eigenbases[eigen_handle.shm_name] = shared
        while len(_worker_eigenbases) > _WORKER_GRAPH_CACHE_SIZE:
            _worker_eigenbases.popitem(last=False)[1].close()
    else:
        _worker_eigenbases.move_to_end(eigen_handle.shm_name)
    seed_shared_propagator(shared.propagator(g))


def _solve_shard(
    handle: SharedCSRHandle,
    eigen_handle: SharedEigenbasisHandle | None,
    kind: str,
    shard: list[int],
    kwargs: dict,
    collect: bool = False,
):
    """Worker kernel: one batched-engine call on this worker's source shard,
    returned as ``(worker_pid, results, obs)`` so the parent can attribute
    the solve in :meth:`ShardExecutor.stats` — ``obs`` is ``None`` unless
    the parent asked for span collection (``collect=True``: tracing was
    enabled parent-side), in which case it is the worker's ``shard_solve``
    span as a :meth:`~repro.obs.trace.Span.to_dict` payload, carrying the
    kernel-profile delta of exactly this solve in ``meta["kernels"]``.

    The batched drivers are reused as-is — the shard's block is exactly the
    single-process engine's chunk for these sources, so per-source outputs
    are bitwise those of the serial call (loop equivalence; the
    observability scope only changes what is *recorded*).  For spectral
    solves the parent forwards its eigendecomposition as a
    :class:`SharedEigenbasis` handle; seeding it here means no worker
    re-derives the eigenbasis."""
    from repro.engine import (
        batched_local_mixing_profiles,
        batched_local_mixing_spectra,
        batched_local_mixing_times,
    )

    g = _resolve_graph(handle)
    if eigen_handle is not None:
        _seed_eigenbasis(eigen_handle, g)
    solvers = {
        "times": batched_local_mixing_times,
        "spectra": batched_local_mixing_spectra,
        "profiles": batched_local_mixing_profiles,
    }
    solver = solvers.get(kind)
    if solver is None:
        raise ValueError(f"unknown shard kind {kind!r}")
    if not collect:
        return os.getpid(), solver(g, sources=shard, **kwargs), None
    # Scope observability around exactly this solve so the kernel-profile
    # delta attributes cleanly even on a warm reused worker.
    with observability(True):
        profiler = kernel_profiler()
        before = profiler.snapshot()
        span = Span(
            "shard_solve", {"pid": os.getpid(), "kind": kind,
                            "sources": len(shard)}
        )
        # Ambient-scope the span so the engine's own engine_solve trace
        # nests under it instead of landing in the worker's root sink.
        with use_span(span):
            out = solver(g, sources=shard, **kwargs)
        span.finish()
        span.meta["kernels"] = diff_kernel_snapshots(
            before, profiler.snapshot()
        )
    return os.getpid(), out, span.to_dict()


def _map_shard(handle: SharedCSRHandle | None, fn: Callable, chunk: list):
    """Worker kernel for :func:`~repro.parallel.api.shard_map`: apply ``fn``
    to every item of the chunk (with the shared graph prepended when the
    caller published one); returns ``(worker_pid, results)``."""
    if handle is None:
        return os.getpid(), [fn(item) for item in chunk]
    g = _resolve_graph(handle)
    return os.getpid(), [fn(g, item) for item in chunk]


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #


class ShardExecutor:
    """A persistent worker pool with shared-memory graph publication.

    Parameters
    ----------
    n_workers:
        Pool size (default: ``os.cpu_count()``).  Also the default shard
        count for solves submitted through this executor.
    start_method:
        Multiprocessing start method (default:
        :func:`default_start_method`).
    cache_maxsize:
        Forwarded to each worker's
        :func:`~repro.engine.set_propagator_cache_maxsize` on spawn, so the
        per-worker spectral cache obeys the same memory bound the parent
        configured (workers otherwise start with the library default).
        Validated here — a bad value raises before the pool spawns.
    backend:
        Default compute-backend *name* forwarded to every worker's
        :func:`~repro.engine.set_default_backend` on spawn (the same
        forwarding discipline as ``cache_maxsize``).  Resolved and
        validated in the parent — an unknown name fails fast here, never
        inside a worker.  Per-call ``backend=`` arguments on the parallel
        front doors override this default shard-locally.
    max_published:
        How many distinct graph segments to keep published at once; least
        recently used segments beyond the bound are unlinked (safe between
        solves — no task is in flight when eviction runs).

    Use as a context manager (or call :meth:`close`) so the pool and every
    shared segment are torn down deterministically; tests assert that after
    :meth:`close` no published segment can be re-attached.  One executor
    may be driven from several threads (the async serving layer does):
    publication, the utilization counters and teardown are lock-protected.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        start_method: str | None = None,
        cache_maxsize: int | None = None,
        backend: str | None = None,
        max_published: int = 16,
    ):
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_published < 1:
            raise ValueError("max_published must be >= 1")
        # Validate forwarded worker settings at this front door: the pool
        # initializer replays them in every worker, where a bad value would
        # surface as an opaque BrokenProcessPool instead of a clear error.
        if cache_maxsize is not None:
            if isinstance(cache_maxsize, bool) or not isinstance(
                cache_maxsize, (int, np.integer)
            ):
                raise ValueError(
                    "cache_maxsize must be a non-negative integer, "
                    f"got {cache_maxsize!r}"
                )
            if cache_maxsize < 0:
                raise ValueError(
                    f"cache_maxsize must be >= 0, got {cache_maxsize}"
                )
        self._backend_name: str | None = None
        if backend is not None:
            from repro.engine import get_backend

            if not isinstance(backend, str):
                raise TypeError(
                    "backend must be a registered backend name (workers "
                    f"resolve it by name on spawn), got {backend!r}"
                )
            self._backend_name = get_backend(backend).name
        self.n_workers = int(n_workers)
        self.start_method = start_method or default_start_method()
        ctx = mp.get_context(self.start_method)
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(cache_maxsize, self._backend_name),
        )
        self._published: "OrderedDict[Graph, SharedCSR]" = OrderedDict()
        self._published_eigen: (
            "OrderedDict[tuple[Graph, bool], SharedEigenbasis]"
        ) = OrderedDict()
        self._max_published = int(max_published)
        self._closed = False
        # The async serving layer calls one executor from several engine
        # worker threads at once; publication, the stats counters and
        # teardown share this lock (the pool's own submit is thread-safe).
        self._lock = threading.RLock()
        #: The executor's metrics registry (``repro_executor_*``); the
        #: serving layer composes it into its own exposition.
        self.metrics = MetricsRegistry()
        self._calls = self.metrics.counter(
            "repro_executor_calls_total",
            "Sharded submissions (run_sharded + map_items).",
        )
        self._tasks_dispatched = self.metrics.counter(
            "repro_executor_tasks_dispatched_total",
            "Shard tasks sent to the pool.",
        )
        self._items_processed = self.metrics.counter(
            "repro_executor_items_processed_total",
            "Sources/items across all dispatched tasks.",
        )
        self._worker_solves = self.metrics.counter(
            "repro_executor_worker_solves_total",
            "Completed shard tasks attributed per worker process.",
            labels=("pid",),
        )
        self.metrics.gauge(
            "repro_executor_workers", "Configured pool size."
        ).set(self.n_workers)
        self._last_shard_sizes: list[int] = []

    # -------------------------------------------------------------- #
    # Graph publication
    # -------------------------------------------------------------- #

    def publish(self, g: Graph) -> SharedCSRHandle:
        """Place ``g``'s CSR arrays in shared memory (idempotent per
        structure: :class:`Graph` hashes by its CSR bytes, so a revisited
        dynamic-snapshot topology reuses its existing segment)."""
        self._check_open()
        with self._lock:
            shared = self._published.get(g)
            if shared is None:
                shared = SharedCSR.publish(g)
                self._published[g] = shared
                while len(self._published) > self._max_published:
                    _, old = self._published.popitem(last=False)
                    old.unlink()
                    old.close()
            else:
                self._published.move_to_end(g)
            return shared.handle

    def publish_eigenbasis(
        self, g: Graph, *, lazy: bool = False
    ) -> SharedEigenbasisHandle:
        """Place the eigendecomposition of ``(g, lazy)`` in shared memory
        (idempotent per operator, LRU-bounded like :meth:`publish`).

        The decomposition comes from the parent's own
        :func:`~repro.engine.shared_spectral_propagator` cache — computed
        at most once in this process, then mapped zero-copy by every
        worker.  Spectral sharded solves call this automatically."""
        from repro.engine import shared_spectral_propagator

        self._check_open()
        key = (g, bool(lazy))
        with self._lock:
            shared = self._published_eigen.get(key)
            if shared is not None:
                self._published_eigen.move_to_end(key)
                return shared.handle
        # The O(n³) decomposition runs outside the lock (same discipline
        # as the engine's propagator cache): a long eigh must not block
        # publication of unrelated graphs from other threads.
        prop = shared_spectral_propagator(g, lazy)
        with self._lock:
            raced = self._published_eigen.get(key)
            if raced is not None:
                self._published_eigen.move_to_end(key)
                return raced.handle
            shared = SharedEigenbasis.publish(prop)
            self._published_eigen[key] = shared
            while len(self._published_eigen) > self._max_published:
                _, old = self._published_eigen.popitem(last=False)
                old.unlink()
                old.close()
            return shared.handle

    def release(self, g: Graph) -> None:
        """Unlink ``g``'s segments (CSR and any eigenbases) now instead of
        waiting for :meth:`close` (workers' existing mappings stay valid
        until they rotate out)."""
        with self._lock:
            shared = self._published.pop(g, None)
            eigen = [
                self._published_eigen.pop(key)
                for key in list(self._published_eigen)
                if key[0] == g
            ]
        if shared is not None:
            shared.unlink()
            shared.close()
        for e in eigen:
            e.unlink()
            e.close()

    # -------------------------------------------------------------- #
    # Execution
    # -------------------------------------------------------------- #

    def run_sharded(
        self,
        g: Graph,
        kind: str,
        sources: Sequence[int],
        kwargs: dict,
        *,
        n_shards: int | None = None,
    ):
        """Shard ``sources`` contiguously, solve every shard on the pool
        with the batched-engine kernel ``kind`` (``"times"`` / ``"spectra"``
        / ``"profiles"``), and merge in shard order.

        Returns a list in ``sources`` order for ``"times"``/``"spectra"``
        and a vertically stacked ``(k, t_max+1)`` array for
        ``"profiles"`` — in every case element-for-element identical to the
        corresponding single-process batched call.
        """
        self._check_open()
        n_shards = self._resolve_shards(n_shards)
        handle = self.publish(g)
        eigen_handle = None
        if kwargs.get("method") == "spectral":
            # Spectral solves need the eigenbasis in every worker; publish
            # the parent's decomposition once so workers map it instead of
            # re-running eigh per process.
            eigen_handle = self.publish_eigenbasis(
                g, lazy=bool(kwargs.get("lazy", False))
            )
        src = [int(s) for s in sources]
        bounds = shard_bounds(len(src), n_shards)
        # Ask workers for their timelines only while the parent is
        # tracing; the shipped span dicts ride the normal result tuple.
        collect = observability_enabled()
        futures = [
            self._pool.submit(
                _solve_shard,
                handle,
                eigen_handle,
                kind,
                src[lo:hi],
                kwargs,
                collect,
            )
            for lo, hi in bounds
        ]
        parts = [f.result() for f in futures]
        self._record_dispatch(bounds, (pid for pid, _, _ in parts))
        if collect:
            self._ingest_worker_spans(obs for _, _, obs in parts)
        if kind == "profiles":
            return np.vstack([part for _, part, _ in parts])
        return [res for _, part, _ in parts for res in part]

    def _ingest_worker_spans(self, payloads) -> None:
        """Fold shipped worker timelines into the parent trace: rebuild
        each ``shard_solve`` span dict, merge its kernel-profile delta
        into the parent's profiler, and attach the span under the current
        ambient span (or record it as a root trace)."""
        profiler = kernel_profiler()
        for payload in payloads:
            if payload is None:
                continue
            span = Span.from_dict(payload)
            delta = span.meta.get("kernels")
            if delta:
                profiler.merge(delta)
            attach_or_record(span)

    def map_items(
        self,
        fn: Callable,
        items: Sequence,
        *,
        graph: Graph | None = None,
        n_shards: int | None = None,
    ) -> list:
        """Apply a picklable module-level ``fn`` to every item, sharded
        contiguously across the pool; results come back in ``items`` order.

        With ``graph`` given, the graph is published once and ``fn`` is
        called as ``fn(shared_graph, item)`` — per-source workloads get the
        zero-copy topology without pickling it per task."""
        self._check_open()
        n_shards = self._resolve_shards(n_shards)
        items = list(items)
        if not items:
            return []
        handle = self.publish(graph) if graph is not None else None
        bounds = shard_bounds(len(items), n_shards)
        futures = [
            self._pool.submit(_map_shard, handle, fn, items[lo:hi])
            for lo, hi in bounds
        ]
        parts = [f.result() for f in futures]
        self._record_dispatch(bounds, (pid for pid, _ in parts))
        return [res for _, part in parts for res in part]

    def _record_dispatch(self, bounds, worker_pids) -> None:
        """Fold one sharded call into the utilization counters."""
        sizes = [hi - lo for lo, hi in bounds]
        with self._lock:
            self._calls.inc()
            self._tasks_dispatched.inc(len(sizes))
            self._items_processed.inc(sum(sizes))
            self._last_shard_sizes = sizes
            for pid in worker_pids:
                self._worker_solves.labels(pid=pid).inc()

    def stats(self) -> dict:
        """Utilization counters since construction — or since the last
        :meth:`reset` — as a snapshot copy (mutating it never affects the
        executor).

        Keys: ``calls`` (sharded submissions — ``run_sharded`` +
        ``map_items``), ``tasks_dispatched`` (shard tasks sent to the
        pool), ``items_processed`` (sources/items across all tasks),
        ``per_worker_solves`` (``{worker_pid: completed shard tasks}`` —
        how evenly the pool was used, **cumulative across calls**),
        ``last_shard_sizes`` (the shard partition of the most recent call
        only), plus ``n_workers``, ``published_graphs`` and
        ``published_eigenbases``.  The serving layer and ``bench_s1``
        report these; they never affect results.
        """
        with self._lock:
            return {
                "calls": self._calls.value,
                "tasks_dispatched": self._tasks_dispatched.value,
                "items_processed": self._items_processed.value,
                "per_worker_solves": {
                    int(label_values[0]): leaf.value
                    for label_values, leaf in self._worker_solves.series()
                },
                "last_shard_sizes": list(self._last_shard_sizes),
                "n_workers": self.n_workers,
                "published_graphs": len(self._published),
                "published_eigenbases": len(self._published_eigen),
            }

    def reset(self) -> None:
        """Zero the utilization counters (``calls``, ``tasks_dispatched``,
        ``items_processed``, the cumulative ``per_worker_solves``
        attribution) and clear ``last_shard_sizes``, so the next
        :meth:`stats` snapshot covers exactly the work dispatched after
        this call — benchmarks use it to attribute one timed run without
        warm-up arithmetic.  Configuration values (``n_workers``, the
        published-segment counts) are unaffected."""
        with self._lock:
            self._calls.reset()
            self._tasks_dispatched.reset()
            self._items_processed.reset()
            self._worker_solves.reset()
            self._last_shard_sizes = []

    def _resolve_shards(self, n_shards: int | None) -> int:
        """Default the shard count to the pool size; an explicit value
        must be >= 1 (0 is an error, not "use the default")."""
        if n_shards is None:
            return self.n_workers
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        return n_shards

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ShardExecutor is closed")

    def close(self) -> None:
        """Shut the pool down and unlink every published segment
        (idempotent).  After this returns, no segment this executor
        published can be attached again."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)
        with self._lock:
            for shared in self._published.values():
                shared.unlink()
                shared.close()
            self._published.clear()
            for eigen in self._published_eigen.values():
                eigen.unlink()
                eigen.close()
            self._published_eigen.clear()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ShardExecutor(n_workers={self.n_workers}, "
            f"start_method={self.start_method!r}, "
            f"published={len(self._published)}, {state})"
        )
