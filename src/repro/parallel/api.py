"""Parallel front doors: multi-core solves with the loop-equivalence
guarantee.

:func:`parallel_local_mixing_times`, :func:`parallel_local_mixing_spectra`
and :func:`parallel_local_mixing_profiles` are drop-in sharded counterparts
of the batched engine drivers — same signature plus ``n_workers`` /
``executor`` / ``start_method`` — whose outputs are **identical** (same τ,
set sizes, bitwise-equal deviations, same bookkeeping counters) to the
serial call for every knob combination: the shards are contiguous source
ranges, each worker runs the unmodified batched kernel on its range, and
the per-source loop-equivalence guarantee makes the merge independent of
worker count and shard boundaries.

:func:`shard_map` is the generic escape hatch for per-source workloads
(Monte-Carlo estimator sweeps, per-graph family sweeps): apply a picklable
module-level function to every item across the pool, optionally with a
shared-memory graph prepended to each call.

All front doors validate every knob **in the parent** (through the engine's
shared validation head) before any process is touched, so bad calls raise
the same fail-fast errors as the serial drivers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.graphs.base import Graph
from repro.engine.batch import (
    _prepare_profiles_call,
    _prepare_spectra_call,
    _prepare_times_call,
)
from repro.parallel.executor import ShardExecutor

__all__ = [
    "parallel_local_mixing_times",
    "parallel_local_mixing_spectra",
    "parallel_local_mixing_profiles",
    "shard_map",
]


def _resolve_executor(
    executor: ShardExecutor | None,
    n_workers: int | None,
    start_method: str | None,
) -> tuple[ShardExecutor, bool]:
    """Reuse the caller's executor or build a one-shot one (returned flag
    says whether the caller of this helper must close it)."""
    if executor is not None:
        return executor, False
    return ShardExecutor(n_workers, start_method=start_method), True


def _resolve_backend_name(backend) -> str | None:
    """Validate a backend selector in the parent and normalize it to a
    registered *name* (or ``None`` for the worker-side default).

    The parallel layer ships the backend across process boundaries, so
    only names are accepted — a :class:`~repro.engine.KernelBackend`
    *instance* is process-local state and is rejected here rather than
    failing to unpickle (or silently re-resolving) inside a worker."""
    if backend is None:
        return None
    if not isinstance(backend, str):
        raise TypeError(
            "parallel front doors accept backend names only (instances "
            f"cannot cross process boundaries), got {backend!r}"
        )
    from repro.engine import get_backend

    return get_backend(backend).name


def parallel_local_mixing_times(
    g: Graph,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    sources: Sequence[int] | None = None,
    sizes: str | list[int] = "all",
    threshold_factor: float = 1.0,
    grid_factor: float | None = None,
    t_schedule: str = "all",
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
    target: str = "uniform",
    method: str = "iterative",
    batch_size: int | None = None,
    prefilter: str = "fused",
    backend: str | None = None,
    n_workers: int | None = None,
    executor: ShardExecutor | None = None,
    start_method: str | None = None,
) -> list:
    """``τ_s(β,ε)`` for every source, solved on ``n_workers`` processes.

    Accepts the full knob space of
    :func:`~repro.engine.batch.batched_local_mixing_times` (``target``,
    ``require_source``, ``method``, ``prefilter``, schedules, grids,
    ``batch_size`` — the latter bounds each *worker's* sub-chunks) and
    returns, in ``sources`` order, results **identical** to the serial
    batched call — and therefore to the per-source reference loop.  Peak
    dense-block memory per process is ``n × ⌈k/W⌉`` for ``k`` sources on
    ``W`` workers.

    Pass a long-lived :class:`~repro.parallel.ShardExecutor` via
    ``executor`` to amortize worker spawn and graph publication across
    calls; otherwise a pool is created and torn down inside this call.
    ``n_workers`` doubles as the shard count when an executor is supplied.

    ``backend`` selects the compute backend *by name* (validated here in
    the parent, forwarded to every shard; instances are rejected — see
    :mod:`repro.engine.backends`); results are bitwise identical for every
    registered backend.
    """
    backend = _resolve_backend_name(backend)
    src, _, _ = _prepare_times_call(
        g,
        beta,
        eps,
        sources=sources,
        sizes=sizes,
        threshold_factor=threshold_factor,
        grid_factor=grid_factor,
        t_schedule=t_schedule,
        t_max=t_max,
        lazy=lazy,
        target=target,
        method=method,
        batch_size=batch_size,
        prefilter=prefilter,
        backend=backend,
    )
    kwargs = dict(
        beta=beta,
        eps=eps,
        sizes=sizes,
        threshold_factor=threshold_factor,
        grid_factor=grid_factor,
        t_schedule=t_schedule,
        t_max=t_max,
        lazy=lazy,
        require_source=require_source,
        target=target,
        method=method,
        batch_size=batch_size,
        prefilter=prefilter,
        backend=backend,
    )
    ex, owned = _resolve_executor(executor, n_workers, start_method)
    try:
        return ex.run_sharded(g, "times", src, kwargs, n_shards=n_workers)
    finally:
        if owned:
            ex.close()


def parallel_local_mixing_spectra(
    g: Graph,
    eps: float = DEFAULT_EPS,
    *,
    sources: Sequence[int] | None = None,
    sizes: list[int] | None = None,
    grid_factor: float | None = None,
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
    method: str = "iterative",
    backend: str | None = None,
    n_workers: int | None = None,
    executor: ShardExecutor | None = None,
    start_method: str | None = None,
) -> list[dict[int, int | float]]:
    """Sharded counterpart of
    :func:`~repro.engine.batch.batched_local_mixing_spectra`: the full
    per-source spectrum ``R → first t``, in ``sources`` order, identical to
    the serial call for every knob (``require_source``, both methods and
    every ``backend`` name included; backend instances are rejected)."""
    backend = _resolve_backend_name(backend)
    src, _, _ = _prepare_spectra_call(
        g,
        eps,
        sources=sources,
        sizes=sizes,
        grid_factor=grid_factor,
        t_max=t_max,
        lazy=lazy,
        method=method,
        backend=backend,
    )
    kwargs = dict(
        eps=eps,
        sizes=sizes,
        grid_factor=grid_factor,
        t_max=t_max,
        lazy=lazy,
        require_source=require_source,
        method=method,
        backend=backend,
    )
    ex, owned = _resolve_executor(executor, n_workers, start_method)
    try:
        return ex.run_sharded(g, "spectra", src, kwargs, n_shards=n_workers)
    finally:
        if owned:
            ex.close()


def parallel_local_mixing_profiles(
    g: Graph,
    beta: float,
    *,
    sources: Sequence[int] | None = None,
    sizes: str | list[int] = "all",
    grid_factor: float = DEFAULT_EPS,
    t_max: int = 100,
    lazy: bool = False,
    require_source: bool = False,
    backend: str | None = None,
    n_workers: int | None = None,
    executor: ShardExecutor | None = None,
    start_method: str | None = None,
) -> np.ndarray:
    """Sharded counterpart of
    :func:`~repro.engine.batch.batched_local_mixing_profiles`: the
    ``(k, t_max + 1)`` deviation-profile block, rows in ``sources`` order
    and bitwise equal to the serial call (each worker propagates only its
    own row block, so peak memory drops by the worker count).  ``backend``
    is a name validated in the parent, forwarded to every shard."""
    backend = _resolve_backend_name(backend)
    src, _ = _prepare_profiles_call(
        g, beta, sources=sources, sizes=sizes, grid_factor=grid_factor,
        t_max=t_max, backend=backend,
    )
    kwargs = dict(
        beta=beta,
        sizes=sizes,
        grid_factor=grid_factor,
        t_max=t_max,
        lazy=lazy,
        require_source=require_source,
        backend=backend,
    )
    ex, owned = _resolve_executor(executor, n_workers, start_method)
    try:
        return ex.run_sharded(g, "profiles", src, kwargs, n_shards=n_workers)
    finally:
        if owned:
            ex.close()


def shard_map(
    fn: Callable,
    items: Sequence,
    *,
    graph: Graph | None = None,
    n_workers: int | None = None,
    executor: ShardExecutor | None = None,
    start_method: str | None = None,
) -> list:
    """Apply ``fn`` to every item across the worker pool; results in
    ``items`` order.

    ``fn`` must be a picklable module-level callable.  Items are split into
    contiguous shards (:func:`~repro.parallel.executor.shard_bounds`), so
    ordering — and, when callers pre-derive per-item random seeds, the
    exact random streams — is independent of the worker count.  With
    ``graph`` given, the topology is published to shared memory once and
    ``fn`` is invoked as ``fn(shared_graph, item)``; otherwise as
    ``fn(item)``.

    This is the substrate the multi-source estimator sweeps
    (:func:`~repro.algorithms.estimate_rw_probability.estimate_rw_probabilities`,
    :func:`~repro.algorithms.local_mixing_time.local_mixing_times_congest`)
    and the per-graph family sweeps
    (:func:`~repro.analysis.sweeps.family_sweep`) fan out on.
    """
    if not callable(fn):
        raise TypeError("fn must be callable")
    ex, owned = _resolve_executor(executor, n_workers, start_method)
    try:
        return ex.map_items(fn, items, graph=graph, n_shards=n_workers)
    finally:
        if owned:
            ex.close()
