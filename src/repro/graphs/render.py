"""ASCII rendering of the paper's Figure 1 (the β-barbell).

The figure is a structural illustration — a path of β equal-sized cliques —
so its reproduction is a renderer that draws exactly that from the actual
graph object (the renderer verifies it is drawing a genuine barbell rather
than printing a canned picture).
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.base import Graph

__all__ = ["render_beta_barbell", "verify_beta_barbell"]


def verify_beta_barbell(g: Graph, beta: int, clique_size: int) -> None:
    """Raise :class:`GraphError` unless ``g`` is exactly the β-barbell with
    the given parameters (β cliques of ``clique_size`` chained by single
    bridge edges — the Figure 1 object)."""
    k = clique_size
    if g.n != beta * k:
        raise GraphError(f"expected n = beta*k = {beta * k}, got {g.n}")
    expected_m = beta * k * (k - 1) // 2 + (beta - 1)
    if g.m != expected_m:
        raise GraphError(f"expected m = {expected_m}, got {g.m}")
    for b in range(beta):
        base = b * k
        for i in range(k):
            for j in range(i + 1, k):
                if not g.has_edge(base + i, base + j):
                    raise GraphError(
                        f"missing clique edge ({base + i}, {base + j})"
                    )
    for b in range(beta - 1):
        if not g.has_edge(b * k + k - 1, (b + 1) * k):
            raise GraphError(f"missing bridge edge after clique {b}")


def render_beta_barbell(g: Graph, beta: int, clique_size: int) -> str:
    """Render Figure 1 for the given (verified) barbell instance.

    Example output for β = 3::

        (K_8)---(K_8)---(K_8)
        nodes 0-7 | 8-15 | 16-23
    """
    verify_beta_barbell(g, beta, clique_size)
    k = clique_size
    blobs = "---".join(f"(K_{k})" for _ in range(beta))
    ranges = " | ".join(f"{b * k}-{(b + 1) * k - 1}" for b in range(beta))
    return (
        f"{blobs}\n"
        f"nodes {ranges}\n"
        f"beta = {beta} cliques of size {k}; bridges: "
        + ", ".join(
            f"({b * k + k - 1},{(b + 1) * k})" for b in range(beta - 1)
        )
    )
