"""Graph substrate: an immutable CSR-backed graph type, generators for the
paper's graph families, and structural property computations."""

from repro.graphs.base import Graph
from repro.graphs.generators import (
    beta_barbell,
    binary_tree,
    circulant,
    clique_chain_of_expanders,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    dumbbell,
    hypercube,
    lollipop,
    margulis_expander,
    path_graph,
    random_regular,
    star_graph,
    torus_2d,
)
from repro.graphs.properties import (
    bfs_layers,
    diameter,
    eccentricity,
    estimate_diameter_two_sweep,
    multi_source_distances,
    shortest_path_lengths_from,
)
from repro.graphs.families import GraphFamily, FAMILIES, get_family
from repro.graphs.render import render_beta_barbell, verify_beta_barbell

__all__ = [
    "Graph",
    "beta_barbell",
    "binary_tree",
    "circulant",
    "clique_chain_of_expanders",
    "complete_bipartite",
    "complete_graph",
    "cycle_graph",
    "dumbbell",
    "hypercube",
    "lollipop",
    "margulis_expander",
    "path_graph",
    "random_regular",
    "star_graph",
    "torus_2d",
    "bfs_layers",
    "diameter",
    "eccentricity",
    "estimate_diameter_two_sweep",
    "multi_source_distances",
    "shortest_path_lengths_from",
    "render_beta_barbell",
    "verify_beta_barbell",
    "GraphFamily",
    "FAMILIES",
    "get_family",
]
