"""Generators for every graph family used by the paper and its experiments.

The central one is :func:`beta_barbell` — the paper's **Figure 1**: a path of
``beta`` equal-sized cliques.  Section 2.3 compares local vs. global mixing on
the complete graph, d-regular expanders, the path, and the β-barbell; all are
here, plus the standard suspects (cycle, hypercube, torus, lollipop,
dumbbell…) used for wider test coverage.

All generators return :class:`repro.graphs.Graph` with nodes ``0..n-1``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.base import Graph
from repro.utils.seeding import as_rng

__all__ = [
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "beta_barbell",
    "dumbbell",
    "lollipop",
    "star_graph",
    "complete_bipartite",
    "hypercube",
    "torus_2d",
    "circulant",
    "binary_tree",
    "random_regular",
    "margulis_expander",
    "clique_chain_of_expanders",
]


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n`` — §2.3(a): mixing and local mixing both ``1``."""
    if n < 2:
        raise GraphError("complete graph needs n >= 2")
    iu, ju = np.triu_indices(n, k=1)
    return Graph(n, zip(iu.tolist(), ju.tolist()), name=f"K_{n}")


def path_graph(n: int) -> Graph:
    """Path ``P_n`` — §2.3(c): ``τ_mix = Θ(n²)``, ``τ_local = Θ(n²/β²)``."""
    if n < 2:
        raise GraphError("path needs n >= 2")
    return Graph(n, [(i, i + 1) for i in range(n - 1)], name=f"P_{n}")


def cycle_graph(n: int) -> Graph:
    """Cycle ``C_n`` (2-regular; bipartite iff ``n`` even)."""
    if n < 3:
        raise GraphError("cycle needs n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)], name=f"C_{n}")


def beta_barbell(beta: int, clique_size: int) -> Graph:
    """The paper's **Figure 1** graph: a path of ``beta`` equal-sized cliques.

    Clique ``i`` occupies nodes ``[i*k, (i+1)*k)`` where ``k = clique_size``;
    consecutive cliques are joined by a single *bridge edge* between the last
    node of clique ``i`` and the first node of clique ``i+1``.

    Properties (paper §2.3(d)): with ``k = n/β``, the mixing time is
    ``Ω(β²)`` while the local mixing time (for that β) is ``O(1)`` — walks
    mix essentially instantly inside their home clique.

    Note the graph is *near*-regular (bridge endpoints have degree ``k``,
    interior clique nodes ``k-1``); the paper treats it as the canonical
    local-mixing example regardless.  :func:`beta_barbell_regular` in tests
    is not needed — algorithms that require exact regularity take
    ``require_regular=False`` on this family and use ``π_S`` with true
    degrees.
    """
    if beta < 1:
        raise GraphError("beta must be >= 1")
    if clique_size < 2:
        raise GraphError("clique_size must be >= 2")
    k = clique_size
    n = beta * k
    edges: list[tuple[int, int]] = []
    for b in range(beta):
        base = b * k
        for i in range(k):
            for j in range(i + 1, k):
                edges.append((base + i, base + j))
    for b in range(beta - 1):
        edges.append((b * k + k - 1, (b + 1) * k))
    return Graph(n, edges, name=f"barbell(beta={beta}, k={k})")


def dumbbell(clique_size: int, path_len: int = 0) -> Graph:
    """Two cliques of size ``clique_size`` joined by a path of ``path_len``
    intermediate nodes (``path_len = 0`` gives the classic barbell)."""
    if clique_size < 2:
        raise GraphError("clique_size must be >= 2")
    if path_len < 0:
        raise GraphError("path_len must be >= 0")
    k = clique_size
    n = 2 * k + path_len
    edges: list[tuple[int, int]] = []
    for base in (0, k + path_len):
        for i in range(k):
            for j in range(i + 1, k):
                edges.append((base + i, base + j))
    chain = [k - 1] + [k + i for i in range(path_len)] + [k + path_len]
    edges.extend((chain[i], chain[i + 1]) for i in range(len(chain) - 1))
    return Graph(n, edges, name=f"dumbbell(k={k}, path={path_len})")


def lollipop(clique_size: int, tail_len: int) -> Graph:
    """Lollipop: clique ``K_k`` with a path of ``tail_len`` nodes attached."""
    if clique_size < 2:
        raise GraphError("clique_size must be >= 2")
    if tail_len < 1:
        raise GraphError("tail_len must be >= 1")
    k = clique_size
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    prev = k - 1
    for t in range(tail_len):
        edges.append((prev, k + t))
        prev = k + t
    return Graph(k + tail_len, edges, name=f"lollipop(k={k}, tail={tail_len})")


def star_graph(n: int) -> Graph:
    """Star ``K_{1,n-1}`` (bipartite; simple walk does not mix)."""
    if n < 2:
        raise GraphError("star needs n >= 2")
    return Graph(n, [(0, i) for i in range(1, n)], name=f"star_{n}")


def complete_bipartite(a: int, b: int) -> Graph:
    """Complete bipartite ``K_{a,b}``."""
    if a < 1 or b < 1:
        raise GraphError("both sides need >= 1 node")
    return Graph(
        a + b,
        [(i, a + j) for i in range(a) for j in range(b)],
        name=f"K_{{{a},{b}}}",
    )


def hypercube(dim: int) -> Graph:
    """``dim``-dimensional hypercube (``2**dim`` nodes, ``dim``-regular,
    bipartite — used with the lazy walk)."""
    if dim < 1:
        raise GraphError("dim must be >= 1")
    n = 1 << dim
    edges = [(u, u ^ (1 << b)) for u in range(n) for b in range(dim) if u < u ^ (1 << b)]
    return Graph(n, edges, name=f"Q_{dim}")


def torus_2d(rows: int, cols: int) -> Graph:
    """2-D torus grid (4-regular when both sides ≥ 3)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus needs both sides >= 3")

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append((node(r, c), node(r, (c + 1) % cols)))
            edges.append((node(r, c), node((r + 1) % rows, c)))
    return Graph(rows * cols, edges, name=f"torus({rows}x{cols})")


def circulant(n: int, offsets: list[int]) -> Graph:
    """Circulant graph: node ``i`` adjacent to ``i ± o (mod n)`` per offset."""
    if n < 3:
        raise GraphError("circulant needs n >= 3")
    edges = set()
    for o in offsets:
        o = o % n
        if o == 0:
            raise GraphError("offset 0 would create self-loops")
        for i in range(n):
            j = (i + o) % n
            edges.add((min(i, j), max(i, j)))
    return Graph(n, sorted(edges), name=f"circulant({n}, {sorted(set(offsets))})")


def binary_tree(height: int) -> Graph:
    """Complete binary tree of the given height (``2**(h+1) - 1`` nodes)."""
    if height < 1:
        raise GraphError("height must be >= 1")
    n = (1 << (height + 1)) - 1
    edges = [(p, c) for c in range(1, n) for p in [(c - 1) // 2]]
    return Graph(n, edges, name=f"btree(h={height})")


def random_regular(n: int, d: int, *, seed=None, max_tries: int = 64) -> Graph:
    """Uniform-ish random ``d``-regular simple graph; with overwhelming
    probability an expander — §2.3(b): both mixing and local mixing are
    ``Θ(log n)``.

    Uses networkx's pairing-with-repair generator (plain rejection sampling
    is hopeless for ``d ≳ 6``: the simple-graph probability is
    ``e^{-Θ(d²)}``), retrying with fresh sub-seeds until connected.
    """
    if n * d % 2:
        raise GraphError("n*d must be even")
    if d >= n:
        raise GraphError("need d < n")
    if d < 1:
        raise GraphError("need d >= 1")
    import networkx as nx

    rng = as_rng(seed)
    for _ in range(max_tries):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        nxg = nx.random_regular_graph(d, n, seed=sub_seed)
        g = Graph.from_networkx(nxg, name=f"random_regular(n={n}, d={d})")
        if g.is_connected:
            return g
    raise GraphError(
        f"could not generate a connected {d}-regular graph on {n} nodes "
        f"in {max_tries} tries"
    )


def margulis_expander(side: int) -> Graph:
    """Margulis–Gabber–Galil expander on ``Z_m × Z_m`` (``m = side``).

    Node ``(x, y)`` connects to ``(x±2y, y)``, ``(x±(2y+1), y)``,
    ``(x, y±2x)``, ``(x, y±(2x+1))`` (mod m).  8-regular as a multigraph;
    we collapse parallels so degrees are ≤ 8, and the spectral gap is
    bounded away from zero — a deterministic expander for experiments.
    """
    if side < 2:
        raise GraphError("side must be >= 2")
    m = side
    n = m * m

    def node(x: int, y: int) -> int:
        return (x % m) * m + (y % m)

    edges = set()
    for x in range(m):
        for y in range(m):
            u = node(x, y)
            for vx, vy in (
                (x + 2 * y, y),
                (x - 2 * y, y),
                (x + 2 * y + 1, y),
                (x - 2 * y - 1, y),
                (x, y + 2 * x),
                (x, y - 2 * x),
                (x, y + 2 * x + 1),
                (x, y - 2 * x - 1),
            ):
                v = node(vx, vy)
                if v != u:
                    edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=f"margulis({m}x{m})")


def clique_chain_of_expanders(
    num_blocks: int, block_size: int, d: int = 8, *, seed=None
) -> Graph:
    """β connected expander blocks chained by single bridge edges.

    The paper (§2.3(d), last sentence) points at this family: components with
    very small internal mixing time connected via a path have a large gap
    between global and local mixing time.
    """
    if num_blocks < 1:
        raise GraphError("need >= 1 block")
    if block_size < 3:
        raise GraphError("block_size must be >= 3")
    d_eff = min(d, block_size - 1)
    if (block_size * d_eff) % 2:
        d_eff -= 1
    if d_eff < 2:
        raise GraphError("blocks would be too sparse to be expanders")
    rng = as_rng(seed)
    edges: list[tuple[int, int]] = []
    for b in range(num_blocks):
        base = b * block_size
        block = random_regular(block_size, d_eff, seed=rng)
        edges.extend((base + u, base + v) for u, v in block.edges())
    for b in range(num_blocks - 1):
        edges.append((b * block_size + block_size - 1, (b + 1) * block_size))
    return Graph(
        num_blocks * block_size,
        edges,
        name=f"expander_chain(beta={num_blocks}, k={block_size})",
    )
