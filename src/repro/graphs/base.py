"""The core :class:`Graph` type.

A :class:`Graph` is an immutable, undirected, simple graph stored in
compressed-sparse-row (CSR) form: ``indptr`` and ``indices`` arrays exactly
like :mod:`scipy.sparse`, which makes neighbor iteration, degree lookup and
conversion to sparse matrices allocation-free.  All algorithms in the library
operate on this type; conversion helpers to and from :mod:`networkx` exist
for interoperability and for cross-checking in tests.

Nodes are always the integers ``0 .. n-1``.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import DisconnectedGraphError, GraphError, NotRegularError

__all__ = ["Graph"]


class Graph:
    """Immutable undirected simple graph on nodes ``0..n-1`` in CSR form.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``.  Duplicate edges and
        both orientations of the same edge are collapsed.
    name:
        Optional human-readable name used in reprs and experiment tables.

    Notes
    -----
    The constructor is ``O(m log m)`` (sorting).  Use
    :meth:`from_csr` to adopt pre-built CSR arrays without re-sorting, and
    :meth:`from_adjacency` / :meth:`from_networkx` for other formats.
    """

    __slots__ = ("_n", "_indptr", "_indices", "name", "__dict__", "__weakref__")

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]],
        *,
        name: str | None = None,
    ):
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        pairs = np.asarray(list(edges), dtype=np.int64)
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise GraphError("edges must be (u, v) pairs")
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            raise GraphError("edge endpoint out of range")
        if np.any(pairs[:, 0] == pairs[:, 1]):
            raise GraphError("self-loops are not allowed")
        # Canonicalize: undirected means store both (u,v) and (v,u); dedupe.
        both = np.concatenate([pairs, pairs[:, ::-1]], axis=0)
        # Dedupe via a structured sort on (u, v).
        order = np.lexsort((both[:, 1], both[:, 0]))
        both = both[order]
        if both.shape[0]:
            keep = np.ones(both.shape[0], dtype=bool)
            keep[1:] = np.any(both[1:] != both[:-1], axis=1)
            both = both[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, both[:, 0] + 1, 1)
        np.cumsum(indptr, out=indptr)
        self._n = int(n)
        self._indptr = indptr
        self._indices = np.ascontiguousarray(both[:, 1])
        self._indptr.setflags(write=False)
        self._indices.setflags(write=False)
        self.name = name or f"graph(n={n}, m={self._indices.size // 2})"

    # ------------------------------------------------------------------ #
    # Alternate constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str | None = None,
        validate: bool = True,
    ) -> "Graph":
        """Adopt CSR arrays directly (must already be symmetric, sorted,
        loop-free and duplicate-free).  ``O(m)`` with ``validate=True``."""
        g = cls.__new__(cls)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        n = indptr.size - 1
        if n <= 0:
            raise GraphError("indptr must have length n+1 >= 2")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError("malformed indptr")
        g._n = int(n)
        g._indptr = indptr
        g._indices = indices
        g._indptr.setflags(write=False)
        g._indices.setflags(write=False)
        g.name = name or f"graph(n={n}, m={indices.size // 2})"
        if validate:
            if indices.size:
                if indices.min() < 0 or indices.max() >= n:
                    raise GraphError("neighbor index out of range")
                # Rows must be sorted strictly increasing: has_edge/neighbors
                # consumers rely on searchsorted lookups, and a duplicate
                # within a row would be a parallel edge.
                if indices.size > 1:
                    inner = np.ones(indices.size - 1, dtype=bool)
                    bounds = indptr[1:-1]
                    bounds = bounds[(bounds > 0) & (bounds < indices.size)]
                    inner[bounds - 1] = False
                    if np.any(np.diff(indices)[inner] <= 0):
                        raise GraphError(
                            "neighbor rows must be sorted strictly "
                            "increasing (duplicate or unsorted entries)"
                        )
            adj = g.adjacency_matrix()
            if (adj != adj.T).nnz:
                raise GraphError("CSR arrays are not symmetric")
            if adj.diagonal().any():
                raise GraphError("self-loops are not allowed")
        return g

    @classmethod
    def from_adjacency(cls, adj, *, name: str | None = None) -> "Graph":
        """Build from a dense or sparse 0/1 adjacency matrix."""
        A = sp.csr_matrix(adj)
        A.eliminate_zeros()
        coo = A.tocoo()
        mask = coo.row < coo.col
        return cls(
            A.shape[0],
            list(zip(coo.row[mask].tolist(), coo.col[mask].tolist())),
            name=name,
        )

    @classmethod
    def from_networkx(cls, nxg, *, name: str | None = None) -> "Graph":
        """Convert a :class:`networkx.Graph`; nodes are relabelled ``0..n-1``
        in sorted order of the original labels."""
        nodes = sorted(nxg.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        edges = [(index[u], index[v]) for u, v in nxg.edges() if u != v]
        return cls(len(nodes), edges, name=name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._indices.size // 2

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view), length ``n+1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view), length ``2m``."""
        return self._indices

    @cached_property
    def degrees(self) -> np.ndarray:
        """Vector of node degrees, length ``n`` (read-only)."""
        deg = np.diff(self._indptr)
        deg.setflags(write=False)
        return deg

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return int(self._indptr[u + 1] - self._indptr[u])

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor array of node ``u`` (read-only view)."""
        return self._indices[self._indptr[u] : self._indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` iff ``{u, v}`` is an edge."""
        nb = self.neighbors(u)
        i = np.searchsorted(nb, v)
        return bool(i < nb.size and nb[i] == v)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    @cached_property
    def volume(self) -> int:
        """Total volume ``µ(V) = Σ d(v) = 2m``."""
        return int(self._indices.size)

    # ------------------------------------------------------------------ #
    # Structure predicates
    # ------------------------------------------------------------------ #

    @cached_property
    def is_regular(self) -> bool:
        """``True`` iff every node has the same degree."""
        deg = self.degrees
        return bool(deg.size == 0 or np.all(deg == deg[0]))

    @property
    def regular_degree(self) -> int:
        """The common degree ``d``; raises :class:`NotRegularError` otherwise."""
        if not self.is_regular:
            raise NotRegularError(f"{self.name} is not regular")
        return int(self.degrees[0]) if self._n else 0

    @cached_property
    def is_connected(self) -> bool:
        """``True`` iff the graph is connected."""
        n_comp, _ = sp.csgraph.connected_components(
            self.adjacency_matrix(), directed=False
        )
        return bool(n_comp == 1)

    @cached_property
    def is_bipartite(self) -> bool:
        """``True`` iff the graph is 2-colorable (BFS 2-coloring)."""
        color = np.full(self._n, -1, dtype=np.int8)
        for start in range(self._n):
            if color[start] != -1:
                continue
            color[start] = 0
            frontier = [start]
            while frontier:
                nxt = []
                for u in frontier:
                    cu = color[u]
                    for v in self.neighbors(u):
                        if color[v] == -1:
                            color[v] = 1 - cu
                            nxt.append(int(v))
                        elif color[v] == cu:
                            return False
                frontier = nxt
        return True

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` if disconnected."""
        if not self.is_connected:
            raise DisconnectedGraphError(f"{self.name} is not connected")

    # ------------------------------------------------------------------ #
    # Matrix views and derived graphs
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self) -> sp.csr_matrix:
        """Binary adjacency matrix as ``scipy.sparse.csr_matrix``."""
        data = np.ones(self._indices.size, dtype=np.float64)
        return sp.csr_matrix(
            (data, self._indices, self._indptr), shape=(self._n, self._n)
        )

    def induced_subgraph(self, nodes: Sequence[int]) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns ``(H, mapping)`` where ``H`` has ``len(nodes)`` nodes and
        ``mapping[i]`` is the original label of ``H``'s node ``i``.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size == 0:
            raise GraphError("induced subgraph needs at least one node")
        if nodes[0] < 0 or nodes[-1] >= self._n:
            raise GraphError("node label out of range")
        pos = -np.ones(self._n, dtype=np.int64)
        pos[nodes] = np.arange(nodes.size)
        edges = []
        for new_u, u in enumerate(nodes):
            for v in self.neighbors(int(u)):
                nv = pos[v]
                if nv > new_u:
                    edges.append((new_u, int(nv)))
        return (
            Graph(nodes.size, edges, name=f"{self.name}[{nodes.size} nodes]"),
            nodes,
        )

    def to_networkx(self):
        """Convert to :class:`networkx.Graph` (imported lazily)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        g.add_edges_from(self.edges())
        return g

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Graph(name={self.name!r}, n={self._n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        # Memoized: graphs are immutable and hashing serializes the full
        # indices array, which hash-keyed caches (e.g. the engine's shared
        # spectral-propagator cache) would otherwise redo on every lookup.
        h = self.__dict__.get("_hash")
        if h is None:
            h = self.__dict__["_hash"] = hash((self._n, self._indices.tobytes()))
        return h
