"""Parameterized graph families with the paper's §2.3 theory predictions.

Each :class:`GraphFamily` bundles a generator with the asymptotic growth the
paper claims for the mixing time and the local mixing time, so the benchmark
harness can print "claimed vs. measured" rows uniformly.  Exponents are with
respect to the sweep variable ``n`` (number of nodes) with everything else
held fixed unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graphs.base import Graph
from repro.graphs import generators as gen

__all__ = ["GraphFamily", "FAMILIES", "get_family"]


@dataclass(frozen=True)
class GraphFamily:
    """A graph family plus the paper's predicted scaling.

    Attributes
    ----------
    key:
        Short identifier used by benchmarks (``"path"``, ``"barbell"``, …).
    description:
        One-line description with the paper reference.
    build:
        ``build(n, beta, seed) -> Graph`` — generators may round ``n`` to the
        nearest feasible size (e.g. β must divide n for the barbell); callers
        must read the true size off the returned graph.
    mixing_exponent:
        Claimed growth exponent of ``τ_mix`` in ``n`` (``None`` = constant
        or logarithmic, checked separately).
    local_mixing_exponent:
        Claimed growth exponent of ``τ_s(β, ·)`` in ``n`` for fixed β.
    notes:
        Free-text caveats that EXPERIMENTS.md repeats.
    """

    key: str
    description: str
    build: Callable[[int, int, object], Graph]
    mixing_exponent: float | None
    local_mixing_exponent: float | None
    lazy: bool = False
    notes: str = ""


def _build_complete(n: int, beta: int, seed) -> Graph:
    return gen.complete_graph(max(n, 2))


def _build_path(n: int, beta: int, seed) -> Graph:
    return gen.path_graph(max(n, 2))


def _build_cycle(n: int, beta: int, seed) -> Graph:
    # Odd cycle so the simple walk is aperiodic.
    n = max(n, 3)
    if n % 2 == 0:
        n += 1
    return gen.cycle_graph(n)


def _build_expander(n: int, beta: int, seed) -> Graph:
    n = max(n, 10)
    if n % 2:
        n += 1
    return gen.random_regular(n, 8, seed=seed)


def _build_barbell(n: int, beta: int, seed) -> Graph:
    k = max(n // beta, 2)
    return gen.beta_barbell(beta, k)


def _build_expander_chain(n: int, beta: int, seed) -> Graph:
    k = max(n // beta, 10)
    return gen.clique_chain_of_expanders(beta, k, seed=seed)


def _build_torus(n: int, beta: int, seed) -> Graph:
    import math

    side = max(int(round(math.sqrt(max(n, 9)))), 3)
    return gen.torus_2d(side, side)


FAMILIES: dict[str, GraphFamily] = {
    f.key: f
    for f in [
        GraphFamily(
            key="complete",
            description="Complete graph K_n — §2.3(a): τ_mix = τ_local = 1",
            build=_build_complete,
            mixing_exponent=0.0,
            local_mixing_exponent=0.0,
        ),
        GraphFamily(
            key="expander",
            description="Random 8-regular graph — §2.3(b): both Θ(log n)",
            build=_build_expander,
            mixing_exponent=0.0,
            local_mixing_exponent=0.0,
            notes="logarithmic growth; slope fit should be ≈ 0 with log lift",
        ),
        GraphFamily(
            key="path",
            description="Path P_n — §2.3(c): τ_mix = Θ(n²), τ_local = Θ(n²/β²)",
            build=_build_path,
            mixing_exponent=2.0,
            local_mixing_exponent=2.0,
            lazy=True,
            notes="path is bipartite; the lazy walk is used (paper fn. 5)",
        ),
        GraphFamily(
            key="barbell",
            description="β-barbell (Figure 1) — §2.3(d): τ_mix = Ω(β²), τ_local = O(1)",
            build=_build_barbell,
            mixing_exponent=None,
            local_mixing_exponent=0.0,
            notes="sweep is over β with fixed clique size for the Ω(β²) claim",
        ),
        GraphFamily(
            key="expander_chain",
            description="Chain of β expander blocks — §2.3(d) last remark",
            build=_build_expander_chain,
            mixing_exponent=None,
            local_mixing_exponent=0.0,
            notes="local mixing = block mixing = Θ(log(n/β))",
        ),
        GraphFamily(
            key="torus",
            description="2-D torus — τ_mix = Θ(n) (not in paper; control family)",
            build=_build_torus,
            mixing_exponent=1.0,
            local_mixing_exponent=1.0,
            lazy=True,
            notes="bipartite for even sides; lazy walk used",
        ),
    ]
}


def get_family(key: str) -> GraphFamily:
    """Look up a family by key, with a helpful error listing valid keys."""
    try:
        return FAMILIES[key]
    except KeyError:
        raise KeyError(
            f"unknown family {key!r}; available: {sorted(FAMILIES)}"
        ) from None
