"""Structural graph properties: BFS layers, distances, diameter, eccentricity.

These are the building blocks both for the CONGEST simulator's ground truth
(BFS-tree correctness is tested against :func:`shortest_path_lengths_from`)
and for the experiment harness (the paper's bounds involve the diameter
``D`` and the truncated diameter ``D̃ = min{τ_s, D}``).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import Graph

__all__ = [
    "shortest_path_lengths_from",
    "multi_source_distances",
    "bfs_layers",
    "eccentricity",
    "diameter",
    "estimate_diameter_two_sweep",
    "degree_histogram",
]


def shortest_path_lengths_from(g: Graph, source: int) -> np.ndarray:
    """Unweighted distances from ``source`` to every node (``-1`` if
    unreachable).  Vectorized frontier BFS: ``O(n + m)``."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    return multi_source_distances(g, [source])


def multi_source_distances(g: Graph, seeds) -> np.ndarray:
    """Unweighted distance from every node to the *nearest* seed (``-1`` if
    no seed is reachable) by vectorized frontier BFS, ``O(n + m)`` — the
    locality radius the dynamic-network tracker prunes with
    (:mod:`repro.dynamic.tracker`)."""
    seeds = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seeds.size == 0:
        return np.full(g.n, -1, dtype=np.int64)
    if seeds[0] < 0 or seeds[-1] >= g.n:
        raise ValueError("seed out of range")
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[seeds] = 0
    frontier = seeds
    level = 0
    indptr, indices = g.indptr, g.indices
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier in one shot.
        starts, ends = indptr[frontier], indptr[frontier + 1]
        if int(np.sum(ends - starts)) == 0:
            break
        nbr = np.concatenate([indices[s:e] for s, e in zip(starts, ends)])
        nbr = nbr[dist[nbr] == -1]
        if nbr.size == 0:
            break
        frontier = np.unique(nbr)
        dist[frontier] = level
    return dist


def bfs_layers(g: Graph, source: int) -> list[np.ndarray]:
    """Nodes grouped by BFS distance from ``source`` (layer 0 = source)."""
    dist = shortest_path_lengths_from(g, source)
    reach = dist[dist >= 0]
    return [np.flatnonzero(dist == d) for d in range(int(reach.max()) + 1)]


def eccentricity(g: Graph, source: int) -> int:
    """Largest distance from ``source``; raises on disconnected graphs."""
    dist = shortest_path_lengths_from(g, source)
    if np.any(dist < 0):
        from repro.errors import DisconnectedGraphError

        raise DisconnectedGraphError(f"{g.name} is not connected")
    return int(dist.max())


def diameter(g: Graph) -> int:
    """Exact diameter by all-pairs BFS — ``O(n(n+m))``; fine up to a few
    thousand nodes, which covers every experiment in this repo.  For quick
    estimates on larger graphs use :func:`estimate_diameter_two_sweep`."""
    g.require_connected()
    return max(eccentricity(g, s) for s in range(g.n))


def estimate_diameter_two_sweep(g: Graph, *, start: int = 0) -> int:
    """Classic double-sweep lower bound on the diameter (exact on trees):
    BFS from ``start``, then BFS from the farthest node found."""
    g.require_connected()
    d1 = shortest_path_lengths_from(g, start)
    far = int(np.argmax(d1))
    d2 = shortest_path_lengths_from(g, far)
    return int(d2.max())


def degree_histogram(g: Graph) -> dict[int, int]:
    """Map ``degree -> count`` (useful for experiment tables)."""
    values, counts = np.unique(g.degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
