"""Block propagation of many walk distributions at once.

A :class:`BlockPropagator` holds an ``n × k`` column block ``P`` whose
``j``-th column is the walk distribution of source ``sources[j]`` and
advances all of them with a single sparse mat-mat per step::

    P_{t+1} = A @ P_t        # one csr @ dense product, k columns in lockstep

Each column evolves through exactly the same floating-point operations as
the single-source ``p ← A @ p`` matvec (scipy's CSR kernels accumulate row
nonzeros in the same order for matvec and matmat), so the block trajectory
is **bitwise identical** to ``k`` independent
:func:`~repro.walks.distribution.distribution_trajectory` runs.

For random access in ``t`` (doubling schedules, binary searches) the module
keeps a small shared cache of
:class:`~repro.walks.distribution.SpectralPropagator` instances keyed by
``(graph, lazy)`` — the ``O(n³)`` eigendecomposition is paid once per
operator and reused by every caller.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, NamedTuple, Sequence

import numpy as np

from repro.graphs.base import Graph
from repro.spectral.transition import walk_operator
from repro.walks.distribution import SpectralPropagator

__all__ = [
    "BlockPropagator",
    "block_distribution_at",
    "shared_spectral_propagator",
    "seed_shared_propagator",
    "clear_propagator_cache",
    "set_propagator_cache_maxsize",
    "propagator_cache_info",
]

#: Default bound on cached eigendecompositions; each entry holds a dense
#: ``n × n`` eigenbasis, so the cache is deliberately small.
_DEFAULT_CACHE_MAXSIZE = 8

_cache: OrderedDict[tuple[Graph, bool], SpectralPropagator] = OrderedDict()
_cache_maxsize = _DEFAULT_CACHE_MAXSIZE
_cache_hits = 0
_cache_misses = 0
#: Guards every mutation of the shared cache (lookup/insert/evict, clear,
#: re-bound): the async serving layer runs engine calls on a thread pool,
#: so concurrent solves share this process-wide state.  The eigendecomposition
#: itself is computed OUTSIDE the lock — a long solve must not serialize
#: unrelated graphs — so two threads racing on the same new key may both
#: decompose, and the insert keeps the first-published instance.
_cache_lock = threading.RLock()


class PropagatorCacheInfo(NamedTuple):
    """Statistics of the shared spectral-propagator cache (mirrors
    ``functools.lru_cache``'s ``cache_info`` tuple)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


def shared_spectral_propagator(g: Graph, lazy: bool = False) -> SpectralPropagator:
    """A process-wide LRU cache of spectral propagators keyed by
    ``(graph, lazy)``.

    :class:`~repro.graphs.base.Graph` is immutable and hashes by its CSR
    arrays, so two structurally equal graphs share one eigendecomposition —
    in particular, a :class:`~repro.dynamic.DynamicGraph` snapshot that
    returns to a previously seen structure hits the cache.  Each entry stores
    a dense ``n × n`` eigenbasis, so dynamic workloads that stream many
    distinct snapshots should bound the held memory with
    :func:`set_propagator_cache_maxsize` or drop it with
    :func:`clear_propagator_cache`.
    """
    global _cache_hits, _cache_misses
    key = (g, lazy)
    with _cache_lock:
        prop = _cache.get(key)
        if prop is not None:
            _cache_hits += 1
            _cache.move_to_end(key)
            return prop
        _cache_misses += 1
    prop = SpectralPropagator(g, lazy=lazy)
    with _cache_lock:
        raced = _cache.get(key)
        if raced is not None:
            # Another thread published the same structure while we were
            # decomposing; keep one instance so callers share memory.
            _cache.move_to_end(key)
            return raced
        _cache[key] = prop
        while len(_cache) > _cache_maxsize:
            _cache.popitem(last=False)
    return prop


def clear_propagator_cache() -> None:
    """Drop every cached eigendecomposition (and reset the hit counters).

    Dynamic-network workloads stream many structurally distinct snapshots
    through the engine; this releases the dense eigenbases they pinned."""
    global _cache_hits, _cache_misses
    with _cache_lock:
        _cache.clear()
        _cache_hits = 0
        _cache_misses = 0


def set_propagator_cache_maxsize(maxsize: int) -> None:
    """Re-bound the shared propagator cache (evicting LRU entries to fit).

    ``maxsize=0`` disables caching entirely — every call pays the ``O(n³)``
    eigendecomposition, but no dense basis is retained.  Anything but a
    non-negative integer is rejected at this front door (a float or bool
    would silently change the eviction arithmetic; a negative bound has no
    meaning), which also protects the parallel layer: the executor
    forwards this setting verbatim to every worker on spawn."""
    global _cache_maxsize
    if isinstance(maxsize, bool) or not isinstance(
        maxsize, (int, np.integer)
    ):
        raise ValueError(
            f"maxsize must be a non-negative integer, got {maxsize!r}"
        )
    if maxsize < 0:
        raise ValueError(f"maxsize must be >= 0, got {maxsize}")
    with _cache_lock:
        _cache_maxsize = int(maxsize)
        while len(_cache) > _cache_maxsize:
            _cache.popitem(last=False)


def seed_shared_propagator(prop: SpectralPropagator) -> SpectralPropagator:
    """Insert an externally constructed propagator into the shared cache
    under its ``(graph, lazy)`` key and return the cached instance.

    First-publish-wins: if the key is already cached (another thread, or a
    previous seed), the existing instance is returned and ``prop`` is
    dropped, so every caller shares one eigenbasis.  This is how parallel
    workers adopt a :class:`~repro.parallel.SharedEigenbasis` — the parent
    decomposes once, workers seed their process-local cache with zero-copy
    views instead of re-deriving ``O(n³)`` per process.  The seed counts
    as neither hit nor miss (it answers no lookup)."""
    key = (prop.graph, prop.lazy)
    with _cache_lock:
        existing = _cache.get(key)
        if existing is not None:
            _cache.move_to_end(key)
            return existing
        _cache[key] = prop
        while len(_cache) > _cache_maxsize:
            _cache.popitem(last=False)
    return prop


def propagator_cache_info() -> PropagatorCacheInfo:
    """Current ``(hits, misses, maxsize, currsize)`` of the shared cache."""
    with _cache_lock:
        return PropagatorCacheInfo(
            _cache_hits, _cache_misses, _cache_maxsize, len(_cache)
        )


def _one_hot_block(n: int, sources: np.ndarray) -> np.ndarray:
    P = np.zeros((n, sources.size), dtype=np.float64)
    P[sources, np.arange(sources.size)] = 1.0
    return P


def block_distribution_at(
    g: Graph, sources: Sequence[int], t: int, *, lazy: bool = False
) -> np.ndarray:
    """``p_t`` for every source as an ``n × k`` block, via the shared
    spectral cache (``O(n² k)`` per call after the one-time setup)."""
    if t < 0:
        raise ValueError("t must be non-negative")
    src = np.asarray(list(sources), dtype=np.int64)
    if src.size and (src.min() < 0 or src.max() >= g.n):
        raise ValueError("source out of range")
    prop = shared_spectral_propagator(g, lazy)
    return prop.propagate(_one_hot_block(g.n, src), t)


class BlockPropagator:
    """Advance ``k`` one-hot walk distributions in lockstep.

    Parameters
    ----------
    g:
        The graph (any connected graph the walk operator is defined on).
    sources:
        Source node per column.
    lazy:
        Use the lazy operator ``(I + A)/2``.
    backend:
        Optional :class:`~repro.engine.backends.KernelBackend` whose
        ``step_block`` advances the block (the compute seam); ``None``
        keeps the plain float64 ``A @ P``.  Every shipped backend's
        ``step_block`` is the same float64 mat-mat, so the trajectory is
        bitwise identical either way.
    """

    def __init__(
        self,
        g: Graph,
        sources: Sequence[int],
        *,
        lazy: bool = False,
        backend=None,
    ):
        src = np.asarray(list(sources), dtype=np.int64)
        if src.ndim != 1 or src.size == 0:
            raise ValueError("need at least one source")
        if src.min() < 0 or src.max() >= g.n:
            raise ValueError("source out of range")
        self.graph = g
        self.lazy = lazy
        self.sources = src
        self._A = walk_operator(g, lazy=lazy)
        self._backend = backend
        self._P = _one_hot_block(g.n, src)
        self.t = 0

    @property
    def k(self) -> int:
        """Number of live columns."""
        return self._P.shape[1]

    @property
    def block(self) -> np.ndarray:
        """The current ``n × k`` block ``P_t`` (owned by the propagator)."""
        return self._P

    def step(self) -> np.ndarray:
        """Advance one walk step (one sparse mat-mat) and return the block."""
        if self._backend is not None:
            self._P = self._backend.step_block(self._A, self._P)
        else:
            self._P = self._A @ self._P
        self.t += 1
        return self._P

    def advance_to(self, t: int) -> np.ndarray:
        """Advance to walk length ``t`` (must not go backwards)."""
        if t < self.t:
            raise ValueError(f"cannot rewind from t={self.t} to t={t}")
        while self.t < t:
            self.step()
        return self._P

    def trajectory(
        self, *, t_max: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t, P_t)`` from the current ``t`` onwards (``t_max``
        inclusive).  The yielded block is reused internally — copy to keep."""
        yield self.t, self._P
        while t_max is None or self.t < t_max:
            yield self.t + 1, self.step()

    def drop_columns(self, keep: np.ndarray) -> None:
        """Restrict the block to the columns in ``keep`` (positions, in
        order).  Used by the drivers to stop propagating resolved sources;
        slicing does not perturb the surviving columns' values."""
        keep = np.asarray(keep, dtype=np.int64)
        self._P = np.ascontiguousarray(self._P[:, keep])
        self.sources = self.sources[keep]
