"""Batched uniform-deviation queries over a block of distributions.

The single-source :class:`~repro.walks.local_mixing.UniformDeviationOracle`
sorts one ``p`` and scans every length-``R`` window of the sorted copy.  The
batched oracle sorts **all k columns at once** (``np.sort(P, axis=0)`` +
column-wise prefix sums) and answers ``min_{|S|=R} Σ_{u∈S} |p(u) − 1/R|``
for every column per ``(t, R)`` grid point without the window scan:

The window sum ``F(start)`` over the sorted column is *unimodal* in
``start``.  Writing ``x_j = |sorted_j − c|`` with ``c = 1/R``,
``F(start+1) − F(start) = x[start+R] − x[start]``; ``x`` decreases until the
sorted values cross ``c`` and increases after, so the difference is ``≤ 0``
while the window sits below the crossing, is monotone
(``sorted[start] + sorted[start+R] − 2c``) while it straddles, and is
``≥ 0`` past it.  The first start where the monotone predicate

    start ≥ k0   or   (start + R ≥ k0  and  sorted[start] + sorted[start+R] ≥ 2c)

holds (``k0`` = number of sorted entries below ``c``) is therefore a
minimizer, and a vectorized binary search finds it for all ``k`` columns in
``O(k log n)`` — versus ``O(k·(n−R))`` for the scan.

Floating-point caveat: the minimum *value* is evaluated with exactly the
single-source oracle's arithmetic at the bracketed start, but when exact
ties make the window-sum profile flat, the bracketed start can differ from
``np.argmin``'s pick by a few ulps of ``F``.  Callers that need decisions
bitwise-identical to the per-source loop (the batch drivers do) re-verify
near-threshold hits with the exact single-source oracle; see
:mod:`repro.engine.batch`.

:class:`BatchedDegreeDeviationOracle` is the degree-proportional-target
companion: a column-vectorized transcript of the single-source fixed-point
heuristic (stationary-weighted residual sort + volume recomputation) whose
values are bitwise equal to the per-source calls, which is what lets the
batch drivers cover ``target="degree"`` without falling back to the loop.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BatchedUniformDeviationOracle",
    "BatchedDegreeDeviationOracle",
    "sorted_scan_arrays",
    "split_points_kernel",
    "best_sums_kernel",
    "best_sums_grid_kernel",
    "deviation_lower_bounds_kernel",
]


# --------------------------------------------------------------------- #
# Dtype-generic kernels
#
# The oracle's hot arithmetic lives in these module-level functions so the
# pluggable compute backends (:mod:`repro.engine.backends`) can run the
# *screening* scan in a different precision while the oracle class keeps
# the float64 semantics documented above.  Every kernel casts its integer
# operands to the scan dtype explicitly; for float64 inputs that cast is
# exact (values are bounded by ``n``), so the float64 path is bitwise
# identical to the pre-extraction inline arithmetic — the grid-kernel
# equivalence tests pin this down.
# --------------------------------------------------------------------- #


def sorted_scan_arrays(
    P: np.ndarray, dtype=np.float64
) -> tuple[np.ndarray, np.ndarray]:
    """Column-wise ascending sort of ``P`` plus prefix sums with a leading
    zero row, as ``(sorted, prefix)`` of shapes ``(n, k)`` / ``(n+1, k)``.

    With ``dtype=np.float64`` (the default) this is exactly the scan the
    batched oracle builds; a lower-precision dtype casts the block once
    before sorting (the mixed-precision backends' screening scan)."""
    P = np.asarray(P, dtype=dtype)
    if P.ndim != 2:
        raise ValueError("P must be an (n, k) block, one column per source")
    S = np.sort(P, axis=0)
    prefix = np.vstack(
        [np.zeros((1, P.shape[1]), dtype=dtype), np.cumsum(S, axis=0)]
    )
    return S, prefix


def split_points_kernel(S: np.ndarray, cs: np.ndarray) -> np.ndarray:
    """Per target value and column, the number of sorted entries strictly
    below the target: entry ``[i, j]`` is
    ``searchsorted(S[:, j], cs[i])`` — the split the window formula pivots
    on.  ``cs`` is cast to the scan dtype so comparisons stay uniform."""
    cs = np.asarray(cs, dtype=S.dtype)
    out = np.empty((cs.size, S.shape[1]), dtype=np.int64)
    for j in range(S.shape[1]):
        out[:, j] = np.searchsorted(S[:, j], cs)
    return out


def best_sums_kernel(
    S: np.ndarray,
    pre: np.ndarray,
    R: int,
    c: float,
    k0: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """The bracketed window minimum for one set size ``R`` with target
    value ``c`` over every column of the scan ``(S, pre)``; returns
    ``(sums, starts)`` (see
    :meth:`BatchedUniformDeviationOracle.best_sums`)."""
    n, k = S.shape
    dt = S.dtype.type
    c = dt(c)
    cols = np.arange(k)
    if k0 is None:
        k0 = (S < c).sum(axis=0)
    # Vectorized binary search for the first start where the window-sum
    # difference turns non-negative; W-1 is the "all differences
    # negative" sentinel.
    W = n - R + 1
    lo = np.zeros(k, dtype=np.int64)
    hi = np.full(k, W - 1, dtype=np.int64)
    two_c = dt(2.0) * c
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = np.where(active, (lo + hi) >> 1, 0)
        s_lo = S[mid, cols]
        s_hi = S[mid + R, cols]
        pred = (mid >= k0) | ((mid + R >= k0) & (s_lo + s_hi >= two_c))
        hi = np.where(active & pred, mid, hi)
        lo = np.where(active & ~pred, mid + 1, lo)
    start = lo
    # Evaluate the window sum at the bracketed start with the exact
    # arithmetic of UniformDeviationOracle._window_sums.
    kk = np.clip(k0, start, start + R)
    gather = pre[kk, cols]
    p_lo = pre[start, cols]
    p_hi = pre[start + R, cols]
    below = c * (kk - start).astype(dt) - (gather - p_lo)
    above = (p_hi - gather) - c * (R - (kk - start)).astype(dt)
    return below + above, start


def best_sums_grid_kernel(
    S: np.ndarray,
    pre: np.ndarray,
    Rs: np.ndarray,
    cs: np.ndarray,
    k0: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`best_sums_kernel` vectorized over the whole ``(R, column)``
    grid — one search trajectory per grid element, identical per element to
    the per-``R`` kernel (see
    :meth:`BatchedUniformDeviationOracle.best_sums_grid`)."""
    n, k = S.shape
    dt = S.dtype.type
    cols = np.arange(k)[None, :]
    R_col = np.asarray(Rs, dtype=np.int64)[:, None]
    c_col = np.asarray(cs, dtype=S.dtype)[:, None]
    lo = np.zeros((R_col.size, k), dtype=np.int64)
    hi = np.broadcast_to(n - R_col, lo.shape).copy()  # W - 1 per row
    two_c = dt(2.0) * c_col
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = np.where(active, (lo + hi) >> 1, 0)
        s_lo = S[mid, cols]
        # Active positions satisfy mid + R <= n - 1; inactive ones are
        # don't-cares whose gather index merely needs to stay in bounds.
        s_hi = S[np.minimum(mid + R_col, n - 1), cols]
        pred = (mid >= k0) | ((mid + R_col >= k0) & (s_lo + s_hi >= two_c))
        hi = np.where(active & pred, mid, hi)
        lo = np.where(active & ~pred, mid + 1, lo)
    start = lo
    kk = np.clip(k0, start, start + R_col)
    gather = pre[kk, cols]
    p_lo = pre[start, cols]
    p_hi = pre[start + R_col, cols]
    below = c_col * (kk - start).astype(dt) - (gather - p_lo)
    above = (p_hi - gather) - c_col * (R_col - (kk - start)).astype(dt)
    return below + above, start


def deviation_lower_bounds_kernel(
    pre: np.ndarray, Rs: np.ndarray, cs: np.ndarray, k0: np.ndarray
) -> np.ndarray:
    """Search-free per-``(R, column)`` lower bounds on the window minima,
    straight from the prefix sums (see
    :meth:`BatchedUniformDeviationOracle.deviation_lower_bounds` for the
    three bounds being combined and why they are valid)."""
    n = pre.shape[0] - 1
    k = pre.shape[1]
    dt = pre.dtype.type
    cols = np.arange(k)[None, :]
    R_col = np.asarray(Rs, dtype=np.int64)[:, None]
    c_col = np.asarray(cs, dtype=pre.dtype)[:, None]
    target = c_col * R_col.astype(dt)  # cR (≈ 1, kept in float for safety)
    top = pre[n][None, :] - pre[n - R_col, cols]  # heaviest window mass
    bot = pre[R_col, cols]  # lightest window mass
    # (a) |mass − cR| over the feasible mass range.
    b_mass = np.maximum(target - top, bot - target)
    # (b) below-c part of the rightmost window.
    m2 = np.clip(k0 - (n - R_col), 0, R_col)
    b_below = c_col * m2.astype(dt) - (
        pre[(n - R_col) + m2, cols] - pre[n - R_col, cols]
    )
    # (c) above-c part of the leftmost window.
    a3 = np.minimum(k0, R_col)
    b_above = (bot - pre[a3, cols]) - c_col * (R_col - a3).astype(dt)
    out = np.maximum(b_mass, np.maximum(b_below, b_above))
    return np.maximum(out, dt(0.0))


class BatchedUniformDeviationOracle:
    """Answers best-deviation queries for every column of an ``n × k`` block.

    Parameters
    ----------
    P:
        Block of ``k`` distributions, one per column (non-negative).
    """

    def __init__(self, P: np.ndarray):
        P = np.asarray(P, dtype=np.float64)
        if P.ndim != 2:
            raise ValueError("P must be an (n, k) block, one column per source")
        self.n, self.k = P.shape
        #: Column-wise ascending sort of the block, shape ``(n, k)``, and
        #: column-wise prefix sums with a leading zero row, ``(n+1, k)``.
        self.sorted, self.prefix = sorted_scan_arrays(P)
        self._cols = np.arange(self.k)

    def split_points(self, cs: np.ndarray) -> np.ndarray:
        """``k0`` for each target value: entry ``[i, j]`` is the number of
        sorted values of column ``j`` strictly below ``cs[i]`` (the
        ``searchsorted`` split the window formula pivots on)."""
        cs = np.asarray(cs, dtype=np.float64)
        return split_points_kernel(self.sorted, cs)

    def best_sums(
        self, R: int, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(sums, starts)`` for set size ``R``: per column, the minimum of
        ``Σ_{j∈[start, start+R)} |sorted_j − 1/R|`` over window starts and a
        start achieving it (the bracketed minimizer; see module docstring).
        """
        n = self.n
        if not 1 <= R <= n:
            raise ValueError(f"R={R} out of range [1, {n}]")
        return best_sums_kernel(self.sorted, self.prefix, R, 1.0 / R, k0)

    def best_sums_grid(
        self, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`best_sums` for a whole grid of set sizes at once.

        Returns ``(sums, starts)`` of shape ``(len(Rs), k)``: entry ``[i, j]``
        is the best deviation (and a start achieving it) of column ``j`` at
        set size ``Rs[i]``.  Every element goes through exactly the same
        binary-search trajectory and window-sum arithmetic as the per-``R``
        :meth:`best_sums` call, so the values are bitwise identical — the
        difference is purely mechanical: one vectorized search over the
        ``(R, column)`` grid instead of ``len(Rs)`` Python-level calls, which
        is what makes per-snapshot rescans affordable for the dynamic-network
        tracker (:mod:`repro.dynamic`).
        """
        Rs = np.asarray(Rs, dtype=np.int64)
        if Rs.ndim != 1 or Rs.size == 0:
            raise ValueError("Rs must be a non-empty 1-D array of set sizes")
        n, k = self.n, self.k
        if Rs.min() < 1 or Rs.max() > n:
            raise ValueError(f"set sizes out of range [1, {n}]")
        cs = 1.0 / Rs
        if k0 is None:
            k0 = self.split_points(cs)
        k0 = np.asarray(k0, dtype=np.int64)
        if k0.shape != (Rs.size, k):
            raise ValueError("k0 must have shape (len(Rs), k)")
        return best_sums_grid_kernel(self.sorted, self.prefix, Rs, cs, k0)

    def deviation_lower_bounds(
        self, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> np.ndarray:
        """Search-free lower bounds on :meth:`best_sums_grid`'s minima:
        a ``(len(Rs), k)`` array with entry ``[i, j] ≤ min_start
        Σ_{u∈window} |p_j(u) − 1/Rs[i]|``, in ``O(1)`` per pair straight
        from the prefix sums.

        Three bounds are combined, each valid for *every* window of the
        sorted column: (a) ``Σ|p − c| ≥ |mass(S) − cR|``, and window masses
        range between the lightest (leftmost) and heaviest (rightmost)
        windows; (b) the below-``c`` part ``Σ (c − p)⁺`` is a window sum of
        a non-increasing sequence, so the rightmost window minimizes it;
        (c) symmetrically, the leftmost window minimizes the above-``c``
        part.  Deviations from the exact minima are pure summation roundoff
        (``≪`` the engine's verification slack), so a "bound < cutoff →
        verify exactly" prefilter — the dynamic tracker's re-scan
        (:mod:`repro.dynamic.tracker`) — can never miss a firing ``(t, R)``
        pair: it trades a handful of extra exact verifications for skipping
        the per-pair window search entirely.
        """
        Rs = np.asarray(Rs, dtype=np.int64)
        if Rs.ndim != 1 or Rs.size == 0:
            raise ValueError("Rs must be a non-empty 1-D array of set sizes")
        n, k = self.n, self.k
        if Rs.min() < 1 or Rs.max() > n:
            raise ValueError(f"set sizes out of range [1, {n}]")
        cs = 1.0 / Rs
        if k0 is None:
            k0 = self.split_points(cs)
        k0 = np.asarray(k0, dtype=np.int64)
        if k0.shape != (Rs.size, k):
            raise ValueError("k0 must have shape (len(Rs), k)")
        return deviation_lower_bounds_kernel(self.prefix, Rs, cs, k0)


class BatchedDegreeDeviationOracle:
    """Degree-target (stationary-weighted) deviation queries over a block.

    The degree-proportional variant of Definition 2 targets
    ``π_S(v) = d(v)/µ(S)``; the single-source reference is the fixed-point
    heuristic ``repro.walks.local_mixing._degree_target_best`` (mean-degree
    volume guess → pick the ``R`` smallest residuals → recompute ``µ(S)``,
    up to four rounds, keeping the best value seen).  This oracle runs that
    heuristic for **all k columns at once** as an exact vectorized
    transcript: the residual block is sorted column-wise with the same
    stable order, the gathers are transposed to ``(k, R)`` C-contiguous
    layout so every row sum uses numpy's pairwise reduction over the same
    ``R`` values in the same order as the 1-D call, and per-column
    convergence freezes a column exactly where the scalar loop would
    ``break`` — so :meth:`best_sums` is **bitwise equal** to ``k``
    independent ``_degree_target_best`` calls.

    On a regular graph the degree target collapses to the uniform one, and
    the heuristic reduces to the uniform window optimum.

    Parameters
    ----------
    P:
        Block of ``k`` distributions, one per column (non-negative).
    degrees:
        Degree vector of the graph, ``float64`` (the reference loop casts
        with ``g.degrees.astype(np.float64)`` — pass the same cast).
    sources:
        Optional source node per column; required for
        ``require_source=True`` queries (the constraint pins each column's
        own source inside its set).
    """

    #: Fixed-point rounds — must match ``_degree_target_best``'s default.
    ITERS = 4

    def __init__(
        self,
        P: np.ndarray,
        degrees: np.ndarray,
        *,
        sources=None,
    ):
        P = np.asarray(P, dtype=np.float64)
        if P.ndim != 2:
            raise ValueError("P must be an (n, k) block, one column per source")
        self.n, self.k = P.shape
        degrees = np.asarray(degrees, dtype=np.float64)
        if degrees.shape != (self.n,):
            raise ValueError("degrees must be a length-n vector")
        self._P = P
        self.degrees = degrees
        self._mean_degree = float(degrees.mean())
        if sources is None:
            self._src = None
        else:
            src = np.asarray(list(sources), dtype=np.int64)
            if src.shape != (self.k,):
                raise ValueError("need one source per column")
            if src.size and (src.min() < 0 or src.max() >= self.n):
                raise ValueError("source out of range")
            self._src = src

    def best_sums(self, R: int, *, require_source: bool = False) -> np.ndarray:
        """Per column, the fixed-point heuristic's best
        ``Σ_{v∈S} |p(v) − d(v)/µ(S)|`` over sets of size ``R`` — bitwise
        equal to the per-source ``_degree_target_best`` transcript (see the
        class docstring for why).  With ``require_source=True`` each
        column's own source is forced into its set (the oracle must have
        been built with ``sources``)."""
        n, k = self.n, self.k
        if not 1 <= R <= n:
            raise ValueError(f"R={R} out of range [1, {n}]")
        if require_source and self._src is None:
            raise ValueError("oracle built without sources")
        P, d = self._P, self.degrees
        mu = np.full(k, R * self._mean_degree)
        best = np.full(k, np.inf)
        alive = np.arange(k)
        for _ in range(self.ITERS):
            Pa = P[:, alive]
            resid = np.abs(Pa - d[:, None] / mu[alive][None, :])
            if require_source:
                resid[self._src[alive], np.arange(alive.size)] = -1.0
            idx = np.argsort(resid, axis=0, kind="stable")[:R]
            # (k, R) C-contiguous gathers: the axis-1 pairwise sums then
            # reduce the same R values in the same order as the scalar
            # loop's 1-D sums — bitwise equal results.
            dg = np.ascontiguousarray(d[idx].T)
            mu_new = dg.sum(axis=1)
            pg = np.ascontiguousarray(Pa[idx, np.arange(alive.size)[None, :]].T)
            val = np.abs(pg - dg / mu_new[:, None]).sum(axis=1)
            best[alive] = np.minimum(best[alive], val)
            converged = np.abs(mu_new - mu[alive]) < 1e-12
            mu[alive] = mu_new
            alive = alive[~converged]
            if alive.size == 0:
                break
        return best

    def best_sums_grid(
        self, Rs: np.ndarray, *, require_source: bool = False
    ) -> np.ndarray:
        """:meth:`best_sums` for a whole grid of set sizes: a
        ``(len(Rs), k)`` array, row ``i`` bitwise equal to
        ``best_sums(Rs[i])``.  Each set size runs its own fixed point, so
        the fusion here is per-``R`` column vectorization (the degree
        residuals pivot on ``µ``, which differs per size — there is no
        shared sort to amortize across sizes the way the uniform oracle
        does)."""
        Rs = np.asarray(Rs, dtype=np.int64)
        if Rs.ndim != 1 or Rs.size == 0:
            raise ValueError("Rs must be a non-empty 1-D array of set sizes")
        if Rs.min() < 1 or Rs.max() > self.n:
            raise ValueError(f"set sizes out of range [1, {self.n}]")
        out = np.empty((Rs.size, self.k), dtype=np.float64)
        for i, R in enumerate(Rs):
            out[i] = self.best_sums(int(R), require_source=require_source)
        return out
