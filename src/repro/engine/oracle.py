"""Batched uniform-deviation queries over a block of distributions.

The single-source :class:`~repro.walks.local_mixing.UniformDeviationOracle`
sorts one ``p`` and scans every length-``R`` window of the sorted copy.  The
batched oracle sorts **all k columns at once** (``np.sort(P, axis=0)`` +
column-wise prefix sums) and answers ``min_{|S|=R} Σ_{u∈S} |p(u) − 1/R|``
for every column per ``(t, R)`` grid point without the window scan:

The window sum ``F(start)`` over the sorted column is *unimodal* in
``start``.  Writing ``x_j = |sorted_j − c|`` with ``c = 1/R``,
``F(start+1) − F(start) = x[start+R] − x[start]``; ``x`` decreases until the
sorted values cross ``c`` and increases after, so the difference is ``≤ 0``
while the window sits below the crossing, is monotone
(``sorted[start] + sorted[start+R] − 2c``) while it straddles, and is
``≥ 0`` past it.  The first start where the monotone predicate

    start ≥ k0   or   (start + R ≥ k0  and  sorted[start] + sorted[start+R] ≥ 2c)

holds (``k0`` = number of sorted entries below ``c``) is therefore a
minimizer, and a vectorized binary search finds it for all ``k`` columns in
``O(k log n)`` — versus ``O(k·(n−R))`` for the scan.

Floating-point caveat: the minimum *value* is evaluated with exactly the
single-source oracle's arithmetic at the bracketed start, but when exact
ties make the window-sum profile flat, the bracketed start can differ from
``np.argmin``'s pick by a few ulps of ``F``.  Callers that need decisions
bitwise-identical to the per-source loop (the batch drivers do) re-verify
near-threshold hits with the exact single-source oracle; see
:mod:`repro.engine.batch`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BatchedUniformDeviationOracle"]


class BatchedUniformDeviationOracle:
    """Answers best-deviation queries for every column of an ``n × k`` block.

    Parameters
    ----------
    P:
        Block of ``k`` distributions, one per column (non-negative).
    """

    def __init__(self, P: np.ndarray):
        P = np.asarray(P, dtype=np.float64)
        if P.ndim != 2:
            raise ValueError("P must be an (n, k) block, one column per source")
        self.n, self.k = P.shape
        #: Column-wise ascending sort of the block, shape ``(n, k)``.
        self.sorted = np.sort(P, axis=0)
        #: Column-wise prefix sums with a leading zero row, shape ``(n+1, k)``.
        self.prefix = np.vstack(
            [np.zeros((1, self.k)), np.cumsum(self.sorted, axis=0)]
        )
        self._cols = np.arange(self.k)

    def split_points(self, cs: np.ndarray) -> np.ndarray:
        """``k0`` for each target value: entry ``[i, j]`` is the number of
        sorted values of column ``j`` strictly below ``cs[i]`` (the
        ``searchsorted`` split the window formula pivots on)."""
        cs = np.asarray(cs, dtype=np.float64)
        out = np.empty((cs.size, self.k), dtype=np.int64)
        for j in range(self.k):
            out[:, j] = np.searchsorted(self.sorted[:, j], cs)
        return out

    def best_sums(
        self, R: int, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(sums, starts)`` for set size ``R``: per column, the minimum of
        ``Σ_{j∈[start, start+R)} |sorted_j − 1/R|`` over window starts and a
        start achieving it (the bracketed minimizer; see module docstring).
        """
        n, k = self.n, self.k
        if not 1 <= R <= n:
            raise ValueError(f"R={R} out of range [1, {n}]")
        c = 1.0 / R
        S, pre, cols = self.sorted, self.prefix, self._cols
        if k0 is None:
            k0 = (S < c).sum(axis=0)
        # Vectorized binary search for the first start where the window-sum
        # difference turns non-negative; W-1 is the "all differences
        # negative" sentinel.
        W = n - R + 1
        lo = np.zeros(k, dtype=np.int64)
        hi = np.full(k, W - 1, dtype=np.int64)
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = np.where(active, (lo + hi) >> 1, 0)
            s_lo = S[mid, cols]
            s_hi = S[mid + R, cols]
            pred = (mid >= k0) | ((mid + R >= k0) & (s_lo + s_hi >= 2.0 * c))
            hi = np.where(active & pred, mid, hi)
            lo = np.where(active & ~pred, mid + 1, lo)
        start = lo
        # Evaluate the window sum at the bracketed start with the exact
        # arithmetic of UniformDeviationOracle._window_sums.
        kk = np.clip(k0, start, start + R)
        gather = pre[kk, cols]
        p_lo = pre[start, cols]
        p_hi = pre[start + R, cols]
        below = c * (kk - start) - (gather - p_lo)
        above = (p_hi - gather) - c * (R - (kk - start))
        return below + above, start

    def best_sums_grid(
        self, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`best_sums` for a whole grid of set sizes at once.

        Returns ``(sums, starts)`` of shape ``(len(Rs), k)``: entry ``[i, j]``
        is the best deviation (and a start achieving it) of column ``j`` at
        set size ``Rs[i]``.  Every element goes through exactly the same
        binary-search trajectory and window-sum arithmetic as the per-``R``
        :meth:`best_sums` call, so the values are bitwise identical — the
        difference is purely mechanical: one vectorized search over the
        ``(R, column)`` grid instead of ``len(Rs)`` Python-level calls, which
        is what makes per-snapshot rescans affordable for the dynamic-network
        tracker (:mod:`repro.dynamic`).
        """
        Rs = np.asarray(Rs, dtype=np.int64)
        if Rs.ndim != 1 or Rs.size == 0:
            raise ValueError("Rs must be a non-empty 1-D array of set sizes")
        n, k = self.n, self.k
        if Rs.min() < 1 or Rs.max() > n:
            raise ValueError(f"set sizes out of range [1, {n}]")
        cs = 1.0 / Rs
        if k0 is None:
            k0 = self.split_points(cs)
        k0 = np.asarray(k0, dtype=np.int64)
        if k0.shape != (Rs.size, k):
            raise ValueError("k0 must have shape (len(Rs), k)")
        S, pre, cols = self.sorted, self.prefix, self._cols[None, :]
        R_col = Rs[:, None]
        c_col = cs[:, None]
        lo = np.zeros((Rs.size, k), dtype=np.int64)
        hi = np.broadcast_to(n - R_col, lo.shape).copy()  # W - 1 per row
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = np.where(active, (lo + hi) >> 1, 0)
            s_lo = S[mid, cols]
            # Active positions satisfy mid + R <= n - 1; inactive ones are
            # don't-cares whose gather index merely needs to stay in bounds.
            s_hi = S[np.minimum(mid + R_col, n - 1), cols]
            pred = (mid >= k0) | (
                (mid + R_col >= k0) & (s_lo + s_hi >= 2.0 * c_col)
            )
            hi = np.where(active & pred, mid, hi)
            lo = np.where(active & ~pred, mid + 1, lo)
        start = lo
        kk = np.clip(k0, start, start + R_col)
        gather = pre[kk, cols]
        p_lo = pre[start, cols]
        p_hi = pre[start + R_col, cols]
        below = c_col * (kk - start) - (gather - p_lo)
        above = (p_hi - gather) - c_col * (R_col - (kk - start))
        return below + above, start

    def deviation_lower_bounds(
        self, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> np.ndarray:
        """Search-free lower bounds on :meth:`best_sums_grid`'s minima:
        a ``(len(Rs), k)`` array with entry ``[i, j] ≤ min_start
        Σ_{u∈window} |p_j(u) − 1/Rs[i]|``, in ``O(1)`` per pair straight
        from the prefix sums.

        Three bounds are combined, each valid for *every* window of the
        sorted column: (a) ``Σ|p − c| ≥ |mass(S) − cR|``, and window masses
        range between the lightest (leftmost) and heaviest (rightmost)
        windows; (b) the below-``c`` part ``Σ (c − p)⁺`` is a window sum of
        a non-increasing sequence, so the rightmost window minimizes it;
        (c) symmetrically, the leftmost window minimizes the above-``c``
        part.  Deviations from the exact minima are pure summation roundoff
        (``≪`` the engine's verification slack), so a "bound < cutoff →
        verify exactly" prefilter — the dynamic tracker's re-scan
        (:mod:`repro.dynamic.tracker`) — can never miss a firing ``(t, R)``
        pair: it trades a handful of extra exact verifications for skipping
        the per-pair window search entirely.
        """
        Rs = np.asarray(Rs, dtype=np.int64)
        if Rs.ndim != 1 or Rs.size == 0:
            raise ValueError("Rs must be a non-empty 1-D array of set sizes")
        n, k = self.n, self.k
        if Rs.min() < 1 or Rs.max() > n:
            raise ValueError(f"set sizes out of range [1, {n}]")
        cs = 1.0 / Rs
        if k0 is None:
            k0 = self.split_points(cs)
        k0 = np.asarray(k0, dtype=np.int64)
        if k0.shape != (Rs.size, k):
            raise ValueError("k0 must have shape (len(Rs), k)")
        pre, cols = self.prefix, self._cols[None, :]
        R_col = Rs[:, None]
        c_col = cs[:, None]
        target = c_col * R_col  # cR (≈ 1, kept in float for safety)
        top = pre[n][None, :] - pre[n - R_col, cols]  # heaviest window mass
        bot = pre[R_col, cols]  # lightest window mass
        # (a) |mass − cR| over the feasible mass range.
        b_mass = np.maximum(target - top, bot - target)
        # (b) below-c part of the rightmost window.
        m2 = np.clip(k0 - (n - R_col), 0, R_col)
        b_below = c_col * m2 - (pre[(n - R_col) + m2, cols] - pre[n - R_col, cols])
        # (c) above-c part of the leftmost window.
        a3 = np.minimum(k0, R_col)
        b_above = (bot - pre[a3, cols]) - c_col * (R_col - a3)
        out = np.maximum(b_mass, np.maximum(b_below, b_above))
        return np.maximum(out, 0.0)
