"""Pluggable compute backends for the engine's hot loops.

The batched drivers dispatch their two hot loops — block propagation and
the column-sorted deviation scan — through a
:class:`~repro.engine.backends.base.KernelBackend` resolved by
:func:`~repro.engine.backends.registry.get_backend`.  Shipped backends:

``reference``
    The original float64 numpy path (the default and the equivalence
    anchor every other backend is tested against).
``float32``
    Mixed precision: float32 screening scan over the float64 trajectory,
    with an additive screening slack that makes under-flagging impossible
    — results stay bitwise identical to the reference.
``numba``
    JIT-compiled search kernels; registered only when numba is importable
    (install the package with the ``[fast]`` extra), absent otherwise.

Select a backend per call (``backend="float32"``), per process
(:func:`set_default_backend`), or per environment (``REPRO_BACKEND``).
Whatever the choice, every result is bitwise identical to the reference
loop — the backend knob partitions *work*, never results, which is why
the serving layer excludes it from cache keys.
"""

from __future__ import annotations

from repro.engine.backends.base import KernelBackend, ScanBlock
from repro.engine.backends.float32 import Float32Backend
from repro.engine.backends.reference import ReferenceBackend
from repro.engine.backends.registry import (
    BACKEND_ENV,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)

__all__ = [
    "BACKEND_ENV",
    "Float32Backend",
    "KernelBackend",
    "NumbaBackend",
    "ReferenceBackend",
    "ScanBlock",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
]

register_backend(ReferenceBackend())
register_backend(Float32Backend())

try:  # pragma: no cover - exercised only where numba is installed
    from repro.engine.backends._numba import NumbaBackend
except ImportError:  # clean degradation: the optional dependency is absent
    NumbaBackend = None
else:  # pragma: no cover
    register_backend(NumbaBackend())
