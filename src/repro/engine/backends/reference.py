"""The ``reference`` backend: the engine's original float64 numpy path.

This is a pure extraction — :class:`ReferenceBackend` delegates to exactly
the kernels :class:`~repro.engine.oracle.BatchedUniformDeviationOracle`
uses (``np.sort`` + ``np.cumsum`` scan, vectorized bracket search, fused
lower bounds), so a driver running on it performs bitwise the arithmetic
the pre-seam engine performed.  Every other backend is tested for
equality against results produced through this one (and, transitively,
against the per-source reference loop)."""

from __future__ import annotations

from repro.engine.backends.base import KernelBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Float64 numpy kernels — the default and the equivalence anchor.

    ``exact_scan=True``: the scan arrays *are* the exact oracle's, so the
    drivers evaluate flagged pairs straight off them with the shared
    window formula (no per-column re-sort)."""

    name = "reference"
