"""Backend registry: name → :class:`~repro.engine.backends.KernelBackend`.

Resolution order for ``get_backend(None)`` (what every driver does when
the caller passes ``backend=None``):

1. the process default installed with :func:`set_default_backend`,
2. the ``REPRO_BACKEND`` environment variable,
3. ``"reference"``.

Unknown names raise a :class:`ValueError` listing the registered names —
*at the front door*, in the parent process: the batched drivers validate
the backend in their shared ``_prepare_*_call`` heads before sources are
normalized, and :class:`~repro.parallel.ShardExecutor` validates its
``backend`` argument before any worker is spawned, so a typo never
surfaces as a worker crash."""

from __future__ import annotations

import os
import threading

__all__ = [
    "BACKEND_ENV",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
]

#: Environment variable naming the default backend (checked when no
#: process default was installed with :func:`set_default_backend`).
BACKEND_ENV = "REPRO_BACKEND"

_registry: dict = {}
_default_name: str | None = None
_lock = threading.RLock()


def register_backend(backend, *, replace: bool = False):
    """Register a backend instance under its ``name`` attribute and return
    it.  Re-registering a taken name raises unless ``replace=True`` (so a
    typo'd custom backend cannot silently shadow a shipped one)."""
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name or name != name.strip():
        raise ValueError(
            "backend must carry a non-empty string `name` attribute, got "
            f"{name!r}"
        )
    for method in ("step_block", "sorted_scan", "deviation_lower_bounds"):
        if not callable(getattr(backend, method, None)):
            raise ValueError(
                f"backend {name!r} does not implement the KernelBackend "
                f"interface (missing {method})"
            )
    with _lock:
        if not replace and name in _registry:
            raise ValueError(
                f"backend {name!r} is already registered "
                "(pass replace=True to override)"
            )
        _registry[name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted (``"numba"`` appears only when
    the optional dependency imported cleanly)."""
    with _lock:
        return tuple(sorted(_registry))


def _lookup(name: str):
    with _lock:
        backend = _registry.get(name)
    if backend is None:
        hint = ""
        if name == "numba":
            hint = (
                " (the numba backend needs the optional dependency: "
                "pip install the package with the [fast] extra)"
            )
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}{hint}"
        )
    return backend


def get_backend(backend=None):
    """Resolve a backend argument to a :class:`KernelBackend` instance.

    ``None`` follows the default chain (module docstring); a string is
    looked up in the registry (unknown names raise :class:`ValueError`); a
    backend instance passes through unchanged.  This is the validation
    front door every driver, the executor, the tracker and the serving
    layer's knob canonicalization share."""
    if backend is None:
        with _lock:
            name = _default_name
        if name is None:
            name = os.environ.get(BACKEND_ENV, "").strip() or "reference"
        return _lookup(name)
    if isinstance(backend, str):
        if not backend.strip():
            raise ValueError("backend name must be a non-empty string")
        return _lookup(backend)
    if callable(getattr(backend, "step_block", None)) and callable(
        getattr(backend, "sorted_scan", None)
    ):
        return backend
    raise TypeError(
        "backend must be None, a registered backend name, or a "
        f"KernelBackend instance, got {type(backend).__name__}"
    )


def set_default_backend(name: str | None) -> str | None:
    """Install the process-default backend by registered name (validated
    eagerly; unknown names raise) and return it; ``None`` resets to the
    environment/``"reference"`` chain.  This is what
    :class:`~repro.parallel.ShardExecutor` forwards to workers on spawn so
    shard solves default to the parent's backend."""
    global _default_name
    if name is None:
        with _lock:
            _default_name = None
        return None
    if not isinstance(name, str):
        raise TypeError(
            "set_default_backend takes a registered backend name or None, "
            f"got {type(name).__name__}"
        )
    backend = _lookup(name)
    with _lock:
        _default_name = backend.name
    return backend.name
