"""The ``float32`` mixed-precision backend.

Precision is traded only where the loop-equivalence contract permits it:
the **screening scan** (sort, prefix sums, window kernels) runs in
float32 from a one-time per-step cast, while block propagation stays
float64 — near-threshold verification re-decides every flagged pair
against the exact float64 trajectory, so a float32 trajectory would
change *verified* deviations and break bitwise equality, whereas a
float32 screen can only change *which* pairs get verified.

Soundness of the screening margin
---------------------------------
A screening value computed here may sit below **or above** the exact
float64 minimum by accumulated float32 rounding:

* casting ``p`` to float32 perturbs each entry by ≤ ``eps32 · p(u)``
  (total L1 perturbation ≤ ``eps32``, and order statistics / window sums
  are 1-Lipschitz in that perturbation);
* each prefix-sum entry carries ≤ ``n · eps32`` of summation error
  (masses are ≤ 1);
* each window kernel combines ≤ 3 prefix entries, 2 products and the
  target ``cR ≈ 1``, adding a small multiple of ``eps32``.

A generous bound on the total is ``4 n · eps32``;
:meth:`Float32Backend.screen_slack` returns ``16 n · eps32`` (4× margin,
≈ ``7.6e-4`` at ``n = 400`` — negligible next to the default threshold
``ε = 0.125``).  The drivers widen the verification cutoff by this slack,
so under-flagging is impossible by construction and over-flagging merely
costs a few extra exact verifications.

``exact_scan=False``: the float32 scan cannot feed exact evaluation, so
the drivers rebuild a per-column float64
:class:`~repro.walks.local_mixing.UniformDeviationOracle` for flagged
columns — bitwise the per-source loop's arithmetic.  The degree-
proportional target has no lower-bound screen to begin with (its
prefilter *is* the exact fixed-point transcript), so ``target="degree"``
runs identically under every backend.
"""

from __future__ import annotations

import numpy as np

from repro.engine.backends.base import KernelBackend

__all__ = ["Float32Backend"]

_EPS32 = float(np.finfo(np.float32).eps)


class Float32Backend(KernelBackend):
    """Float32 screening scan over the float64 trajectory (see the module
    docstring for the precision split and the slack derivation)."""

    name = "float32"
    dtype = np.float32
    exact_scan = False

    def screen_slack(self, n: int) -> float:
        """``16 n · eps32`` — a 4× margin over the worst-case float32
        rounding of a screening value (module docstring)."""
        return 16.0 * n * _EPS32
