"""The :class:`KernelBackend` interface — the engine's compute seam.

The batched drivers touch exactly two hot loops: block propagation (one
sparse mat-mat per walk step) and the column-sorted deviation scan (sort +
prefix sums + the window kernels of :mod:`repro.engine.oracle`).  A
backend packages both behind a narrow, swappable interface:

``step_block``
    One walk step for the whole block.  Every shipped backend keeps this
    in float64: the exact trajectory is what near-threshold verification
    anchors on, so trading its precision would change *verified* results
    and break the loop-equivalence contract (see below).
``sorted_scan`` / ``split_points`` / ``best_sums`` / ``best_sums_grid`` /
``deviation_lower_bounds``
    The screening scan.  This is where precision may be traded: the
    drivers use these values only to decide *which* ``(t, R, column)``
    pairs to hand to the exact float64 oracle, never to report a
    deviation.

Loop-equivalence contract
-------------------------
Every backend must produce results — τ, set size, deviation, counters —
bitwise identical to the per-source reference loop.  The drivers enforce
this structurally: a screening value below
``threshold · (1 + slack) + screen_slack(n)`` is re-decided by the exact
float64 arithmetic, so a backend only has to guarantee it never
*under-flags* — its screening value for a pair must never exceed the
exact minimum by more than :meth:`KernelBackend.screen_slack`.  For the
float64 reference that margin is ``0``; the float32 backend derives its
margin from a worst-case rounding analysis (see
:class:`~repro.engine.backends.float32.Float32Backend`).

``exact_scan`` tells the drivers whether :meth:`KernelBackend.sorted_scan`
returned the bitwise float64 scan: when true they evaluate exact window
minima straight off the scan arrays (cheap); when false they rebuild a
per-column float64 oracle for flagged columns.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.engine.oracle import (
    best_sums_grid_kernel,
    best_sums_kernel,
    deviation_lower_bounds_kernel,
    sorted_scan_arrays,
    split_points_kernel,
)

__all__ = ["KernelBackend", "ScanBlock"]


class ScanBlock(NamedTuple):
    """A backend's screening scan of one distribution block: the
    column-wise ascending ``sorted`` copy ``(n, k)`` and its prefix sums
    ``prefix`` ``(n+1, k)`` with a leading zero row, both in the backend's
    scan dtype."""

    sorted: np.ndarray
    prefix: np.ndarray


class KernelBackend:
    """Base implementation of the backend interface: numpy kernels
    parameterized by the scan dtype (see the module docstring for the
    contract every backend must satisfy).

    Subclasses customize by overriding :attr:`dtype` / :attr:`exact_scan`
    / :meth:`screen_slack` (the mixed-precision path) or by replacing the
    kernel methods outright (the numba path)."""

    #: Registry name; subclasses must override.
    name: str = "base"
    #: Precision of the screening scan.
    dtype = np.float64
    #: True iff :meth:`sorted_scan` returns the bitwise float64 scan (the
    #: drivers then evaluate exact minima straight off the scan arrays).
    exact_scan: bool = True

    def screen_slack(self, n: int) -> float:
        """Additive screening margin for an ``n``-node graph: the most a
        screening value may exceed the exact float64 minimum.  The drivers
        widen the verification cutoff by this much, so a larger slack only
        costs extra exact verifications — never a missed hit."""
        return 0.0

    def step_block(self, A, P: np.ndarray) -> np.ndarray:
        """One walk step for the whole block: ``A @ P`` in float64 (kept
        exact for every shipped backend — see the module docstring)."""
        return A @ P

    def inverse_sizes(self, Rs: np.ndarray) -> np.ndarray:
        """The target values ``1/R`` for a grid of set sizes, computed in
        the scan dtype (for float64 this is bitwise the reference
        ``1.0 / Rs``)."""
        Rs = np.asarray(Rs, dtype=np.int64)
        dt = np.dtype(self.dtype).type
        return dt(1.0) / Rs.astype(self.dtype)

    def sorted_scan(self, P: np.ndarray) -> ScanBlock:
        """Build the screening scan of a block in the backend's dtype."""
        S, pre = sorted_scan_arrays(P, dtype=self.dtype)
        return ScanBlock(S, pre)

    def split_points(self, scan: ScanBlock, cs: np.ndarray) -> np.ndarray:
        """Per target value and column, the count of sorted entries
        strictly below the target (the ``k0`` splits the window kernels
        pivot on)."""
        return split_points_kernel(scan.sorted, cs)

    def best_sums(
        self, scan: ScanBlock, R: int, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per column, the bracketed window minimum at set size ``R`` as
        ``(sums, starts)`` — the ``prefilter="per_size"`` screen."""
        n = scan.sorted.shape[0]
        if not 1 <= R <= n:
            raise ValueError(f"R={R} out of range [1, {n}]")
        return best_sums_kernel(scan.sorted, scan.prefix, R, 1.0 / R, k0)

    def best_sums_grid(
        self, scan: ScanBlock, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`best_sums` fused over the whole ``(R, column)`` grid."""
        Rs = np.asarray(Rs, dtype=np.int64)
        cs = self.inverse_sizes(Rs)
        if k0 is None:
            k0 = self.split_points(scan, cs)
        return best_sums_grid_kernel(scan.sorted, scan.prefix, Rs, cs, k0)

    def deviation_lower_bounds(
        self, scan: ScanBlock, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> np.ndarray:
        """Search-free lower bounds over the ``(R, column)`` grid — the
        default fused screen."""
        Rs = np.asarray(Rs, dtype=np.int64)
        cs = self.inverse_sizes(Rs)
        if k0 is None:
            k0 = self.split_points(scan, cs)
        return deviation_lower_bounds_kernel(scan.prefix, Rs, cs, k0)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"dtype={np.dtype(self.dtype).name}, exact_scan={self.exact_scan})"
        )
