"""The optional ``numba`` backend: JIT-compiled deviation-scan kernels.

Importing this module requires numba (install the package with the
``[fast]`` extra); :mod:`repro.engine.backends` catches the
:class:`ImportError` and simply skips registration, so the backend
degrades cleanly to absence — ``available_backends()`` does not list it
and ``get_backend("numba")`` raises with an install hint.

The jitted kernels replace the *search* stages — ``split_points`` (the
per-column Python loop over ``searchsorted`` is the measured hot spot of
the fused screen), the grid bracket search and the fused lower bounds —
with tight scalar loops; the scan itself stays numpy (``np.sort`` /
``np.cumsum`` are already native).  Every loop mirrors the numpy kernels'
scalar arithmetic order exactly and compiles under numba's default
IEEE-strict semantics (no fastmath), so values match the reference
bitwise; even a stray ulp would be harmless because flagged pairs are
re-decided by the exact float64 oracle under the engine's verification
slack.  ``exact_scan`` stays ``True``: the scan arrays are the bitwise
float64 scan."""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.engine.backends.base import ScanBlock
from repro.engine.backends.reference import ReferenceBackend

__all__ = ["NumbaBackend"]


@njit(cache=True)
def _nb_split_points(S, cs):
    """Per-element binary search: ``out[i, j] = searchsorted(S[:, j], cs[i])``."""
    n, k = S.shape
    out = np.empty((cs.size, k), dtype=np.int64)
    for j in range(k):
        for i in range(cs.size):
            c = cs[i]
            lo = 0
            hi = n
            while lo < hi:
                mid = (lo + hi) >> 1
                if S[mid, j] < c:
                    lo = mid + 1
                else:
                    hi = mid
            out[i, j] = lo
    return out


@njit(cache=True)
def _nb_best_sums_grid(S, pre, Rs, cs, k0):
    """Scalar transcript of the vectorized grid bracket search + window
    evaluation (same predicate, same midpoints, same arithmetic order)."""
    n, k = S.shape
    m = Rs.size
    sums = np.empty((m, k), dtype=S.dtype)
    starts = np.empty((m, k), dtype=np.int64)
    for i in range(m):
        R = Rs[i]
        c = cs[i]
        two_c = 2.0 * c
        for j in range(k):
            kj = k0[i, j]
            lo = 0
            hi = n - R  # W - 1 sentinel
            while lo < hi:
                mid = (lo + hi) >> 1
                if (mid >= kj) or (
                    (mid + R >= kj) and (S[mid, j] + S[mid + R, j] >= two_c)
                ):
                    hi = mid
                else:
                    lo = mid + 1
            start = lo
            kk = kj
            if kk < start:
                kk = start
            elif kk > start + R:
                kk = start + R
            gather = pre[kk, j]
            below = c * (kk - start) - (gather - pre[start, j])
            above = (pre[start + R, j] - gather) - c * (R - (kk - start))
            sums[i, j] = below + above
            starts[i, j] = start
    return sums, starts


@njit(cache=True)
def _nb_lower_bounds(pre, Rs, cs, k0):
    """Scalar transcript of the fused lower-bound kernel (mass range,
    rightmost-window below-part, leftmost-window above-part)."""
    n = pre.shape[0] - 1
    k = pre.shape[1]
    m = Rs.size
    out = np.empty((m, k), dtype=pre.dtype)
    for i in range(m):
        R = Rs[i]
        c = cs[i]
        target = c * R
        for j in range(k):
            top = pre[n, j] - pre[n - R, j]
            bot = pre[R, j]
            b = target - top
            alt = bot - target
            if alt > b:
                b = alt
            m2 = k0[i, j] - (n - R)
            if m2 < 0:
                m2 = 0
            elif m2 > R:
                m2 = R
            b_below = c * m2 - (pre[(n - R) + m2, j] - pre[n - R, j])
            if b_below > b:
                b = b_below
            a3 = k0[i, j]
            if a3 > R:
                a3 = R
            b_above = (bot - pre[a3, j]) - c * (R - a3)
            if b_above > b:
                b = b_above
            if b < 0.0:
                b = 0.0
            out[i, j] = b
    return out


class NumbaBackend(ReferenceBackend):
    """Float64 scan with jitted search kernels (bitwise the reference —
    see the module docstring)."""

    name = "numba"

    def split_points(self, scan: ScanBlock, cs: np.ndarray) -> np.ndarray:
        """Jitted per-element binary search (replaces the per-column
        Python ``searchsorted`` loop)."""
        cs = np.ascontiguousarray(np.asarray(cs, dtype=scan.sorted.dtype))
        return _nb_split_points(scan.sorted, cs)

    def best_sums_grid(
        self, scan: ScanBlock, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Jitted grid bracket search (same trajectory as the vectorized
        search, element for element)."""
        Rs = np.ascontiguousarray(np.asarray(Rs, dtype=np.int64))
        cs = self.inverse_sizes(Rs)
        if k0 is None:
            k0 = self.split_points(scan, cs)
        k0 = np.ascontiguousarray(np.asarray(k0, dtype=np.int64))
        return _nb_best_sums_grid(scan.sorted, scan.prefix, Rs, cs, k0)

    def deviation_lower_bounds(
        self, scan: ScanBlock, Rs: np.ndarray, *, k0: np.ndarray | None = None
    ) -> np.ndarray:
        """Jitted fused lower bounds (same three bounds, same arithmetic
        order as the numpy kernel)."""
        Rs = np.ascontiguousarray(np.asarray(Rs, dtype=np.int64))
        cs = self.inverse_sizes(Rs)
        if k0 is None:
            k0 = self.split_points(scan, cs)
        k0 = np.ascontiguousarray(np.asarray(k0, dtype=np.int64))
        return _nb_lower_bounds(scan.prefix, Rs, cs, k0)
