"""Multi-source local-mixing drivers on the batched engine.

:func:`batched_local_mixing_times` computes ``τ_s(β,ε)`` for many sources at
once and returns, per source, the **same**
:class:`~repro.walks.local_mixing.LocalMixingResult` the per-source loop
would produce — same ``time``, ``set_size``, bitwise-equal ``deviation`` and
same bookkeeping counters.  Exactness is preserved by a two-phase check per
``(t, R)`` grid point:

1. a fast batched prefilter bounds every live column's best deviation from
   below — the default is one fused, search-free
   :meth:`~repro.engine.oracle.BatchedUniformDeviationOracle.deviation_lower_bounds`
   call per step covering the entire ``(R, column)`` grid in ``O(1)`` per
   pair (``prefilter="per_size"`` keeps the per-``R`` ``O(k log n)``
   bracket search as a reference);
2. only ``(R, column)`` pairs whose bound falls below
   ``threshold · (1 + 1e-9)`` are re-examined with the exact single-source
   arithmetic (:class:`~repro.walks.local_mixing.UniformDeviationOracle` /
   ``_degree_target_best``), whose verdict — and reported deviation — is
   what the per-source loop computes.  A lower bound can over-flag but
   never under-flag, and the bracket prefilter can exceed the exact scan
   minimum only by floating-point tie noise — orders of magnitude below the
   ``1e-9`` relative slack — so a source can never stop earlier or later
   than its per-source run.

The drivers cover the **full** knob space of the per-source functions:
``require_source=True`` is handled in-block (the unconstrained lower bound
is also valid for the source-pinned minimum, and flagged pairs are decided
by the exact constrained oracle on the column), and ``target="degree"``
runs on the bitwise-equal vectorized transcript of the per-source
fixed-point heuristic
(:class:`~repro.engine.oracle.BatchedDegreeDeviationOracle`).  Nothing
falls back to a per-source trajectory loop.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.errors import ConvergenceError
from repro.graphs.base import Graph
from repro.engine.backends import get_backend
from repro.engine.oracle import (
    BatchedDegreeDeviationOracle,
    BatchedUniformDeviationOracle,
)
from repro.engine.propagator import BlockPropagator, block_distribution_at
from repro.obs import (
    default_registry,
    kernel_profiler,
    maybe_profile,
    observability_enabled,
    trace,
)

__all__ = [
    "batched_local_mixing_times",
    "batched_local_mixing_spectra",
    "batched_local_mixing_profiles",
    "batched_mixing_times",
    "TimesKey",
    "canonical_times_key",
]

#: Relative slack above the stopping threshold under which a fast bound is
#: re-verified with the exact oracle (covers floating-point tie noise).
_VERIFY_SLACK = 1e-9


def _engine_hist():
    """The per-driver-call latency histogram on the process-global
    registry (``repro_engine_solve_seconds{backend,kind}``); recorded
    only while observability is enabled."""
    return default_registry().histogram(
        "repro_engine_solve_seconds",
        "Wall seconds per batched engine driver call.",
        labels=("backend", "kind"),
    )


def _observe_engine_span(span, backend_name: str, kind: str) -> None:
    """Feed a finished ``engine_solve`` span's duration into the driver
    latency histogram (no-op when observability was disabled and the
    span is ``None``)."""
    if span is not None and span.duration is not None:
        _engine_hist().labels(backend=backend_name, kind=kind).observe(
            span.duration
        )


def _exact_best_sum(z: np.ndarray, pre: np.ndarray, R: int) -> float:
    """``min_{|S|=R} Σ|p − 1/R|`` for one sorted column ``z`` with prefix
    sums ``pre`` — a transcript of
    :meth:`~repro.walks.local_mixing.UniformDeviationOracle.best_sum`
    (the shared :func:`~repro.walks.local_mixing.window_deviation_sums`
    formula plus the same ``argmin``), fed from the batched oracle's
    column-sorted block instead of a fresh per-column ``argsort``/``cumsum``
    (both produce bitwise-identical arrays, so the value is too)."""
    from repro.walks.local_mixing import window_deviation_sums

    starts = np.arange(z.size - R + 1)
    sums = window_deviation_sums(z, pre, R, 1.0 / R, starts)
    return float(sums[int(np.argmin(sums))])


def _normalize_sources(g: Graph, sources) -> list[int]:
    if sources is None:
        sources = range(g.n)
    out = [int(s) for s in sources]
    if not out:
        raise ValueError("need at least one source")
    if min(out) < 0 or max(out) >= g.n:
        raise ValueError("source out of range")
    return out


def _validate_schedule(schedule: str) -> None:
    if schedule not in ("all", "doubling"):
        raise ValueError(f"unknown t_schedule {schedule!r}")


def _prepare_times_call(
    g: Graph,
    beta: float,
    eps: float,
    *,
    sources,
    sizes,
    threshold_factor: float,
    grid_factor: float | None,
    t_schedule: str,
    t_max: int | None,
    lazy: bool,
    target: str,
    method: str,
    batch_size: int | None,
    prefilter: str,
    backend=None,
) -> tuple[list[int], list[int], int]:
    """Shared fail-fast validation head of the multi-source τ drivers
    (:func:`batched_local_mixing_times` and the sharded
    :func:`~repro.parallel.parallel_local_mixing_times`).

    Every knob — scalars, ``t_schedule``, ``batch_size``, ``backend`` and
    the ``sizes`` grid — is validated *before* sources are normalized or
    any candidate structure is built, so a bad call fails fast with the
    same message from every driver.  Returns
    ``(sources, candidate_sizes, t_max)``.
    """
    from repro.walks.local_mixing import _candidate_sizes, _resolve_walk_bounds

    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if beta < 1:
        raise ValueError("beta must be >= 1 (sets of size at least n/beta)")
    if threshold_factor <= 0:
        raise ValueError("threshold_factor must be positive")
    if method not in ("iterative", "spectral"):
        raise ValueError(f"unknown method {method!r}")
    if target not in ("uniform", "degree"):
        raise ValueError(f"unknown target {target!r}")
    if prefilter not in ("fused", "per_size"):
        raise ValueError(f"unknown prefilter {prefilter!r}")
    get_backend(backend)  # unknown backend names fail before normalization
    _validate_schedule(t_schedule)
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    grid_factor = eps if grid_factor is None else grid_factor
    candidates = _candidate_sizes(g.n, beta, sizes, grid_factor)
    src = _normalize_sources(g, sources)
    t_max = _resolve_walk_bounds(g, lazy, t_max)
    return src, candidates, t_max


class TimesKey(NamedTuple):
    """The canonical, hashable identity of a τ computation's *semantics*.

    Two :func:`batched_local_mixing_times` calls on the same graph whose
    knobs canonicalize to the same :class:`TimesKey` produce identical
    per-source results: the driver's decisions depend on the knobs only
    through the resolved candidate-size grid, the stopping ``threshold``
    (``eps · threshold_factor``), the step schedule / resolved ``t_max``,
    the walk operator (``lazy``) and the semantics flags — not through the
    raw ``(beta, eps, sizes, grid_factor, …)`` spellings, nor through the
    execution-only knobs ``batch_size`` and ``prefilter`` (which the
    loop-equivalence contract guarantees cannot change any output).  The
    serving layer's :class:`~repro.service.ResultCache` keys on
    ``(graph, source, TimesKey)`` for exactly this reason.
    """

    sizes: tuple[int, ...]
    threshold: float
    t_schedule: str
    t_max: int
    lazy: bool
    require_source: bool
    target: str
    method: str


def canonical_times_key(
    g: Graph,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    sizes: str | list[int] = "all",
    threshold_factor: float = 1.0,
    grid_factor: float | None = None,
    t_schedule: str = "all",
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
    target: str = "uniform",
    method: str = "iterative",
    batch_size: int | None = None,
    prefilter: str = "fused",
    backend: str | None = None,
) -> TimesKey:
    """Validate a full :func:`batched_local_mixing_times` knob set against
    ``g`` and collapse it to its canonical :class:`TimesKey`.

    Runs the same fail-fast validation head as the drivers
    (:func:`_prepare_times_call` — so a bad knob raises here with the same
    message it would raise from the engine), then resolves every
    graph-dependent default: ``sizes``/``beta``/``grid_factor`` become the
    explicit candidate-size tuple, ``eps``/``threshold_factor`` the stopping
    threshold, and ``t_max`` its resolved walk bound.  ``batch_size``,
    ``prefilter`` and ``backend`` are validated but deliberately *absent*
    from the key — they partition work, never change results (for
    ``backend`` that is the loop-equivalence contract of
    :mod:`repro.engine.backends`), so they must never fragment cache
    lines keyed by this identity.
    """
    # sources=[0]: the key is source-independent, and normalizing the
    # default all-sources list would cost O(n) per key computation (the
    # serving layer derives one key per submitted query).
    _, candidates, t_max = _prepare_times_call(
        g,
        beta,
        eps,
        sources=[0],
        sizes=sizes,
        threshold_factor=threshold_factor,
        grid_factor=grid_factor,
        t_schedule=t_schedule,
        t_max=t_max,
        lazy=lazy,
        target=target,
        method=method,
        batch_size=batch_size,
        prefilter=prefilter,
        backend=backend,
    )
    return TimesKey(
        sizes=tuple(int(r) for r in candidates),
        threshold=float(eps * threshold_factor),
        t_schedule=t_schedule,
        t_max=int(t_max),
        lazy=bool(lazy),
        require_source=bool(require_source),
        target=target,
        method=method,
    )


def _prepare_profiles_call(
    g: Graph,
    beta: float,
    *,
    sources,
    sizes,
    grid_factor: float,
    t_max: int,
    backend=None,
) -> tuple[list[int], list[int]]:
    """Fail-fast validation head of the profile drivers (batched and
    parallel): ``beta``, the ``sizes`` grid, ``t_max`` and ``backend`` are
    checked before sources are normalized.  Returns
    ``(sources, candidate_sizes)``.
    """
    from repro.walks.local_mixing import _candidate_sizes

    if beta < 1:
        raise ValueError("beta must be >= 1 (sets of size at least n/beta)")
    get_backend(backend)
    candidates = _candidate_sizes(g.n, beta, sizes, grid_factor)
    if t_max < 0:
        raise ValueError("t_max must be non-negative")
    src = _normalize_sources(g, sources)
    return src, candidates


def _prepare_spectra_call(
    g: Graph,
    eps: float,
    *,
    sources,
    sizes: list[int] | None,
    grid_factor: float | None,
    t_max: int | None,
    lazy: bool,
    method: str,
    backend=None,
) -> tuple[list[int], list[int], int]:
    """Fail-fast validation head of the spectrum drivers (batched and
    parallel): knobs — including the explicit ``sizes`` list and the
    ``backend`` — are checked before sources are normalized.  Returns
    ``(sources, sizes, t_max)``."""
    from repro.walks.local_mixing import _resolve_walk_bounds, size_grid

    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if method not in ("iterative", "spectral"):
        raise ValueError(f"unknown method {method!r}")
    get_backend(backend)
    if sizes is None:
        sizes = size_grid(g.n, g.n, eps if grid_factor is None else grid_factor)
    else:
        sizes = sorted(set(int(s) for s in sizes))
        if not sizes or sizes[0] < 1 or sizes[-1] > g.n:
            raise ValueError("sizes out of range")
    src = _normalize_sources(g, sources)
    t_max = _resolve_walk_bounds(g, lazy, t_max)
    return src, sizes, t_max


def batched_local_mixing_times(
    g: Graph,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    sources: Sequence[int] | None = None,
    sizes: str | list[int] = "all",
    threshold_factor: float = 1.0,
    grid_factor: float | None = None,
    t_schedule: str = "all",
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
    target: str = "uniform",
    method: str = "iterative",
    batch_size: int | None = None,
    prefilter: str = "fused",
    backend: str | None = None,
) -> list["LocalMixingResult"]:
    """``τ_s(β,ε)`` for every source in ``sources`` (default: all nodes).

    Accepts the same semantics knobs as
    :func:`~repro.walks.local_mixing.local_mixing_time` — including
    ``require_source=True`` (each source pinned inside its witness set,
    decided by the exact constrained oracle on the shared block) and
    ``target="degree"`` (the irregular-graph degree-proportional target,
    evaluated by the bitwise-equal batched transcript of the per-source
    fixed-point heuristic) — plus:

    method:
        ``"iterative"`` (default) advances the block one sparse mat-mat per
        step — bitwise identical to the per-source loop.  ``"spectral"``
        evaluates each scheduled ``t`` by random access through the shared
        :func:`~repro.engine.propagator.shared_spectral_propagator` cache —
        asymptotically better for doubling schedules with long gaps, but
        floating-point-different from the iterative trajectory (results can
        differ where a deviation sits within rounding noise of the
        threshold).
    batch_size:
        Maximum number of source columns propagated at once (memory control
        for large graphs).  Default: all sources in one block.
    prefilter:
        How uniform-target candidate ``(t, R)`` pairs are screened before
        exact verification.  ``"fused"`` (default) uses one search-free
        :meth:`~repro.engine.oracle.BatchedUniformDeviationOracle.deviation_lower_bounds`
        call per step for the whole size grid (``O(1)`` per pair);
        ``"per_size"`` keeps the per-``R`` ``O(k log n)`` bracket search
        (the pre-fusion engine, retained as a benchmark baseline).  Both
        produce identical results — every near-threshold hit is re-decided
        by the exact per-source arithmetic either way.
    backend:
        Which :mod:`~repro.engine.backends` kernel backend runs the hot
        loops: a registered name (``"reference"``, ``"float32"``,
        ``"numba"`` when installed), a
        :class:`~repro.engine.backends.KernelBackend` instance, or
        ``None`` for the process default
        (:func:`~repro.engine.backends.set_default_backend` /
        ``REPRO_BACKEND`` / ``"reference"``).  Result-neutral by the
        loop-equivalence contract: every backend yields bitwise the
        reference results.

    Returns the results in ``sources`` order; every result is identical —
    same time, set size, bitwise-equal deviation and same bookkeeping
    counters — to the corresponding per-source
    :func:`~repro.walks.local_mixing.local_mixing_time` call (the
    loop-equivalence guarantee; ``engine="loop"`` call sites are the
    reference this is tested against).
    """
    src, candidates, t_max = _prepare_times_call(
        g,
        beta,
        eps,
        sources=sources,
        sizes=sizes,
        threshold_factor=threshold_factor,
        grid_factor=grid_factor,
        t_schedule=t_schedule,
        t_max=t_max,
        lazy=lazy,
        target=target,
        method=method,
        batch_size=batch_size,
        prefilter=prefilter,
        backend=backend,
    )
    threshold = eps * threshold_factor
    be = maybe_profile(get_backend(backend))

    results: list[LocalMixingResult | None] = [None] * len(src)
    if batch_size is None:
        batch_size = len(src)
    with trace(
        "engine_solve", backend=be.name, kind="times", sources=len(src)
    ) as _sp:
        for lo in range(0, len(src), batch_size):
            chunk = src[lo : lo + batch_size]
            for pos, res in _solve_chunk(
                g,
                chunk,
                candidates,
                threshold,
                t_schedule,
                t_max,
                lazy,
                method,
                target=target,
                require_source=require_source,
                prefilter=prefilter,
                backend=be,
            ):
                results[lo + pos] = res
    _observe_engine_span(_sp, be.name, "times")
    missing = [src[i] for i, r in enumerate(results) if r is None]
    if missing:
        raise ConvergenceError(
            f"no local mixing found up to t_max={t_max} for sources "
            f"{missing[:8]}{'…' if len(missing) > 8 else ''} "
            f"(beta={beta}, eps={eps}, threshold={threshold})",
            last_length=t_max,
        )
    return results  # type: ignore[return-value]


def _solve_chunk(
    g: Graph,
    chunk: list[int],
    candidates: list[int],
    threshold: float,
    t_schedule: str,
    t_max: int,
    lazy: bool,
    method: str,
    *,
    target: str = "uniform",
    require_source: bool = False,
    prefilter: str = "fused",
    backend=None,
):
    """Yield ``(position_in_chunk, LocalMixingResult)`` as sources resolve.

    Per scheduled step: one batched prefilter over the whole
    ``(R, live column)`` grid (a valid lower bound for every target /
    constraint combination — the fused D1-style
    ``deviation_lower_bounds`` kernel by default, dispatched through the
    resolved kernel backend), then exact per-source verification of the
    flagged pairs in ascending-``R`` order, so the first verified hit per
    column is exactly the per-source loop's stopping point and every
    counter reconstructs the loop's bookkeeping.

    Backend seam: the screening scan runs in the backend's precision with
    the verification cutoff widened by ``backend.screen_slack(n)``, so a
    lower-precision screen can over-flag but never under-flag; flagged
    pairs are decided on the exact float64 block either way (off the scan
    arrays when ``backend.exact_scan``, else through a fresh per-column
    float64 oracle).  The degree target's prefilter is already the exact
    fixed-point transcript, so it is backend-independent.
    """
    from repro.walks.local_mixing import (
        LocalMixingResult,
        UniformDeviationOracle,
        _degree_target_best,
        _t_iter,
    )

    be = backend if backend is not None else get_backend(None)
    # Pre-bind the screening-volume recorder once per chunk so the
    # per-step cost is two counter increments (None when observability
    # is disabled or the degree transcript — an exact prefilter, not a
    # screen — is in use).
    screen_record = (
        kernel_profiler().screen_recorder(be.name)
        if observability_enabled() and target != "degree"
        else None
    )
    cutoff = threshold * (1.0 + _VERIFY_SLACK)
    screen_cutoff = cutoff + be.screen_slack(g.n)
    n_cand = len(candidates)
    Rs = np.asarray(candidates, dtype=np.int64)
    inv_r = be.inverse_sizes(Rs)
    degrees = g.degrees.astype(np.float64) if target == "degree" else None
    col_pos = np.arange(len(chunk))  # chunk position per live column
    prop = None
    if method == "iterative":
        prop = BlockPropagator(g, chunk, lazy=lazy, backend=be)
    for steps, t in enumerate(_t_iter(t_schedule, t_max), start=1):
        if col_pos.size == 0:
            return
        if prop is not None:
            P = prop.advance_to(t)
        else:
            P = block_distribution_at(
                g, [chunk[i] for i in col_pos], t, lazy=lazy
            )
        live_nodes = [chunk[int(i)] for i in col_pos]
        scan = None
        if target == "degree":
            doracle = BatchedDegreeDeviationOracle(
                P, degrees, sources=live_nodes
            )
            # The transcript values ARE the per-source heuristic values
            # (bitwise), so they prefilter exactly; flagged pairs are still
            # re-decided by the scalar reference below.
            bounds = doracle.best_sums_grid(Rs, require_source=require_source)
            hits = bounds < cutoff
        else:
            scan = be.sorted_scan(P)
            k0_all = be.split_points(scan, inv_r)
            if prefilter == "fused":
                # One search-free kernel call for the whole (R, column)
                # grid; valid for the constrained minimum too (pinning the
                # source can only increase it).
                bounds = be.deviation_lower_bounds(scan, Rs, k0=k0_all)
            else:
                bounds = np.empty((n_cand, P.shape[1]), dtype=np.float64)
                for r_idx in range(n_cand):
                    bounds[r_idx], _ = be.best_sums(
                        scan, int(Rs[r_idx]), k0=k0_all[r_idx]
                    )
            hits = bounds < screen_cutoff
            if screen_record is not None:
                screen_record(hits.size, int(np.count_nonzero(hits)))
        exact: dict[int, UniformDeviationOracle] = {}
        resolved: list[int] = []
        for col in map(int, np.flatnonzero(hits.any(axis=0))):
            node = int(live_nodes[col])
            for r_idx in map(int, np.flatnonzero(hits[:, col])):
                R = int(Rs[r_idx])
                if target == "degree":
                    s_exact = _degree_target_best(
                        P[:, col], degrees, R, node, require_source
                    )
                elif require_source:
                    uo = exact.get(col)
                    if uo is None:
                        uo = UniformDeviationOracle(P[:, col], source=node)
                        exact[col] = uo
                    s_exact, _ = uo.best_sum(R, require_source=True)
                elif be.exact_scan:
                    s_exact = _exact_best_sum(
                        scan.sorted[:, col], scan.prefix[:, col], R
                    )
                else:
                    # Lower-precision scan: rebuild the exact per-column
                    # float64 oracle (bitwise the per-source loop's
                    # arithmetic) for the flagged column.
                    uo = exact.get(col)
                    if uo is None:
                        uo = UniformDeviationOracle(P[:, col])
                        exact[col] = uo
                    s_exact, _ = uo.best_sum(R)
                if s_exact < threshold:
                    yield int(col_pos[col]), LocalMixingResult(
                        time=t,
                        set_size=R,
                        deviation=s_exact,
                        threshold=threshold,
                        steps_checked=steps,
                        sizes_checked=(steps - 1) * n_cand + r_idx + 1,
                    )
                    resolved.append(col)
                    break
        if resolved:
            keep = np.setdiff1d(
                np.arange(P.shape[1]), np.asarray(resolved, dtype=np.int64)
            )
            col_pos = col_pos[keep]
            if prop is not None:
                prop.drop_columns(keep)


def batched_local_mixing_profiles(
    g: Graph,
    beta: float,
    *,
    sources: Sequence[int] | None = None,
    sizes: str | list[int] = "all",
    grid_factor: float = DEFAULT_EPS,
    t_max: int = 100,
    lazy: bool = False,
    require_source: bool = False,
    backend: str | None = None,
) -> np.ndarray:
    """The best achievable deviation ``min_R min_S Σ|p_t − 1/R|`` for every
    source at every ``t = 0..t_max``, as a ``(k, t_max + 1)`` array.

    ``backend`` selects the :mod:`~repro.engine.backends` kernel backend
    driving block propagation.  Profile *values* feed plots and fits, so
    there is no verification threshold for a lower-precision screen to
    hide behind: every backend shares the exact float64 scan here, and
    the knob is result-neutral by construction.

    One block trajectory replaces ``k`` independent
    :func:`~repro.walks.local_mixing.local_mixing_profile` runs; each row is
    bitwise identical to the per-source function: the block columns are
    bitwise equal to the single-source trajectory, the batched oracle's
    column-sorted block and prefix sums are bitwise equal to each
    per-column ``argsort``/``cumsum``, and every minimum is the exact
    single-source scan (the shared
    :func:`~repro.walks.local_mixing.window_deviation_sums` formula plus
    ``argmin`` — profile *values* feed plots and fits, so no
    threshold-verification shortcut applies).  With ``require_source=True``
    each column's minimum comes from the exact constrained single-source
    oracle (window-through-the-source-slot vs punctured-window
    decomposition) evaluated on the shared block column.
    """
    from repro.walks.local_mixing import (
        UniformDeviationOracle,
        window_deviation_sums,
    )

    src, candidates = _prepare_profiles_call(
        g, beta, sources=sources, sizes=sizes, grid_factor=grid_factor,
        t_max=t_max, backend=backend,
    )
    be = maybe_profile(get_backend(backend))
    starts = {R: np.arange(g.n - R + 1) for R in candidates}
    out = np.empty((len(src), t_max + 1), dtype=np.float64)
    with trace(
        "engine_solve", backend=be.name, kind="profiles", sources=len(src)
    ) as _sp:
        prop = BlockPropagator(g, src, lazy=lazy, backend=be)
        for t in range(t_max + 1):
            P = prop.advance_to(t)
            if require_source:
                for j, s in enumerate(src):
                    uo = UniformDeviationOracle(P[:, j], source=s)
                    out[j, t] = min(
                        uo.best_sum(R, require_source=True)[0]
                        for R in candidates
                    )
                continue
            oracle = BatchedUniformDeviationOracle(P)
            for j in range(len(src)):
                z = oracle.sorted[:, j]
                pre = oracle.prefix[:, j]
                best = math.inf
                for R in candidates:
                    sums = window_deviation_sums(
                        z, pre, R, 1.0 / R, starts[R]
                    )
                    best = min(best, float(sums[int(np.argmin(sums))]))
                out[j, t] = best
    _observe_engine_span(_sp, be.name, "profiles")
    return out


def batched_mixing_times(
    g: Graph,
    eps: float,
    *,
    sources: Sequence[int] | None = None,
    lazy: bool = False,
    method: str = "auto",
    t_max: int | None = None,
) -> list[int]:
    """Exact global mixing time ``τ_s^mix(ε)`` (Definition 1) for every
    source at once, identical to per-source
    :func:`~repro.walks.mixing.mixing_time` calls.

    ``method="iterative"`` scans one block trajectory (bitwise identical to
    the per-source scan).  ``"spectral"`` runs the per-source doubling +
    binary search (valid by Lemma 1 monotonicity) with all columns advanced
    in lockstep through the shared eigendecomposition; block evaluations can
    drift from :meth:`~repro.walks.distribution.SpectralPropagator.from_source`
    by BLAS-accumulation ulps, so any column whose distance lands within
    ``1e-9`` (relative) of ``eps`` is re-evaluated with the exact per-source
    arithmetic before the comparison — decisions therefore never differ from
    the per-source loop.  ``"auto"`` picks spectral for ``n ≤ 3000`` like
    :func:`~repro.walks.mixing.mixing_time`.
    """
    from repro.constants import MAX_WALK_LENGTH_FACTOR
    from repro.spectral.stationary import stationary_distribution
    from repro.walks.mixing import _check_walk_defined

    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    _check_walk_defined(g, lazy)
    src = _normalize_sources(g, sources)
    if t_max is None:
        t_max = MAX_WALK_LENGTH_FACTOR * g.n**3
    if method == "auto":
        method = "spectral" if g.n <= 3000 else "iterative"
    if method not in ("iterative", "spectral"):
        raise ValueError(f"unknown method {method!r}")
    pi = stationary_distribution(g)

    if method == "iterative":
        return _iterative_mixing_times(g, src, eps, pi, lazy, t_max)
    return _spectral_mixing_times(g, src, eps, pi, lazy, t_max)


def _verified_below(P: np.ndarray, pi: np.ndarray, eps: float) -> np.ndarray:
    """Per column of ``P``: is ``‖p − π‖₁ < eps``, deciding near-threshold
    columns with the exact contiguous per-source summation order."""
    dists = np.abs(P - pi[:, None]).sum(axis=0)
    below = dists < eps
    near = np.abs(dists - eps) <= eps * _VERIFY_SLACK
    for c in np.flatnonzero(near):
        below[c] = float(np.abs(P[:, int(c)] - pi).sum()) < eps
    return below


def _iterative_mixing_times(g, src, eps, pi, lazy, t_max):
    times: list[int | None] = [None] * len(src)
    prop = BlockPropagator(g, src, lazy=lazy)
    col_pos = np.arange(len(src))
    for t in range(t_max + 1):
        P = prop.advance_to(t)
        below = _verified_below(P, pi, eps)
        for c in np.flatnonzero(below):
            times[col_pos[c]] = t
        keep = np.flatnonzero(~below)
        if keep.size == 0:
            break
        if keep.size < col_pos.size:
            col_pos = col_pos[keep]
            prop.drop_columns(keep)
    if any(t is None for t in times):
        raise ConvergenceError(
            f"no t <= {t_max} reached eps={eps}", last_length=t_max
        )
    return times  # type: ignore[return-value]


def _spectral_mixing_times(g, src, eps, pi, lazy, t_max):
    from repro.engine.propagator import shared_spectral_propagator

    prop = shared_spectral_propagator(g, lazy)
    src_arr = np.asarray(src, dtype=np.int64)
    times = np.full(len(src), -1, dtype=np.int64)

    def exact_below(j: int, t: int) -> bool:
        p = prop.from_source(int(src_arr[j]), int(t))
        return float(np.abs(p - pi).sum()) < eps

    def below_at(js: np.ndarray, ts: np.ndarray) -> np.ndarray:
        P = prop.from_sources_at(src_arr[js], ts)
        dists = np.abs(P - pi[:, None]).sum(axis=0)
        below = dists < eps
        near = np.abs(dists - eps) <= eps * _VERIFY_SLACK
        for c in np.flatnonzero(near):
            below[c] = exact_below(int(js[c]), int(ts[c]))
        return below

    live = np.arange(len(src))
    zero = below_at(live, np.zeros(live.size, dtype=np.int64))
    times[live[zero]] = 0
    live = live[~zero]
    # Doubling phase: per column, the first power of two with dist < eps.
    hi_of = np.zeros(len(src), dtype=np.int64)
    hi = 1
    while live.size:
        found = below_at(live, np.full(live.size, hi, dtype=np.int64))
        hi_of[live[found]] = hi
        live = live[~found]
        hi *= 2
        if live.size and hi > t_max:
            raise ConvergenceError(
                f"no t <= {t_max} reached eps={eps}", last_length=hi // 2
            )
    # Binary search per column (vectorized across columns, each at its own
    # bracket) — valid because the distance is non-increasing (Lemma 1).
    active = np.flatnonzero((times < 0))
    lo_of = hi_of // 2
    while True:
        open_cols = active[hi_of[active] - lo_of[active] > 1]
        if open_cols.size == 0:
            break
        mid = (lo_of[open_cols] + hi_of[open_cols]) // 2
        found = below_at(open_cols, mid)
        hi_of[open_cols[found]] = mid[found]
        lo_of[open_cols[~found]] = mid[~found]
    times[active] = hi_of[active]
    return [int(t) for t in times]


def batched_local_mixing_spectra(
    g: Graph,
    eps: float = DEFAULT_EPS,
    *,
    sources: Sequence[int] | None = None,
    sizes: list[int] | None = None,
    grid_factor: float | None = None,
    t_max: int | None = None,
    lazy: bool = False,
    require_source: bool = False,
    method: str = "iterative",
    backend: str | None = None,
) -> list[dict[int, int | float]]:
    """The multi-source local-mixing *spectrum*: for every source, for each
    candidate set size ``R``, the first ``t`` with
    ``min_{|S|=R} Σ|p_t − 1/R| < ε`` — one shared block trajectory instead
    of one :func:`~repro.walks.local_mixing.local_mixing_spectrum` run per
    source.  Results (in ``sources`` order) match the single-source function
    exactly for every knob, including ``require_source=True`` (screened by
    the unconstrained fused lower bounds — valid for the pinned minimum too
    — and decided by the exact constrained oracle on the column); sizes
    that never mix within ``t_max`` map to ``math.inf``.  ``backend``
    selects the :mod:`~repro.engine.backends` kernel backend for the
    screening scan (cutoff widened by its slack; every hit is still
    decided by the exact per-column oracle, so results are
    backend-independent).
    """
    from repro.walks.local_mixing import UniformDeviationOracle

    src, sizes, t_max = _prepare_spectra_call(
        g,
        eps,
        sources=sources,
        sizes=sizes,
        grid_factor=grid_factor,
        t_max=t_max,
        lazy=lazy,
        method=method,
        backend=backend,
    )

    be = maybe_profile(get_backend(backend))
    cutoff = eps * (1.0 + _VERIFY_SLACK) + be.screen_slack(g.n)
    screen_record = (
        kernel_profiler().screen_recorder(be.name)
        if observability_enabled()
        else None
    )
    Rs = np.asarray(sizes, dtype=np.int64)
    inv_r = be.inverse_sizes(Rs)
    out: list[dict[int, int | float]] = [{} for _ in src]
    col_pos = np.arange(len(src))
    # unresolved[c, r]: column c has not yet mixed at sizes[r].
    unresolved = np.ones((len(src), len(sizes)), dtype=bool)
    with trace(
        "engine_solve", backend=be.name, kind="spectra", sources=len(src)
    ) as _sp:
        prop = (
            BlockPropagator(g, src, lazy=lazy, backend=be)
            if method == "iterative"
            else None
        )
        for t in range(t_max + 1):
            if col_pos.size == 0:
                break
            if prop is not None:
                P = prop.advance_to(t)
            else:
                P = block_distribution_at(
                    g, [src[i] for i in col_pos], t, lazy=lazy
                )
            scan = be.sorted_scan(P)
            k0_all = be.split_points(scan, inv_r)
            bounds = be.deviation_lower_bounds(scan, Rs, k0=k0_all)
            exact: dict[int, UniformDeviationOracle] = {}
            live = unresolved[col_pos]
            hits = live.T & (bounds < cutoff)
            if screen_record is not None:
                screen_record(hits.size, int(np.count_nonzero(hits)))
            for col in map(int, np.flatnonzero(hits.any(axis=0))):
                uo = exact.get(col)
                if uo is None:
                    uo = UniformDeviationOracle(
                        P[:, col],
                        source=(
                            int(src[int(col_pos[col])])
                            if require_source
                            else None
                        ),
                    )
                    exact[col] = uo
                for r_idx in map(int, np.flatnonzero(hits[:, col])):
                    R = int(Rs[r_idx])
                    s_exact, _ = uo.best_sum(R, require_source=require_source)
                    if s_exact < eps:
                        pos = int(col_pos[col])
                        out[pos][R] = t
                        unresolved[pos, r_idx] = False
            keep = np.flatnonzero(unresolved[col_pos].any(axis=1))
            if keep.size < col_pos.size:
                col_pos = col_pos[keep]
                if prop is not None:
                    prop.drop_columns(keep)
    _observe_engine_span(_sp, be.name, "spectra")
    for pos in range(len(src)):
        for R in sizes:
            out[pos].setdefault(R, math.inf)
    return out
