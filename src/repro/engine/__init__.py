"""Batched multi-source walk engine.

The paper's headline quantity ``τ(β,ε) = max_v τ_v(β,ε)`` needs a local
mixing computation from *every* source — an ``O(n)``-fold redundancy when
each source rebuilds the walk operator and re-runs a full trajectory (the
paper flags exactly this cost when discussing the full pass).  The engine
amortizes the shared structure across sources, following the many-walks
batching idea of Das Sarma et al. and Molla–Pandurangan:

* :class:`~repro.engine.propagator.BlockPropagator` advances an ``n × k``
  block of distributions with **one sparse mat-mat per step** (``P ← A @ P``)
  instead of ``k`` independent matvec trajectories, plus an optional shared
  :class:`~repro.walks.distribution.SpectralPropagator` cache keyed by
  ``(graph, lazy)`` for random access in ``t``.
* :class:`~repro.engine.oracle.BatchedUniformDeviationOracle` sorts all ``k``
  columns at once and answers ``min_{|S|=R} Σ|p − 1/R|`` for every source per
  ``(t, R)`` grid point in ``O(k log n)`` via a unimodal bracket search —
  or, fused, bounds the whole ``(R, column)`` grid search-free in ``O(1)``
  per pair (``deviation_lower_bounds``, the default driver prefilter).
  :class:`~repro.engine.oracle.BatchedDegreeDeviationOracle` is the
  degree-proportional-target companion: a column-vectorized, bitwise-equal
  transcript of the per-source fixed-point heuristic for irregular graphs.
* :func:`~repro.engine.batch.batched_local_mixing_times` and
  :func:`~repro.engine.batch.batched_local_mixing_spectra` are the drivers
  the multi-source call sites (``graph_local_mixing_time``, sweeps, report,
  the dynamic :class:`~repro.dynamic.MixingTracker`) run on; their outputs
  are **identical** to the per-source loop for *every* knob combination —
  ``target="degree"`` and ``require_source=True`` included; nothing falls
  back to a per-source trajectory loop (hits are re-verified with the exact
  single-source arithmetic before a source stops).
  :func:`~repro.engine.batch.batched_mixing_times` (global Definition-1
  times behind ``graph_mixing_time``) and
  :func:`~repro.engine.batch.batched_local_mixing_profiles` (deviation
  profiles behind ``local_mixing_profile``) follow the same contract.

Both hot loops — block propagation and the sorted deviation scan — are
dispatched through a pluggable :mod:`repro.engine.backends` seam: pass
``backend="float32"`` (or set the ``REPRO_BACKEND`` environment variable)
to run the screening scan in mixed precision while every near-threshold
decision is re-verified by the exact float64 oracle, keeping results
bitwise identical to the reference path for every backend.

The shared spectral cache is controllable — dynamic-network workloads
(:mod:`repro.dynamic`) stream many snapshots through the engine, and each
cached entry pins a dense ``n × n`` eigenbasis:
:func:`~repro.engine.propagator.clear_propagator_cache`,
:func:`~repro.engine.propagator.set_propagator_cache_maxsize` and
:func:`~repro.engine.propagator.propagator_cache_info` bound and inspect it.
"""

from repro.engine.backends import (
    BACKEND_ENV,
    KernelBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)
from repro.engine.propagator import (
    BlockPropagator,
    block_distribution_at,
    clear_propagator_cache,
    propagator_cache_info,
    seed_shared_propagator,
    set_propagator_cache_maxsize,
    shared_spectral_propagator,
)
from repro.engine.oracle import (
    BatchedDegreeDeviationOracle,
    BatchedUniformDeviationOracle,
)
from repro.engine.batch import (
    TimesKey,
    batched_local_mixing_profiles,
    batched_local_mixing_times,
    batched_local_mixing_spectra,
    batched_mixing_times,
    canonical_times_key,
)

__all__ = [
    "BACKEND_ENV",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "BlockPropagator",
    "block_distribution_at",
    "shared_spectral_propagator",
    "seed_shared_propagator",
    "clear_propagator_cache",
    "set_propagator_cache_maxsize",
    "propagator_cache_info",
    "BatchedDegreeDeviationOracle",
    "BatchedUniformDeviationOracle",
    "batched_local_mixing_times",
    "batched_local_mixing_spectra",
    "batched_local_mixing_profiles",
    "batched_mixing_times",
    "TimesKey",
    "canonical_times_key",
]
