"""Empirical study of the paper's open problem (§5, Conclusion):

    "Finding a relationship between local mixing time and weak conductance
     is another key problem."

The conjectured shape mirrors the classic mixing/conductance envelope
``Θ(1/Φ) ≤ τ_mix ≤ Θ(log n / Φ²)``: with ``Φ_β`` the weak conductance,
one expects ``τ(β,ε)`` to be sandwiched between ``~1/Φ_β`` and
``~log n / Φ_β²``.  We can *measure* both sides on families where Φ_β is
computable: the β-barbell (closed form via home cliques), expander chains
(certified block covers), tiny graphs (exact enumeration).

:func:`weak_conductance_vs_local_mixing` produces the (Φ_β, τ_local) pairs
plus the envelope columns; the W1 benchmark prints them and asserts the
envelope at the measured constants.  This is exploratory evidence, not a
proof — DESIGN.md lists it as the future-work experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.spectral.weak_conductance import (
    barbell_weak_conductance,
    weak_conductance_exact,
    weak_conductance_lower_bound,
)
from repro.walks.local_mixing import local_mixing_time

__all__ = ["ConjecturePoint", "weak_conductance_vs_local_mixing"]


@dataclass(frozen=True)
class ConjecturePoint:
    """One (graph, β) observation for the open-problem study.

    Attributes
    ----------
    graph:
        Instance label.
    n, beta, eps:
        Parameters.
    phi_beta:
        Weak conductance (exact, closed-form, or certified lower bound —
        see ``phi_kind``).
    tau_local:
        Measured local mixing time (max over sampled sources).
    lower_env / upper_env:
        The conjectured envelope ``1/Φ_β`` and ``log n / Φ_β²``.
    phi_kind:
        ``"exact"`` / ``"closed-form"`` / ``"cover-bound"``.
    """

    graph: str
    n: int
    beta: float
    eps: float
    phi_beta: float
    tau_local: int
    lower_env: float
    upper_env: float
    phi_kind: str

    @property
    def within_envelope(self) -> bool:
        """Envelope check with a generous constant (4×) on both sides."""
        return (
            self.tau_local <= 4 * self.upper_env + 4
            and 4 * self.tau_local + 4 >= self.lower_env
        )


def _sampled_tau(g, beta: float, eps: float, step: int) -> int:
    return max(
        local_mixing_time(g, s, beta, eps).time for s in range(0, g.n, step)
    )


def weak_conductance_vs_local_mixing(
    eps: float = DEFAULT_EPS, *, seed: int = 0
) -> list[ConjecturePoint]:
    """Measure (Φ_β, τ_local) pairs across the computable families."""
    points: list[ConjecturePoint] = []

    # β-barbells: closed-form Φ_β (home cliques), τ measured.
    for beta, k in ((2, 16), (4, 16), (8, 16), (4, 24)):
        g = gen.beta_barbell(beta, k)
        phi = barbell_weak_conductance(beta, k)
        tau = _sampled_tau(g, beta, eps, k)
        points.append(
            ConjecturePoint(
                graph=g.name, n=g.n, beta=beta, eps=eps, phi_beta=phi,
                tau_local=tau, lower_env=1.0 / phi,
                upper_env=math.log(g.n) / phi**2, phi_kind="closed-form",
            )
        )

    # Expander chains: certified block-cover lower bound on Φ_β.
    for beta, k in ((4, 32),):
        g = gen.clique_chain_of_expanders(beta, k, d=8, seed=seed)
        cover = [np.arange(b * k, (b + 1) * k) for b in range(beta)]
        phi = weak_conductance_lower_bound(g, beta, cover)
        tau = _sampled_tau(g, beta, 4 * eps, k)  # algorithm-threshold regime
        points.append(
            ConjecturePoint(
                graph=g.name, n=g.n, beta=beta, eps=4 * eps, phi_beta=phi,
                tau_local=tau, lower_env=1.0 / phi,
                upper_env=math.log(g.n) / phi**2, phi_kind="cover-bound",
            )
        )

    # Tiny graphs: exact weak conductance by enumeration.
    for maker, beta in ((lambda: gen.beta_barbell(2, 5), 2),
                        (lambda: gen.complete_graph(10), 2)):
        g = maker()
        phi = weak_conductance_exact(g, beta)
        tau = _sampled_tau(g, beta, 0.2, 1)
        points.append(
            ConjecturePoint(
                graph=g.name, n=g.n, beta=beta, eps=0.2, phi_beta=phi,
                tau_local=tau, lower_env=1.0 / phi,
                upper_env=math.log(g.n) / phi**2, phi_kind="exact",
            )
        )
    return points
