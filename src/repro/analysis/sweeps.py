"""Sweep drivers shared by the benchmark harness.

A *measurement* is one graph instance boiled down to the quantities the
paper's §2.3 table compares: mixing time, local mixing time, their ratio,
and the structural parameters (n, m, diameter).  A *sweep* maps a family
over a size grid and returns rows ready for
:func:`repro.utils.tables.format_table` and for log–log slope fits.
"""

from __future__ import annotations

from typing import Sequence

from repro.constants import DEFAULT_EPS
from repro.engine import batched_local_mixing_times, batched_mixing_times
from repro.graphs.base import Graph
from repro.graphs.families import get_family
from repro.graphs.properties import estimate_diameter_two_sweep
from repro.utils.seeding import as_rng
from repro.walks.local_mixing import graph_local_mixing_time

__all__ = ["measure_graph", "family_sweep"]


def measure_graph(
    g: Graph,
    source: int,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    lazy: bool = False,
    sizes: str = "all",
    t_max: int | None = None,
    all_sources: bool = False,
) -> dict:
    """Measure one instance: τ_mix, τ_local, ratio, and structure.

    Both quantities run on the batched engine — identical outputs to the
    per-source ``mixing_time`` / ``local_mixing_time`` calls, but the two
    measurements (and, with ``all_sources=True``, the full τ pass) share
    the per-graph spectral cache instead of re-deriving the operator.

    With ``all_sources=True`` the row also carries the paper's worst-case
    ``τ(β,ε) = max_v τ_v(β,ε)`` — affordable on the batched multi-source
    engine (one block trajectory for all ``n`` sources instead of ``n``
    per-source runs).
    """
    tau_mix = batched_mixing_times(
        g, eps, sources=[source], lazy=lazy, t_max=t_max
    )[0]
    tau_loc = batched_local_mixing_times(
        g, beta, eps, sources=[source], lazy=lazy, sizes=sizes, t_max=t_max
    )[0].time
    row = {
        "graph": g.name,
        "n": g.n,
        "m": g.m,
        "diameter_est": estimate_diameter_two_sweep(g),
        "source": source,
        "beta": beta,
        "eps": eps,
        "tau_mix": tau_mix,
        "tau_local": tau_loc,
        "ratio": tau_mix / max(tau_loc, 1),
    }
    if all_sources:
        row["tau_local_max"] = graph_local_mixing_time(
            g, beta, eps, lazy=lazy, sizes=sizes, t_max=t_max
        )
    return row


def _measure_item(item: tuple) -> dict:
    """Worker task for the parallel family sweep: one
    :func:`measure_graph` call, unpacked from a picklable tuple."""
    g, source, beta, eps, lazy, sizes, t_max, all_sources = item
    return measure_graph(
        g,
        source,
        beta,
        eps,
        lazy=lazy,
        sizes=sizes,
        t_max=t_max,
        all_sources=all_sources,
    )


def family_sweep(
    family_key: str,
    ns: Sequence[int],
    beta: int,
    eps: float = DEFAULT_EPS,
    *,
    seed=None,
    source: int = 0,
    sizes: str = "all",
    t_max: int | None = None,
    all_sources: bool = False,
    n_workers: int | None = None,
    executor=None,
) -> list[dict]:
    """Measure a :class:`~repro.graphs.families.GraphFamily` across sizes.

    With ``n_workers``/``executor`` the per-graph measurements fan out
    across a :class:`~repro.parallel.ShardExecutor` via
    :func:`~repro.parallel.shard_map` — instances are built up-front in the
    parent (so the RNG consumption, hence the graphs, match the serial
    sweep exactly) and each worker measures whole instances.  Every row
    equals the serial sweep's row: the measurements run on the batched
    engine, whose results are process-independent.  (Each task ships its
    own graph — the instances all differ, so there is no shared topology
    to publish.)"""
    fam = get_family(family_key)
    rng = as_rng(seed)
    graphs = [fam.build(n, beta, rng) for n in ns]
    items = [
        (g, source, beta, eps, fam.lazy, sizes, t_max, all_sources)
        for g in graphs
    ]
    if n_workers is None and executor is None:
        return [_measure_item(item) for item in items]
    from repro.parallel import shard_map

    return shard_map(
        _measure_item, items, n_workers=n_workers, executor=executor
    )
