"""The paper's round bounds as explicit formulas (constants set to 1).

Benchmarks report ``measured / bound`` ratios; a reproduction succeeds when
those ratios are stable (bounded by a modest constant) across the sweep —
the asymptotic *shape* is the claim, not the constant.
"""

from __future__ import annotations

import math

__all__ = [
    "grid_length",
    "theorem1_round_bound",
    "theorem2_round_bound",
    "theorem3_round_bound",
]


def grid_length(beta: float, eps: float) -> float:
    """``log_{1+ε} β`` — the number of set sizes Algorithm 2 scans."""
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if eps <= 0:
        raise ValueError("eps must be positive")
    if beta == 1:
        return 1.0
    return max(1.0, math.log(beta) / math.log1p(eps))


def theorem1_round_bound(tau: float, n: int, eps: float, beta: float) -> float:
    """Theorem 1: ``O(τ_s · log² n · log_{1+ε} β)`` rounds."""
    return max(tau, 1.0) * max(math.log2(n), 1.0) ** 2 * grid_length(beta, eps)


def theorem2_round_bound(
    tau: float, d_tilde: float, n: int, eps: float, beta: float
) -> float:
    """Theorem 2: ``O(τ_s · D̃ · log n · log_{1+ε} β)``, ``D̃ = min{τ_s, D}``."""
    return (
        max(tau, 1.0)
        * max(d_tilde, 1.0)
        * max(math.log2(n), 1.0)
        * grid_length(beta, eps)
    )


def theorem3_round_bound(tau: float, n: int) -> float:
    """Theorem 3: ``O(τ(β,ε) · log n)`` push–pull rounds."""
    return max(tau, 1.0) * max(math.log(n), 1.0)
