"""Temporal sweeps: local-mixing time series over dynamic-network traces.

The static harness (:mod:`repro.analysis.sweeps`) boils one graph instance
down to one row; the temporal sweep boils one *update trace* down to one row
per event — τ(β,ε) before/after, how many sources the incremental tracker
actually re-solved, and whether the snapshot was answered from the
structural memo.  Rows feed :func:`repro.utils.tables.format_table` exactly
like the static sweeps, so benchmarks and EXPERIMENTS.md render uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_EPS
from repro.dynamic.graph import DynamicGraph, GraphUpdate
from repro.dynamic.tracker import TrackingTrace, track_local_mixing
from repro.graphs.base import Graph

__all__ = ["temporal_sweep", "trace_rows", "summarize_trace"]


def _describe(update: GraphUpdate | None) -> str:
    if update is None:
        return "(initial)"
    if update.kind in ("add", "remove"):
        return f"{update.kind}({update.u},{update.v})"
    if update.kind == "rewire":
        return f"rewire({update.u},{update.v}->{update.w})"
    if update.kind == "join":
        return f"join(deg={len(update.neighbors)})"
    return f"leave({update.u})"


def trace_rows(trace: TrackingTrace) -> list[dict]:
    """One table row per observed snapshot of a :class:`TrackingTrace`."""
    rows = []
    for snap in trace.snapshots:
        times = snap.times
        rows.append(
            {
                "event": snap.index,
                "update": _describe(snap.update),
                "n": snap.graph.n,
                "m": snap.graph.m,
                "tau_max": snap.tau,
                "tau_mean": float(np.mean(times)),
                "solved": snap.solved_sources,
                "reused": snap.reused_sources,
                "memo_hit": snap.memo_hit,
                "ms": snap.seconds * 1e3,
            }
        )
    return rows


def summarize_trace(trace: TrackingTrace) -> dict:
    """Trace-level aggregates: the τ range, total tracker work and the
    incremental-reuse fraction (solved / (solved + reused + memoized))."""
    taus = trace.tau_trace
    stats = trace.stats
    total_sources = sum(s.graph.n for s in trace.snapshots)
    solved = stats.get("solved_sources", 0)
    return {
        # Snapshots carrying an update — robust to include_initial=False.
        "events": sum(1 for s in trace.snapshots if s.update is not None),
        "tau_min": min(taus),
        "tau_max": max(taus),
        "memo_hits": stats.get("memo_hits", 0),
        "solved_sources": solved,
        "reused_sources": stats.get("reused_sources", 0),
        "solved_fraction": solved / max(total_sources, 1),
        "seconds": sum(s.seconds for s in trace.snapshots),
    }


def temporal_sweep(
    base: Graph | DynamicGraph,
    updates: list[GraphUpdate],
    beta: float,
    eps: float = DEFAULT_EPS,
    **tracker_kwargs,
) -> tuple[list[dict], dict]:
    """Run :func:`~repro.dynamic.tracker.track_local_mixing` over a trace
    and return ``(rows, summary)`` ready for the table formatter."""
    trace = track_local_mixing(base, updates, beta, eps, **tracker_kwargs)
    return trace_rows(trace), summarize_trace(trace)
