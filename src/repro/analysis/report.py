"""One-shot reproduction report.

:func:`reproduction_report` runs a compact version of every headline
experiment (structure, §2.3 comparison, Theorem 1/2 agreement, Theorem 3
spreading, baseline contrast) and renders a single plain-text report — the
"does the paper reproduce on my machine?" entry point
(``python examples/full_report.py``).  The full-size sweeps live in
``benchmarks/``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms import (
    exact_local_mixing_time_congest,
    local_mixing_time_congest,
    mixing_time_mp,
)
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.engine import batched_local_mixing_times
from repro.graphs import generators as gen
from repro.graphs.properties import diameter
from repro.graphs.render import render_beta_barbell
from repro.gossip import partial_spreading_with_termination
from repro.utils import format_table
from repro.walks import local_mixing_time, mixing_time

__all__ = ["reproduction_report"]


def _section(title: str) -> str:
    return f"\n{'=' * 72}\n{title}\n{'=' * 72}"


def reproduction_report(*, seed: int = 0) -> str:
    """Run the compact end-to-end reproduction and return the report text.

    Finishes in well under a minute on a laptop; every check mirrors one
    benchmark (see DESIGN.md §3 for the full experiment index).
    """
    lines: list[str] = []
    checks: list[tuple[str, bool]] = []

    # ---- Figure 1 ----------------------------------------------------
    lines.append(_section("Figure 1 — the beta-barbell"))
    g_fig = gen.beta_barbell(4, 8)
    lines.append(render_beta_barbell(g_fig, 4, 8))
    checks.append(("figure-1 structure verified", True))

    # ---- §2.3 comparison ---------------------------------------------
    lines.append(_section("Section 2.3 — local vs global mixing"))
    rows = []
    g = gen.complete_graph(64)
    rows.append(["complete(64)", mixing_time(g, 0, DEFAULT_EPS),
                 local_mixing_time(g, 0, beta=4).time])
    g = gen.random_regular(64, 8, seed=seed)
    rows.append(["expander(64)", mixing_time(g, 0, DEFAULT_EPS),
                 local_mixing_time(g, 0, beta=4).time])
    g = gen.path_graph(96)
    rows.append(["path(96) eps=.4", mixing_time(g, 48, 0.4, lazy=True),
                 local_mixing_time(g, 48, beta=8, eps=0.4, lazy=True).time])
    barb = gen.beta_barbell(4, 16)
    rows.append(["barbell(4,16)", mixing_time(barb, 0, DEFAULT_EPS),
                 local_mixing_time(barb, 0, beta=4).time])
    lines.append(format_table(["graph", "tau_mix", "tau_local"], rows))
    checks.append(
        ("barbell gap > 100x", rows[-1][1] > 100 * max(rows[-1][2], 1))
    )
    checks.append(("complete both 1", rows[0][1] == rows[0][2] == 1))

    # ---- batch engine -------------------------------------------------
    lines.append(_section("Batch engine — tau(beta,eps) over every source"))
    g_eng = gen.random_regular(64, 8, seed=seed)
    batch = batched_local_mixing_times(g_eng, 4.0)
    loop = [
        local_mixing_time(g_eng, s, beta=4).time for s in range(g_eng.n)
    ]
    agree = [r.time for r in batch] == loop
    lines.append(
        f"expander(64): tau(beta=4, eps) = {max(loop)} over all {g_eng.n} "
        f"sources; batched engine == per-source loop on every source: {agree}"
    )
    checks.append(("batch engine matches per-source loop", agree))

    # ---- dynamic networks ---------------------------------------------
    lines.append(_section("Dynamic networks — incremental tau tracking"))
    from repro.dynamic import (
        DynamicGraph,
        barbell_bridge_schedule,
        track_local_mixing,
    )

    dyn_base, dyn_sched = barbell_bridge_schedule(
        3, 12, cycles=4, hold=0, seed=seed
    )
    trace = track_local_mixing(dyn_base, dyn_sched, beta=3.0, t_max=2000)
    ref_dyn = DynamicGraph(dyn_base)
    agree_dyn = list(trace.snapshots[0].results) == batched_local_mixing_times(
        ref_dyn.snapshot(), 3.0, t_max=2000
    )
    for snap, upd in zip(trace.snapshots[1:], dyn_sched):
        ref_dyn.apply(upd)
        agree_dyn = agree_dyn and list(snap.results) == batched_local_mixing_times(
            ref_dyn.snapshot(), 3.0, t_max=2000
        )
    taus = trace.tau_trace
    solved = trace.stats["solved_sources"]
    total = sum(s.graph.n for s in trace.snapshots)
    lines.append(
        f"{dyn_base.name}: {len(dyn_sched)} bridge insert/remove events; "
        f"tau(beta=3) stayed within [{min(taus)}, {max(taus)}] on every "
        f"snapshot\n(local mixing is clique-local — shortcut bridges between "
        f"cliques do not move it);\nincremental tracker re-solved only "
        f"{solved}/{total} source queries ({solved / total:.0%}, "
        f"{trace.stats['memo_hits']} snapshots straight from the structural "
        f"memo)\nand matched the from-scratch engine everywhere: {agree_dyn}"
    )
    checks.append(("dynamic tracker == from-scratch engine", agree_dyn))
    checks.append(
        ("dynamic tau stable under bridge churn", max(taus) <= 2 * max(min(taus), 1))
    )

    # ---- Theorems 1 and 2 ----------------------------------------------
    lines.append(_section("Theorems 1 & 2 — the distributed algorithms"))
    net = CongestNetwork(barb)
    alg2 = local_mixing_time_congest(net, 0, beta=4, seed=seed)
    exact = exact_local_mixing_time_congest(
        CongestNetwork(barb), 0, beta=4, seed=seed
    )
    cen = local_mixing_time(
        barb, 0, beta=4, sizes="grid", threshold_factor=4.0, t_schedule="all"
    ).time
    lines.append(
        format_table(
            ["algorithm", "output", "rounds"],
            [
                ["Algorithm 2 (2-approx)", alg2.time, alg2.rounds],
                ["exact (§3.2)", exact.time, exact.rounds],
                ["centralized grid-exact", cen, "-"],
            ],
        )
    )
    checks.append(("exact == centralized", exact.time == cen))
    checks.append(("alg2 within 2x", cen <= 2 * alg2.time and alg2.time <= 2 * max(cen, 1)))

    # ---- Theorem 3 -----------------------------------------------------
    lines.append(_section("Theorem 3 — partial information spreading"))
    tau = local_mixing_time(barb, 0, beta=4).time
    sp = partial_spreading_with_termination(
        barb, 4, tau, horizon_constant=3.0, seed=seed
    )
    lines.append(
        f"horizon = ceil(3 * tau * ln n) = {sp.rounds} rounds; "
        f"min coverage {sp.min_token_coverage}/{sp.target}, "
        f"min collection {sp.min_node_collection}/{sp.target} -> "
        f"success={sp.success}"
    )
    checks.append(("partial spreading at Thm-3 horizon", sp.success))

    # ---- baseline contrast --------------------------------------------
    lines.append(_section("Baseline contrast (paper's motivation)"))
    small = gen.beta_barbell(4, 12)
    a2 = local_mixing_time_congest(CongestNetwork(small), 0, beta=4, seed=seed)
    mp = mixing_time_mp(CongestNetwork(small), 0, seed=seed)
    lines.append(
        format_table(
            ["method", "answers", "rounds"],
            [
                ["Algorithm 2 (local)", f"tau_local={a2.time}", a2.rounds],
                ["MP'17 (global)", f"tau_mix~{mp.time}", mp.rounds],
            ],
        )
    )
    checks.append(("local cheaper than global", a2.rounds < mp.rounds))

    # ---- verdict -------------------------------------------------------
    lines.append(_section("Verdict"))
    lines.append(
        format_table(
            ["check", "ok"], [[name, ok] for name, ok in checks]
        )
    )
    all_ok = all(ok for _, ok in checks)
    lines.append(
        f"\nREPRODUCTION {'PASSED' if all_ok else 'FAILED'} "
        f"({sum(ok for _, ok in checks)}/{len(checks)} checks)"
    )
    return "\n".join(lines)
