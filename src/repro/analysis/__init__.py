"""Experiment harness helpers: the paper's theoretical bounds as callable
predictions, and sweep drivers shared by the benchmarks in ``benchmarks/``."""

from repro.analysis.theory import (
    theorem1_round_bound,
    theorem2_round_bound,
    theorem3_round_bound,
    grid_length,
)
from repro.analysis.sweeps import family_sweep, measure_graph
from repro.analysis.temporal import summarize_trace, temporal_sweep, trace_rows
from repro.analysis.report import reproduction_report
from repro.analysis.conjecture import (
    ConjecturePoint,
    weak_conductance_vs_local_mixing,
)

__all__ = [
    "theorem1_round_bound",
    "theorem2_round_bound",
    "theorem3_round_bound",
    "grid_length",
    "family_sweep",
    "temporal_sweep",
    "trace_rows",
    "summarize_trace",
    "reproduction_report",
    "ConjecturePoint",
    "weak_conductance_vs_local_mixing",
    "measure_graph",
]
