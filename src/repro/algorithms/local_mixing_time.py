"""**Algorithm 2 — LOCAL-MIXING-TIME** (paper §3, Theorem 1).

Computes a 2-approximation of the local mixing time ``τ_s(β, ε)`` in
``O(τ_s log² n · log_{1+ε} β)`` rounds, assuming ``τ_s·φ(S) = o(1)`` on the
local mixing set (Lemma 4 justifies the doubling under that assumption).

Per outer phase ``ℓ = 1, 2, 4, 8, …``:

1. build a BFS tree of depth ``min{D, ℓ}`` from the source (flooding
   self-truncates at the graph's eccentricity, so no global knowledge of
   ``D`` is needed);
2. run Algorithm 1 for ``ℓ`` rounds → every node holds ``p̃_ℓ(u)``;
3. the source learns the tree size by one convergecast (out-of-tree nodes
   hold ``p̃_ℓ = 0`` exactly and are folded in analytically, see
   :mod:`repro.congest.ksmallest`);
4. for each set size ``R = ⌈n/β⌉, ⌈(1+ε)n/β⌉, …, n``: every node computes
   ``x_u = |p̃_ℓ(u) − 1/R|`` locally, the source gets the sum ``∂`` of the
   ``R`` smallest ``x_u`` by distributed binary search, and **stops with
   output ℓ** if ``∂ < 4ε`` (the Lemma 3 relaxation that covers the sizes
   between grid points).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.estimate_rw_probability import FloodingEstimator
from repro.congest.bfs import build_bfs_tree
from repro.congest.metrics import CostLedger
from repro.congest.network import CongestNetwork
from repro.congest.tree_ops import convergecast_count
from repro.congest.message import int_bits
from repro.constants import DEFAULT_C, DEFAULT_EPS, MAX_WALK_LENGTH_FACTOR
from repro.errors import ConvergenceError, ProtocolError
from repro.utils.seeding import as_rng
from repro.walks.local_mixing import size_grid

__all__ = [
    "CongestLocalMixingResult",
    "local_mixing_time_congest",
    "local_mixing_times_congest",
]


@dataclass(frozen=True)
class CongestLocalMixingResult:
    """Output of the distributed local-mixing-time computation.

    Attributes
    ----------
    time:
        The algorithm's output ``ℓ`` (a 2-approximation under Theorem 1's
        assumption; exact for the §3.2 variant).
    set_size:
        The grid size ``R`` whose check fired.
    deviation:
        The winning ``∂`` (sum of ``R`` smallest ``x_u``), below ``4ε``.
    threshold:
        The compared threshold (``4ε``).
    rounds:
        Total CONGEST rounds consumed (= ledger total for this run).
    ledger:
        Full per-phase cost breakdown (``bfs`` / ``flooding`` / ``ksearch``
        / ``convergecast`` — the three Theorem 1 terms plus bookkeeping).
    phases:
        Per-outer-phase history: ``(ℓ, best ∂ seen at that ℓ)``.
    """

    time: int
    set_size: int
    deviation: float
    threshold: float
    rounds: int
    ledger: CostLedger
    phases: list[tuple[int, float]] = field(default_factory=list)


def _grid_check(
    net: CongestNetwork,
    tree,
    p_tilde: np.ndarray,
    sizes: list[int],
    threshold: float,
    rng,
) -> tuple[bool, int, float, float]:
    """Steps 5–12 of Algorithm 2 for one walk length.

    Returns ``(stopped, winning_R, winning_sum, best_sum_seen)``.
    """
    from repro.congest.ksmallest import k_smallest_sum

    n = net.n
    out_count = n - tree.size
    best = np.inf
    for R in sizes:
        x = np.abs(p_tilde - 1.0 / R)
        ks = k_smallest_sum(
            net,
            tree,
            x,
            R,
            seed=rng,
            virtual_value=1.0 / R,
            virtual_count=out_count,
            phase="ksearch",
        )
        best = min(best, ks.total)
        if ks.total < threshold:
            return True, R, ks.total, best
    return False, -1, np.inf, best


def local_mixing_time_congest(
    net: CongestNetwork,
    source: int,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    c: int = DEFAULT_C,
    grid_factor: float | None = None,
    seed=None,
    t_max: int | None = None,
) -> CongestLocalMixingResult:
    """Run Algorithm 2 on ``net`` from ``source``.

    Parameters
    ----------
    beta:
        Set-size parameter — mixing over some set of size ≥ ``n/β``.
    eps:
        Accuracy parameter ε; the stopping rule compares against ``4ε``
        (Lemma 3) and the size grid grows by ``(1+ε)`` unless
        ``grid_factor`` overrides it.
    c:
        Algorithm 1 fixed-point exponent (paper: ``c ≥ 6``).
    seed:
        Seed for the k-smallest tie-breaking perturbations.
    t_max:
        Safety cap on the walk length (default ``8n³``).

    Raises
    ------
    ConvergenceError
        If no ``ℓ ≤ t_max`` satisfies the stopping rule (cannot happen for
        connected non-bipartite graphs with a generous cap, since
        ``τ_s(β,ε) ≤ τ^mix_s(ε) = O(n³)``).
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if not 0 <= source < net.n:
        raise ValueError("source out of range")
    n = net.n
    if t_max is None:
        t_max = MAX_WALK_LENGTH_FACTOR * n**3
    rng = as_rng(seed)
    sizes = size_grid(n, beta, eps if grid_factor is None else grid_factor)
    threshold = 4.0 * eps

    history: list[tuple[int, float]] = []
    ell = 1
    while ell <= t_max:
        # Step 3: BFS tree of depth min{D, ℓ} (self-truncating flooding).
        tree = build_bfs_tree(net, source, depth_limit=ell)
        # Step 4: Algorithm 1 afresh for this phase.
        est = FloodingEstimator(net, source, c=c)
        p_tilde = est.run(ell)
        # The source learns the tree size (needed for the analytic
        # out-of-tree accounting) by one convergecast.
        tree_size = convergecast_count(
            net, tree, tree.in_tree, int_bits(n), phase="convergecast"
        )
        if tree_size != tree.size:
            raise ProtocolError(
                f"convergecast tree-size mismatch at phase ell={ell}: "
                f"counted {tree_size}, tree has {tree.size} nodes"
            )
        stopped, win_r, win_sum, best = _grid_check(
            net, tree, p_tilde, sizes, threshold, rng
        )
        history.append((ell, best))
        if stopped:
            return CongestLocalMixingResult(
                time=ell,
                set_size=win_r,
                deviation=win_sum,
                threshold=threshold,
                rounds=net.ledger.rounds,
                ledger=net.ledger,
                phases=history,
            )
        ell *= 2
    raise ConvergenceError(
        f"Algorithm 2 did not stop by t_max={t_max}", last_length=ell // 2
    )


def _congest_tau_task(g, payload: tuple) -> CongestLocalMixingResult:
    """Worker task: one per-source Algorithm-2 run on a fresh network over
    the shared-memory graph, seeded from its pre-spawned child sequence."""
    source, child_seq, beta, eps, c, grid_factor, t_max, bw = payload
    net = CongestNetwork(g, bandwidth_factor=bw)
    return local_mixing_time_congest(
        net,
        source,
        beta,
        eps,
        c=c,
        grid_factor=grid_factor,
        seed=np.random.default_rng(child_seq),
        t_max=t_max,
    )


def local_mixing_times_congest(
    g,
    sources,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    c: int = DEFAULT_C,
    grid_factor: float | None = None,
    seed=None,
    t_max: int | None = None,
    bandwidth_factor: int = 16,
    n_workers: int | None = None,
    executor=None,
) -> list[CongestLocalMixingResult]:
    """Algorithm 2 from many sources — the Monte-Carlo estimator sweep,
    reproducible at any worker count.

    Each source runs :func:`local_mixing_time_congest` on its own fresh
    :class:`~repro.congest.network.CongestNetwork` (so per-run ledgers
    don't interleave).  The tie-breaking randomness is derived **per
    source, before sharding**: one ``numpy.random.SeedSequence`` child is
    spawned per source from ``seed``, so source ``j`` consumes exactly the
    same stream whether the sweep runs serially, on 2 workers, or on 8 —
    the per-shard results (and hence the whole sweep) are identical for
    every worker count.  With ``n_workers``/``executor`` the runs fan out
    through :func:`~repro.parallel.shard_map` over the shared-memory
    topology.

    ``seed`` may be an ``int``, ``None`` (fresh entropy — reproducible
    only within this call) or a ``numpy.random.SeedSequence``.
    """
    from repro.engine.batch import _normalize_sources

    src = _normalize_sources(g, sources)
    seq = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    children = seq.spawn(len(src))
    payloads = [
        (s, child, beta, eps, c, grid_factor, t_max, bandwidth_factor)
        for s, child in zip(src, children)
    ]
    if n_workers is None and executor is None:
        return [_congest_tau_task(g, p) for p in payloads]
    from repro.parallel import shard_map

    return shard_map(
        _congest_tau_task,
        payloads,
        graph=g,
        n_workers=n_workers,
        executor=executor,
    )
