"""Graph-wide local mixing time ``τ(β,ε) = max_v τ_v(β,ε)`` in CONGEST.

The paper (§1, §2.2 footnote 6): computing the graph-wide value by running
the single-source algorithm from every vertex costs an ``O(n)`` factor; on
families whose local mixing times are homogeneous, *sampling* a few sources
suffices.  Both are provided, with the rounds of the sequential composition
charged to one ledger (runs are serialized — the paper's suggestion — so
the total is the sum of per-source costs plus one final max-convergecast).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.local_mixing_time import local_mixing_time_congest
from repro.congest.bfs import build_bfs_tree
from repro.congest.message import int_bits
from repro.congest.network import CongestNetwork
from repro.congest.tree_ops import convergecast_max
from repro.constants import DEFAULT_C, DEFAULT_EPS
from repro.utils.seeding import as_rng

__all__ = ["GraphLocalMixingResult", "graph_local_mixing_time_congest"]


@dataclass(frozen=True)
class GraphLocalMixingResult:
    """Graph-wide local mixing time and its provenance.

    Attributes
    ----------
    time:
        ``max`` of the per-source outputs.
    argmax_source:
        A source achieving the max.
    per_source:
        ``source → output`` for every source that was run.
    rounds:
        Total CONGEST rounds (sequential composition + final aggregation).
    sampled:
        Whether only a sample of sources was run (the result is then a
        lower bound on the true graph-wide value).
    """

    time: int
    argmax_source: int
    per_source: dict[int, int] = field(default_factory=dict)
    rounds: int = 0
    sampled: bool = False


def graph_local_mixing_time_congest(
    net: CongestNetwork,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    sources=None,
    sample: int | None = None,
    c: int = DEFAULT_C,
    seed=None,
    t_max: int | None = None,
) -> GraphLocalMixingResult:
    """Compute ``τ(β,ε)`` by sequentially running Algorithm 2 per source.

    Parameters
    ----------
    sources:
        Explicit source list; default all nodes (the paper's O(n)-factor
        composition).
    sample:
        If set (and ``sources`` is None), run from ``sample`` uniformly
        chosen sources instead — appropriate for homogeneous families
        (paper §1); the result is flagged ``sampled``.
    """
    rng = as_rng(seed)
    sampled = False
    if sources is None:
        if sample is not None:
            if not 1 <= sample <= net.n:
                raise ValueError("sample out of range")
            sources = sorted(
                int(s) for s in rng.choice(net.n, size=sample, replace=False)
            )
            sampled = True
        else:
            sources = range(net.n)
    per_source: dict[int, int] = {}
    for s in sources:
        res = local_mixing_time_congest(
            net, int(s), beta, eps, c=c, seed=rng, t_max=t_max
        )
        per_source[int(s)] = res.time
    if not per_source:
        raise ValueError("need at least one source")
    argmax = max(per_source, key=per_source.__getitem__)
    # Final aggregation: every source knows its value; one BFS tree + max
    # convergecast makes the maximum globally known (charged like any other
    # primitive).
    tree = build_bfs_tree(net, argmax, depth_limit=None)
    values = [0.0] * net.n
    for s, t in per_source.items():
        values[s] = float(t)
    import numpy as np

    got = convergecast_max(
        net, tree, np.asarray(values), int_bits(max(per_source.values())),
        phase="convergecast",
    )
    assert int(round(float(got))) == per_source[argmax]
    return GraphLocalMixingResult(
        time=per_source[argmax],
        argmax_source=argmax,
        per_source=per_source,
        rounds=net.ledger.rounds,
        sampled=sampled,
    )
