"""Baseline: Kempe–McSherry decentralized spectral estimation (JCSS 2008).

Their algorithm runs *orthogonal iteration* on the (weighted) adjacency
matrix in a decentralized fashion: each iteration is a local matvec plus a
decentralized orthonormalization, and after ``O(τ^mix log² n)`` rounds the
top-``k`` eigenvectors have converged.  With ``λ₂`` in hand, the mixing time
is pinned by the spectral envelope ``1/(1−λ₂) ≤ τ^mix ≤ log(n/ε)/(1−λ₂)``
(paper §1).

We implement orthogonal iteration functionally (the linear algebra is
exactly theirs) and charge the published per-iteration cost — each
iteration is one communication round for the matvec plus ``O(log n)``
rounds for the decentralized orthonormalization/AllReduce of the ``k×k``
Gram matrix (``k = 2`` here).  DESIGN.md §5 documents this as a charged
cost model; the reproduced paper cites this baseline for its round bound
only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.base import Graph
from repro.utils.seeding import as_rng

__all__ = ["KempeEstimate", "spectral_mixing_kempe"]


@dataclass(frozen=True)
class KempeEstimate:
    """Result of the orthogonal-iteration baseline.

    Attributes
    ----------
    lam2:
        Estimated second eigenvalue of the walk matrix.
    mixing_lower / mixing_upper:
        Spectral envelope on ``τ^mix(ε)`` implied by ``lam2``.
    iterations:
        Orthogonal-iteration steps until the eigenvalue stabilized.
    rounds_model:
        Charged rounds: ``iterations · (1 + ⌈log₂ n⌉)``.
    """

    lam2: float
    mixing_lower: float
    mixing_upper: float
    iterations: int
    rounds_model: int


def spectral_mixing_kempe(
    g: Graph,
    eps: float,
    *,
    lazy: bool = False,
    tol: float = 1e-8,
    max_iters: int = 200_000,
    seed=None,
) -> KempeEstimate:
    """Estimate ``λ₂`` by orthogonal iteration and derive mixing bounds.

    Iterates ``Q ← orth(N·Q)`` with ``Q ∈ R^{n×2}`` on the symmetrized walk
    operator until the Rayleigh quotient of the second column moves by less
    than ``tol``.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    g.require_connected()
    n = g.n
    rng = as_rng(seed)
    deg = g.degrees.astype(np.float64)
    inv_sqrt = sp.diags(1.0 / np.sqrt(deg))
    N = (inv_sqrt @ g.adjacency_matrix() @ inv_sqrt).tocsr()
    if lazy:
        N = (sp.identity(n, format="csr") + N) * 0.5

    Q = rng.standard_normal((n, 2))
    # Seed the first column with the known top eigenvector (√deg direction)
    # so deflation of λ₁ = 1 is immediate — the decentralized algorithm
    # gets this for free since the stationary direction is known locally.
    Q[:, 0] = np.sqrt(deg)
    lam2_prev = math.inf
    iterations = 0
    lam2 = 0.0
    for iterations in range(1, max_iters + 1):
        Z = N @ Q
        Q, _ = np.linalg.qr(Z)
        lam2 = float(Q[:, 1] @ (N @ Q[:, 1]))
        if abs(lam2 - lam2_prev) < tol:
            break
        lam2_prev = lam2
    gap = 1.0 - abs(lam2)
    if gap <= 0:
        lower = upper = math.inf
    else:
        lower = max((1.0 / gap - 1.0) * math.log(1.0 / (2.0 * eps)), 0.0)
        upper = math.log(n / eps) / gap
    per_iter = 1 + max(1, math.ceil(math.log2(n)))
    return KempeEstimate(
        lam2=lam2,
        mixing_lower=lower,
        mixing_upper=upper,
        iterations=iterations,
        rounds_model=iterations * per_iter,
    )
