"""Baseline: the Das Sarma–Nanongkai–Pandurangan–Tetali estimator (JACM'13).

Their decentralized mixing-time test performs ``Õ(√n)`` walks of length
``ℓ`` and compares the *sample* of endpoints against the stationary
distribution — a second-moment (collision) test rather than a full
histogram.  Two properties the reproduced paper highlights (§1, §1.2):

* round complexity ``Õ(n^{1/2} + n^{1/4}√(D·ℓ))`` — faster than
  flooding-based estimation when the mixing time is large;
* an accuracy **grey area**: a collision test measures ‖p_ℓ‖₂², which
  pins the L1 distance only up to a ``√n`` factor, so true distances
  between roughly ``ε`` and ``ε·√n/polylog`` cannot be resolved — the
  estimate lands "between the true value and τ^mix_s(O(1/(√n log n)))".

We implement the sampling test functionally and charge their *published*
round formula analytically (building their full random-walk routing stack
is outside the reproduced paper's scope — it only cites the bound for
comparison; DESIGN.md §5 documents this substitution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.constants import MAX_WALK_LENGTH_FACTOR
from repro.errors import BipartiteGraphError, ConvergenceError
from repro.graphs.base import Graph
from repro.spectral.stationary import stationary_distribution
from repro.utils.seeding import as_rng
from repro.walks.simulate import walk_endpoints

__all__ = ["DasSarmaEstimate", "mixing_time_dassarma"]


@dataclass(frozen=True)
class DasSarmaEstimate:
    """Result of the sampling-based estimator.

    Attributes
    ----------
    time:
        First doubled length passing the collision test.
    samples:
        Walks per phase.
    rounds_model:
        Rounds charged from the published ``Õ(√n + n^{1/4}√(D·ℓ))`` formula
        (summed over phases).
    history:
        ``(ℓ, collision statistic, threshold)`` per phase.
    """

    time: int
    samples: int
    rounds_model: int
    history: list[tuple[int, float, float]] = field(default_factory=list)


def _phase_rounds(n: int, diameter: int, ell: int) -> int:
    """The published per-phase round bound (constants set to 1)."""
    return math.ceil(math.sqrt(n)) + math.ceil(n**0.25 * math.sqrt(diameter * ell))


def mixing_time_dassarma(
    g: Graph,
    source: int,
    eps: float = 1.0 / (2.0 * math.e),
    *,
    samples: int | None = None,
    seed=None,
    lazy: bool = False,
    diameter: int | None = None,
    t_max: int | None = None,
) -> DasSarmaEstimate:
    """Estimate the mixing time by endpoint sampling + collision testing.

    The test declares "mixed" when the unbiased collision estimate of
    ``‖p_ℓ‖₂²`` is within ``(1 + ε²)`` of ``‖π‖₂²``.  Because
    ``‖p − π‖₁ ≤ √(n·(‖p‖₂² − ‖π‖₂²))`` (Cauchy–Schwarz, regular case),
    passing the test certifies L1 distance ``≲ ε·√n·‖π‖₂`` — NOT ``ε`` —
    which is precisely the grey area the paper describes.

    ``eps`` defaults to the ``1/(2e)`` the paper quotes for this baseline.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if not lazy and g.is_bipartite:
        raise BipartiteGraphError(f"{g.name} is bipartite; pass lazy=True")
    if not 0 <= source < g.n:
        raise ValueError("source out of range")
    n = g.n
    if samples is None:
        samples = math.ceil(math.sqrt(n) * math.log(n + 1)) * 8
    if samples < 2:
        raise ValueError("need at least 2 samples for a collision test")
    if diameter is None:
        from repro.graphs.properties import estimate_diameter_two_sweep

        diameter = max(estimate_diameter_two_sweep(g), 1)
    if t_max is None:
        t_max = MAX_WALK_LENGTH_FACTOR * n**3
    rng = as_rng(seed)
    pi = stationary_distribution(g)
    pi_l2sq = float((pi**2).sum())
    threshold = pi_l2sq * (1.0 + eps**2)

    history: list[tuple[int, float, float]] = []
    rounds = 0
    ell = 1
    while ell <= t_max:
        ends = walk_endpoints(g, source, ell, samples, lazy=lazy, seed=rng)
        counts = np.bincount(ends, minlength=n)
        # Unbiased estimator of ‖p_ℓ‖₂²: collisions / C(samples, 2).
        collisions = float((counts * (counts - 1)).sum()) / 2.0
        stat = collisions / (samples * (samples - 1) / 2.0)
        rounds += _phase_rounds(n, diameter, ell)
        history.append((ell, stat, threshold))
        if stat <= threshold:
            return DasSarmaEstimate(
                time=ell,
                samples=samples,
                rounds_model=rounds,
                history=history,
            )
        ell *= 2
    raise ConvergenceError(
        f"Das Sarma estimator did not converge by t_max={t_max}",
        last_length=ell // 2,
    )
