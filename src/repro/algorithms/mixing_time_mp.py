"""Baseline: the Molla–Pandurangan mixing-time estimator (ICDCN 2017).

The paper this repo reproduces builds on this earlier algorithm of the same
authors: estimate ``τ^mix_s(ε)`` by performing many random walks from ``s``
*as token counts* (each node forwards a multinomial split of its token count
to its neighbors — one ``O(log n)``-bit counter per edge per round), then
comparing the endpoint histogram against the stationary distribution; if not
ε-close, double the length and rerun.  ``O(τ^mix_s log n)`` rounds.

The reproduced paper's point (§1, §3) is that this approach does **not**
extend to local mixing — there is no known set to compare against — which is
why Algorithm 2 needs the deterministic flooding + k-smallest machinery.
Benchmark C1 contrasts the two run times on graphs where
``τ_local ≪ τ^mix``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.congest.message import int_bits
from repro.congest.network import CongestNetwork
from repro.constants import DEFAULT_EPS, MAX_WALK_LENGTH_FACTOR
from repro.errors import BipartiteGraphError, ConvergenceError
from repro.spectral.stationary import stationary_distribution
from repro.utils.seeding import as_rng

__all__ = ["MPMixingEstimate", "mixing_time_mp"]


@dataclass(frozen=True)
class MPMixingEstimate:
    """Result of the ICDCN'17 estimator.

    Attributes
    ----------
    time:
        First examined length whose empirical distance fell below ε (a
        2-approximation of ``τ^mix_s(ε)`` up to sampling noise, since
        lengths double).
    walks:
        Number of walk tokens used per phase.
    rounds:
        Total CONGEST rounds charged (Σ of phase lengths).
    history:
        ``(ℓ, empirical ‖p̂_ℓ − π‖₁)`` per phase.
    """

    time: int
    walks: int
    rounds: int
    history: list[tuple[int, float]] = field(default_factory=list)


def _diffuse_tokens(
    net: CongestNetwork, source: int, length: int, tokens: int, rng, lazy: bool
) -> np.ndarray:
    """Token diffusion with CONGEST cost charging (counts are O(log n)-bit
    counters per edge; one round per step)."""
    g = net.graph
    counts = np.zeros(g.n, dtype=np.int64)
    counts[source] = tokens
    bits = int_bits(tokens)
    for _ in range(length):
        nxt = np.zeros(g.n, dtype=np.int64)
        active = np.flatnonzero(counts)
        msgs = int(g.degrees[active].sum())
        for u in active:
            u = int(u)
            c = int(counts[u])
            if lazy:
                stay = int(rng.binomial(c, 0.5))
                nxt[u] += stay
                c -= stay
                if c == 0:
                    continue
            nbrs = g.neighbors(u)
            split = rng.multinomial(c, np.full(nbrs.size, 1.0 / nbrs.size))
            np.add.at(nxt, nbrs, split)
        counts = nxt
        net.ledger.charge(
            rounds=1, messages=msgs, bits=msgs * bits, phase="mp-walks"
        )
    return counts


def mixing_time_mp(
    net: CongestNetwork,
    source: int,
    eps: float = DEFAULT_EPS,
    *,
    walks: int | None = None,
    seed=None,
    lazy: bool = False,
    t_max: int | None = None,
) -> MPMixingEstimate:
    """Estimate ``τ^mix_s(ε)`` by token walks + doubling (see module doc).

    ``walks`` defaults to ``⌈16·n·ln(n+1)/ε²⌉`` — enough that the expected
    L1 sampling noise ``≈ √(n/walks)`` sits well below ε.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    g = net.graph
    if not lazy and g.is_bipartite:
        raise BipartiteGraphError(
            f"{g.name} is bipartite; pass lazy=True"
        )
    if not 0 <= source < g.n:
        raise ValueError("source out of range")
    if walks is None:
        walks = math.ceil(16.0 * g.n * math.log(g.n + 1) / eps**2)
    if t_max is None:
        t_max = MAX_WALK_LENGTH_FACTOR * g.n**3
    rng = as_rng(seed)
    pi = stationary_distribution(g)

    history: list[tuple[int, float]] = []
    ell = 1
    while ell <= t_max:
        counts = _diffuse_tokens(net, source, ell, walks, rng, lazy)
        p_hat = counts.astype(np.float64) / walks
        dist = float(np.abs(p_hat - pi).sum())
        history.append((ell, dist))
        if dist < eps:
            return MPMixingEstimate(
                time=ell,
                walks=walks,
                rounds=net.ledger.rounds,
                history=history,
            )
        ell *= 2
    raise ConvergenceError(
        f"MP estimator did not converge by t_max={t_max}", last_length=ell // 2
    )
