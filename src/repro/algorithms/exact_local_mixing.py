"""Exact local mixing time (paper §3.2, Theorem 2).

Identical to Algorithm 2 except the walk length increases by **one** per
iteration instead of doubling, so no length is skipped and the first ``ℓ``
passing the check is the exact (grid-semantics) local mixing time.  No
``τ·φ(S) = o(1)`` assumption is needed.

Two paper-faithful cost features:

* the flooding **resumes** from the previous distribution — one extra round
  per iteration ("the Step 3 essentially computes p_ℓ from p_{ℓ−1} in one
  round");
* the BFS tree is **recomputed every iteration** (the paper's pseudocode;
  its footnote 8 notes the alternative of building a full-depth tree once
  up front, available here as ``reuse_bfs=True``).

Total: ``O(τ_s · D̃ · log n · log_{1+ε} β)`` rounds, ``D̃ = min{τ_s, D}``.
"""

from __future__ import annotations

from repro.algorithms.estimate_rw_probability import FloodingEstimator
from repro.algorithms.local_mixing_time import (
    CongestLocalMixingResult,
    _grid_check,
)
from repro.congest.bfs import build_bfs_tree
from repro.congest.message import int_bits
from repro.congest.network import CongestNetwork
from repro.congest.tree_ops import convergecast_count
from repro.constants import DEFAULT_C, DEFAULT_EPS, MAX_WALK_LENGTH_FACTOR
from repro.errors import ConvergenceError
from repro.utils.seeding import as_rng
from repro.walks.local_mixing import size_grid

__all__ = ["exact_local_mixing_time_congest"]


def exact_local_mixing_time_congest(
    net: CongestNetwork,
    source: int,
    beta: float,
    eps: float = DEFAULT_EPS,
    *,
    c: int = DEFAULT_C,
    grid_factor: float | None = None,
    seed=None,
    t_max: int | None = None,
    reuse_bfs: bool = False,
) -> CongestLocalMixingResult:
    """Run the §3.2 exact algorithm (see module docstring).

    With ``reuse_bfs=True`` a single full-depth BFS tree is built once
    (footnote 8's optimization) instead of one per iteration.
    """
    if not 0 < eps < 1:
        raise ValueError("eps must be in (0,1)")
    if beta < 1:
        raise ValueError("beta must be >= 1")
    if not 0 <= source < net.n:
        raise ValueError("source out of range")
    n = net.n
    if t_max is None:
        t_max = MAX_WALK_LENGTH_FACTOR * n**3
    rng = as_rng(seed)
    sizes = size_grid(n, beta, eps if grid_factor is None else grid_factor)
    threshold = 4.0 * eps

    est = FloodingEstimator(net, source, c=c)
    full_tree = (
        build_bfs_tree(net, source, depth_limit=None) if reuse_bfs else None
    )
    history: list[tuple[int, float]] = []
    for ell in range(1, t_max + 1):
        # One incremental flooding round: p̃_{ℓ-1} → p̃_ℓ.
        p_tilde = est.step(1)
        tree = (
            full_tree
            if full_tree is not None
            else build_bfs_tree(net, source, depth_limit=ell)
        )
        tree_size = convergecast_count(
            net, tree, tree.in_tree, int_bits(n), phase="convergecast"
        )
        assert tree_size == tree.size
        stopped, win_r, win_sum, best = _grid_check(
            net, tree, p_tilde, sizes, threshold, rng
        )
        history.append((ell, best))
        if stopped:
            return CongestLocalMixingResult(
                time=ell,
                set_size=win_r,
                deviation=win_sum,
                threshold=threshold,
                rounds=net.ledger.rounds,
                ledger=net.ledger,
                phases=history,
            )
    raise ConvergenceError(
        f"exact algorithm did not stop by t_max={t_max}", last_length=t_max
    )
