"""**Algorithm 1 — ESTIMATE-RW-PROBABILITY** (paper §2.4).

Deterministic flooding computation of the walk distribution: starting from
``w_0 = 1`` at the source, every round each node with ``w ≠ 0`` sends
``w/d(u)`` to its neighbors; each node sums what it receives and rounds to
the nearest multiple of ``n^{-c}``.  After ``ℓ`` rounds node ``u`` holds
``p̃_ℓ(u)`` with ``|p̃_ℓ(u) − p_ℓ(u)| < ℓ·n^{-c}`` (Lemma 2).

Messages carry one fixed-point value of ``⌈c·log₂ n⌉ + 1`` bits — the whole
point of the rounding is to fit the CONGEST budget.

Both layers:

* **fast** — ``w ← rint(A·w·n^c)/n^c`` (one sparse matvec per round;
  :mod:`scipy` CSR matvec accumulates neighbors in sorted order, the same
  order the faithful program sums its inbox, so the two layers produce
  bit-identical floats);
* **faithful** — a per-node program through the engine.

Precision note: values live on the ``n^{-c}`` grid.  Simulating the grid in
float64 is exact while ``c·log₂ n ≤ 53`` (e.g. ``n ≤ 456`` at ``c = 6``);
beyond that the float simulation deviates from ideal fixed-point arithmetic
by ``≲ 2^{-50}`` per step — far below both ``n^{-c}`` and every ε used
anywhere.  Tests that assert Lemma 2's exact bound run in the exact regime.
"""

from __future__ import annotations

import numpy as np

from repro.congest.engine import NodeProgram, SyncEngine
from repro.congest.message import Message, fixed_point_bits
from repro.congest.network import CongestNetwork
from repro.constants import DEFAULT_C
from repro.spectral.transition import walk_operator

__all__ = [
    "FloodingEstimator",
    "estimate_rw_probability",
    "estimate_rw_probabilities",
]


class _FloodProgram(NodeProgram):
    """One node of the faithful Algorithm 1 execution."""

    def __init__(self, source: int, grid: float, bits: int):
        self.source = source
        self.grid = grid  # n^-c
        self.bits = bits
        self.w = 0.0

    def setup(self) -> None:
        if self.node == self.source:
            self.w = 1.0

    def send(self, round_no: int):
        if self.w == 0.0:
            return {}
        share = self.w / len(self.neighbors)
        return {int(v): Message(share, self.bits) for v in self.neighbors}

    def receive(self, round_no: int, inbox) -> None:
        # Sum in ascending neighbor order — the same order scipy's CSR
        # matvec uses, so fast and faithful agree bitwise.
        sigma = 0.0
        for u in sorted(inbox):
            sigma += inbox[u].value
        self.w = float(np.rint(sigma / self.grid)) * self.grid


class FloodingEstimator:
    """Stateful Algorithm 1 runner supporting incremental stepping.

    Algorithm 2 restarts it per phase (`run(ℓ)` from scratch); the §3.2
    exact algorithm calls :meth:`step` once per iteration, resuming from the
    previous distribution (paper: "we resume the deterministic flooding
    technique from the last step").

    Attributes
    ----------
    w:
        Current estimated distribution ``p̃_t`` (read-only view).
    t:
        Number of flooding rounds performed so far.
    """

    def __init__(
        self,
        net: CongestNetwork,
        source: int,
        *,
        c: int = DEFAULT_C,
        phase: str = "flooding",
    ):
        if not 0 <= source < net.n:
            raise ValueError("source out of range")
        if c < 1:
            raise ValueError("c must be >= 1 (paper uses c >= 6)")
        self.net = net
        self.source = source
        self.c = c
        self.phase = phase
        self.bits = fixed_point_bits(net.n, c)
        net.check_bits(self.bits)
        self._grid = float(net.n) ** (-c)
        self.t = 0
        if net.mode == "fast":
            self._A = walk_operator(net.graph)
            self._w = np.zeros(net.n, dtype=np.float64)
            self._w[source] = 1.0
            self._programs = None
        else:
            self._A = None
            self._programs = [
                _FloodProgram(source, self._grid, self.bits)
                for _ in range(net.n)
            ]
            self._engine = SyncEngine(net, phase=phase)
            # Engine injects node/neighbors on first run; do it eagerly so
            # `w` is readable before any step.
            g = net.graph
            for u, prog in enumerate(self._programs):
                prog.node = u
                prog.neighbors = g.neighbors(u)
                prog.net = net
                prog.setup()

    @property
    def w(self) -> np.ndarray:
        """Current estimate ``p̃_t`` as a length-``n`` array (copy)."""
        if self.net.mode == "fast":
            return self._w.copy()
        return np.array([p.w for p in self._programs], dtype=np.float64)

    def step(self, rounds: int = 1) -> np.ndarray:
        """Advance ``rounds`` flooding rounds; return the new estimate."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.net.mode == "fast":
            g = self.net.graph
            for _ in range(rounds):
                senders = np.flatnonzero(self._w)
                msgs = int(g.degrees[senders].sum())
                self._w = (
                    np.rint((self._A @ self._w) / self._grid) * self._grid
                )
                self.net.ledger.charge(
                    rounds=1,
                    messages=msgs,
                    bits=msgs * self.bits,
                    phase=self.phase,
                )
                self.t += 1
            return self.w
        for _ in range(rounds):
            # One engine round; programs never halt on their own.
            self._engine.run_prepared(self._programs)
            self.t += 1
        return self.w

    def run(self, length: int) -> np.ndarray:
        """Advance to exactly ``length`` total rounds (must not rewind)."""
        if length < self.t:
            raise ValueError(
                f"cannot rewind: already at t={self.t}, asked for {length}"
            )
        return self.step(length - self.t)


def estimate_rw_probability(
    net: CongestNetwork,
    source: int,
    length: int,
    *,
    c: int = DEFAULT_C,
    phase: str = "flooding",
) -> np.ndarray:
    """One-shot Algorithm 1: the estimated ``p̃_ℓ`` after ``length`` rounds."""
    est = FloodingEstimator(net, source, c=c, phase=phase)
    return est.run(length)


def _estimate_task(g, payload: tuple) -> np.ndarray:
    """Worker task: one per-source Algorithm-1 run on its own fresh
    :class:`CongestNetwork` over the shared-memory graph."""
    source, length, c, bandwidth_factor, mode = payload
    net = CongestNetwork(g, bandwidth_factor=bandwidth_factor, mode=mode)
    return estimate_rw_probability(net, source, length, c=c)


def estimate_rw_probabilities(
    g,
    sources,
    length: int,
    *,
    c: int = DEFAULT_C,
    bandwidth_factor: int = 16,
    mode: str = "fast",
    n_workers: int | None = None,
    executor=None,
) -> np.ndarray:
    """Algorithm 1 from many sources: the ``(k, n)`` block of estimates
    ``p̃_ℓ`` (row ``j`` = source ``sources[j]``).

    Each source is an independent CONGEST execution (the paper's
    multi-source phases run concurrently; here each run gets its own
    fresh :class:`CongestNetwork` and ledger over the same topology).
    With ``n_workers``/``executor`` the per-source runs fan out through
    :func:`~repro.parallel.shard_map` with the graph published to shared
    memory once; Algorithm 1 is deterministic, so the block is identical
    at any worker count — and to the serial loop.
    """
    from repro.engine.batch import _normalize_sources

    if length < 0:
        raise ValueError("length must be non-negative")
    src = _normalize_sources(g, sources)
    payloads = [(s, length, c, bandwidth_factor, mode) for s in src]
    if n_workers is None and executor is None:
        rows = [_estimate_task(g, p) for p in payloads]
    else:
        from repro.parallel import shard_map

        rows = shard_map(
            _estimate_task,
            payloads,
            graph=g,
            n_workers=n_workers,
            executor=executor,
        )
    return np.vstack(rows)
