"""The paper's distributed algorithms and the baselines it compares against.

* :mod:`~repro.algorithms.estimate_rw_probability` — **Algorithm 1**,
  deterministic flooding computation of the walk distribution with
  ``n^{-c}`` fixed-point rounding (Lemma 2 error bound).
* :mod:`~repro.algorithms.local_mixing_time` — **Algorithm 2**, the
  2-approximation of the local mixing time (Theorem 1).
* :mod:`~repro.algorithms.exact_local_mixing` — the §3.2 exact variant
  (Theorem 2).
* :mod:`~repro.algorithms.mixing_time_mp` — baseline: the Molla–Pandurangan
  ICDCN'17 random-walk mixing-time estimator.
* :mod:`~repro.algorithms.mixing_time_dassarma` — baseline: the Das Sarma
  et al. sampling estimator (with its documented accuracy grey area).
* :mod:`~repro.algorithms.spectral_kempe` — baseline: Kempe–McSherry
  decentralized orthogonal iteration (λ₂-based mixing estimate).
"""

from repro.algorithms.estimate_rw_probability import (
    FloodingEstimator,
    estimate_rw_probabilities,
    estimate_rw_probability,
)
from repro.algorithms.local_mixing_time import (
    CongestLocalMixingResult,
    local_mixing_time_congest,
    local_mixing_times_congest,
)
from repro.algorithms.exact_local_mixing import exact_local_mixing_time_congest
from repro.algorithms.graph_local_mixing import (
    GraphLocalMixingResult,
    graph_local_mixing_time_congest,
)
from repro.algorithms.mixing_time_mp import MPMixingEstimate, mixing_time_mp
from repro.algorithms.mixing_time_dassarma import (
    DasSarmaEstimate,
    mixing_time_dassarma,
)
from repro.algorithms.spectral_kempe import KempeEstimate, spectral_mixing_kempe

__all__ = [
    "FloodingEstimator",
    "estimate_rw_probability",
    "estimate_rw_probabilities",
    "CongestLocalMixingResult",
    "local_mixing_time_congest",
    "local_mixing_times_congest",
    "exact_local_mixing_time_congest",
    "GraphLocalMixingResult",
    "graph_local_mixing_time_congest",
    "MPMixingEstimate",
    "mixing_time_mp",
    "DasSarmaEstimate",
    "mixing_time_dassarma",
    "KempeEstimate",
    "spectral_mixing_kempe",
]
