"""Span-based query tracing: where did this query spend its time?

A *span* is one named, timed region with optional metadata and child
spans — a query's spans form a timeline tree.  The serving pipeline
threads one tree per query:

``query`` (service submit) → ``cache_lookup`` → ``coalesced_batch``
(one per coalescer flush, shared by every query in the batch) →
``engine_solve`` (the batched driver) → per-kernel timings collected by
:mod:`repro.obs.kernels` — and, when the batch shards across a
:class:`~repro.parallel.ShardExecutor`, one ``shard_solve`` span per
worker process, shipped back over the executor's task-return channel and
re-attached under the dispatching span (see
:meth:`Span.to_dict` / :meth:`Span.from_dict`).

Propagation is :mod:`contextvars`-based, so the ambient span follows the
code across ``await`` boundaries and into ``asyncio.to_thread`` workers
(the coalescer's batch span is entered on the event loop but times the
engine call on a worker thread).  Spans for work shared by several
queries (a coalesced batch) are created *detached* — no ambient parent,
because "which query arrived first" is nondeterministic — and each
waiting query adopts the finished batch span into its own tree.

Everything here is gated on :func:`~repro.obs.config.observability_enabled`:
disabled (the default), :func:`trace` yields ``None`` and costs one
boolean check; results are bitwise identical either way.

Finished root spans land in a bounded in-process sink readable with
:func:`recent_traces` — enough for tests, benchmarks, and a future
``/traces`` debug endpoint without unbounded growth.
"""

from __future__ import annotations

import collections
import contextvars
import threading
import time
from contextlib import contextmanager

from .config import observability_enabled

__all__ = [
    "Span",
    "attach_or_record",
    "clear_traces",
    "current_span",
    "recent_traces",
    "start_span",
    "trace",
    "use_span",
]

#: The ambient span of the current logical context (``None`` outside any
#: trace).  contextvars make this follow tasks and to_thread workers.
_current: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_SINK_MAXLEN = 256
_sink: collections.deque = collections.deque(maxlen=_SINK_MAXLEN)
_sink_lock = threading.Lock()


class Span:
    """One named, timed region of a query timeline.

    Carries a ``name``, a ``meta`` dict of freeform attributes (backend
    name, batch size, worker pid, ...), a monotonic start time, a
    ``duration`` (seconds, set by :meth:`finish`), and child spans.
    Spans are created through :func:`trace` / :func:`start_span` rather
    than directly; :meth:`to_dict` / :meth:`from_dict` round-trip a
    finished subtree through pickle-friendly dicts so shard workers can
    ship their timelines back to the parent process."""

    __slots__ = ("name", "meta", "children", "duration", "_t0")

    def __init__(self, name: str, meta: dict | None = None):
        self.name = name
        self.meta = dict(meta) if meta else {}
        self.children: list[Span] = []
        self.duration: float | None = None
        self._t0 = time.perf_counter()

    def finish(self) -> "Span":
        """Stop the clock: record the elapsed wall time since creation
        as :attr:`duration` (idempotent — the first call wins) and return
        the span for chaining."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._t0
        return self

    def add_child(self, child: "Span") -> "Span":
        """Append ``child`` to this span's children and return the
        child (used both by the ambient-context machinery and when
        re-attaching spans shipped from shard workers)."""
        self.children.append(child)
        return child

    def to_dict(self) -> dict:
        """This finished subtree as a nested plain dict (name, meta,
        duration, children) — pickle/JSON friendly, so worker processes
        can return their timelines over the executor's result channel."""
        return {
            "name": self.name,
            "meta": dict(self.meta),
            "duration": self.duration,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span subtree from :meth:`to_dict` output (the
        parent process does this with each shard worker's shipped
        timeline before attaching it to the live trace)."""
        span = cls(data["name"], data.get("meta"))
        span.duration = data.get("duration")
        span.children = [
            cls.from_dict(c) for c in data.get("children", ())
        ]
        return span

    def find(self, name: str) -> "Span | None":
        """Depth-first search this subtree for the first span named
        ``name`` (a test/debug convenience; returns ``None`` if absent)."""
        if self.name == name:
            return self
        for child in self.children:
            hit = child.find(name)
            if hit is not None:
                return hit
        return None

    def __repr__(self) -> str:
        dur = (
            f"{self.duration * 1e3:.3f}ms"
            if self.duration is not None
            else "running"
        )
        return (
            f"Span({self.name!r}, {dur}, children={len(self.children)})"
        )


def current_span() -> Span | None:
    """The ambient span of the calling context, or ``None`` when no
    trace is active (or observability is disabled)."""
    return _current.get()


def start_span(name: str, detached: bool = False, **meta) -> Span | None:
    """Create (and return) a new span without entering it as ambient
    context, or ``None`` when observability is disabled.  Attached
    (default) — the span is added as a child of the current ambient
    span, if any.  ``detached=True`` — no parent linkage: used for work
    shared by several queries (a coalesced batch), where any single
    ambient parent would be a nondeterministic choice; the finished span
    is later adopted by each interested trace via :func:`attach_or_record`.
    The caller must pair this with :func:`use_span` (to run code under
    it) and :meth:`Span.finish`."""
    if not observability_enabled():
        return None
    span = Span(name, meta)
    if not detached:
        parent = _current.get()
        if parent is not None:
            parent.add_child(span)
    return span


@contextmanager
def use_span(span: Span | None):
    """Make ``span`` the ambient span for the duration of the ``with``
    block (restoring the previous ambient span on exit).  Does *not*
    finish the span — pair with :func:`start_span`/:meth:`Span.finish`
    when the span's lifetime outlives one code block (the coalescer's
    batch span is entered once per engine call but finished after the
    fan-out).  A ``None`` span (observability disabled) is a no-op."""
    if span is None:
        yield None
        return
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)


@contextmanager
def trace(name: str, **meta):
    """Time a region as a span in the current query timeline.

    The common front door: creates a span (child of the ambient span if
    one exists, else a new root), makes it ambient for the block, and
    finishes it on exit; a root span is additionally delivered to the
    :func:`recent_traces` sink.  Yields the :class:`Span` — or ``None``
    when observability is disabled, in which case the whole context
    manager is one boolean check and the traced code runs unchanged."""
    if not observability_enabled():
        yield None
        return
    parent = _current.get()
    span = Span(name, meta)
    if parent is not None:
        parent.add_child(span)
    token = _current.set(span)
    try:
        yield span
    finally:
        _current.reset(token)
        span.finish()
        if parent is None:
            _record_root(span)


def attach_or_record(span: Span | None) -> None:
    """Deliver a finished detached span into the current timeline: added
    as a child of the ambient span when a trace is active, else recorded
    as a root in the :func:`recent_traces` sink.  How coalesced-batch
    and shard-worker spans join the query traces that waited on them.
    ``None`` (observability was disabled when the span would have been
    created) is a no-op."""
    if span is None:
        return
    parent = _current.get()
    if parent is not None:
        parent.add_child(span)
    else:
        _record_root(span)


def _record_root(span: Span) -> None:
    with _sink_lock:
        _sink.append(span)


def recent_traces(clear: bool = False) -> list[Span]:
    """The most recently finished root spans (bounded to the last 256;
    oldest first).  ``clear=True`` also empties the sink — tests and
    benchmarks use that to scope assertions to one operation."""
    with _sink_lock:
        out = list(_sink)
        if clear:
            _sink.clear()
    return out


def clear_traces() -> None:
    """Empty the finished-trace sink (:func:`recent_traces` starts
    fresh)."""
    with _sink_lock:
        _sink.clear()
