"""Shared benchmark reporting on top of the metrics registry.

Every ``benchmarks/bench_*`` module used to hand-roll its own
``time.perf_counter()`` pairs and f-string progress lines.
:class:`BenchReporter` replaces that: named, nestable
:meth:`~BenchReporter.section` timers whose wall seconds land both in a
plain ``timings`` dict (the numbers the benchmark asserts its speedup
gates on) and in a ``repro_bench_section_seconds{bench,section}``
histogram, plus a :meth:`~BenchReporter.snapshot` JSON view that the
benchmark harness dumps next to each ``benchmarks/results`` artifact —
so a results table always ships with the metrics (kernel profile,
cache/coalescer counters, section latencies) that produced it.

Section timing always records: a benchmark constructing a reporter *is*
the explicit request to measure, so it does not ride the global
observability switch (which exists to keep instrumentation out of
production hot paths, not out of benchmarks)."""

from __future__ import annotations

import time
from contextlib import contextmanager

from .metrics import MetricsRegistry, default_registry

__all__ = ["BenchReporter"]


class BenchReporter:
    """Per-benchmark timing sections + a metrics snapshot for artifacts.

    ``timings`` maps section label → wall seconds of the *last* run of
    that section (benchmarks time each configuration once); repeated
    sections also accumulate in the histogram.  :meth:`snapshot` returns
    a JSON-ready dict combining the section timings with every metric
    visible through the reporter's registry — which includes the
    process-global :func:`~repro.obs.metrics.default_registry`, so
    kernel profiles and engine latencies recorded during the benchmark
    appear in the artifact."""

    def __init__(self, name: str, registry: MetricsRegistry | None = None):
        self.name = name
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.include(default_registry())
        self.timings: dict[str, float] = {}
        self.identity: dict[str, object] = {}
        self._hist = self.registry.histogram(
            "repro_bench_section_seconds",
            "Wall seconds of benchmark timing sections.",
            labels=("bench", "section"),
        )

    @contextmanager
    def section(self, label: str):
        """Time the ``with`` block as section ``label``: wall seconds go
        to ``self.timings[label]`` and the section histogram.  Yields the
        reporter so nested helpers can open sub-sections."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            dt = time.perf_counter() - t0
            self.timings[label] = dt
            self._hist.labels(bench=self.name, section=label).observe(dt)

    def seconds(self, label: str) -> float:
        """Wall seconds of the last run of section ``label``
        (``KeyError`` if the section never ran)."""
        return self.timings[label]

    def record_identity(self, **fields) -> None:
        """Record machine-independent *identity* facts of this run —
        result digests, convergence counters, anything that must be
        byte-for-byte reproducible across runs.  These land in the
        snapshot's ``identity`` dict, which the perf-trajectory
        comparator (:func:`repro.obs.history.compare`) gates **exactly**:
        a changed identity field fails the check, no noise band applies.
        Values must be JSON-serializable."""
        self.identity.update(fields)

    def snapshot(self) -> dict:
        """JSON-ready artifact payload: the benchmark name, the section
        timings, the identity fields (:meth:`record_identity`), and the
        full metrics snapshot visible through this reporter's registry
        (sections, kernel profile, engine/component counters)."""
        return {
            "bench": self.name,
            "sections": dict(self.timings),
            "identity": dict(self.identity),
            "metrics": self.registry.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"BenchReporter({self.name!r}, sections={len(self.timings)})"
        )
