"""The flight recorder: a bounded in-memory log of completed queries.

Metrics (:mod:`repro.obs.metrics`) aggregate; traces
(:mod:`repro.obs.trace`) are opt-in and sampled by whoever is watching.
Neither answers the operator's actual question when a production query
misbehaves: *what exactly happened to the query that just came back slow
(or not at all)?*  The :class:`FlightRecorder` closes that gap — an
**always-on**, bounded, thread-safe ring buffer of per-query
:class:`QueryRecord` entries written by the serving layer at query
completion:

* every record carries the query's trace id, the graph's structural key,
  the canonical knob identity, the resolved backend, the outcome (or
  typed error code — a :class:`~repro.service.errors.DeadlineExceededError`
  or a wire-aborted query leaves a record like any success), the cache /
  coalescer disposition, and the end-to-end duration;
* while tracing is enabled the record additionally captures the
  per-stage span durations of the query's own timeline and — for batches
  that sharded across a :class:`~repro.parallel.ShardExecutor` — the
  per-worker kernel-profile deltas shipped back on the executor's
  task-return channel (see :func:`stages_from_span` /
  :func:`kernels_from_span`);
* a second, smaller ring — the **slow-query log** — admits only records
  whose duration crosses a configurable threshold, with slowest-N
  retrieval filterable per graph and per backend.

Cost contract (the same one :mod:`repro.obs.config` documents): a record
is an O(1) append of numbers the serving path already computed — two
``perf_counter`` reads and one deque append per query, no serialization,
no I/O — and recording never touches the computation, so results are
bitwise identical with the recorder on, off (``capacity=0``), or full
(the ring overwrites, it never blocks).  ``tests/test_flight.py`` pins
both halves; ``benchmarks/bench_o1_observability.py`` gates the
enabled-vs-disabled overhead.

Records are exported over the wire by :mod:`repro.obs.export` and the
``WireServer``'s ``GET /v1/debug/flight`` / ``/v1/debug/slow`` /
``/v1/debug/trace/<id>`` endpoints.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = [
    "FlightRecorder",
    "QueryRecord",
    "graph_key",
    "kernels_from_span",
    "stages_from_span",
]


def graph_key(g) -> str:
    """A short, structural identity string for a graph: ``"<n>n:<hex>"``
    where the hex part digests the CSR adjacency (BLAKE2b-64).  Equal
    structures get equal keys — the same contract the serving caches ride
    — so flight records of structurally revisited dynamic snapshots
    correlate.  Memoized on the (immutable) graph object, so the O(m)
    digest is paid once per structure and every later record appends a
    precomputed string."""
    key = g.__dict__.get("_flight_key")
    if key is None:
        import hashlib

        h = hashlib.blake2b(digest_size=8)
        h.update(g._indptr.tobytes())
        h.update(g._indices.tobytes())
        key = g.__dict__["_flight_key"] = f"{g.n}n:{h.hexdigest()}"
    return key


def stages_from_span(span) -> dict:
    """Flatten a finished query span tree into ``{stage name: summed
    wall seconds}`` — the per-stage breakdown a :class:`QueryRecord`
    stores (``cache_lookup``, ``coalesced_batch``, ``engine_solve``,
    ``shard_solve``, ...).  Repeated stage names accumulate; an
    unfinished child contributes nothing.  ``None`` (tracing disabled)
    yields ``{}``."""
    out: dict = {}
    if span is None:
        return out
    stack = list(span.children)
    while stack:
        s = stack.pop()
        if s.duration is not None:
            out[s.name] = out.get(s.name, 0.0) + s.duration
        stack.extend(s.children)
    return out


def kernels_from_span(span) -> dict:
    """Collect the worker-side kernel-profile deltas riding a query's
    span tree: every ``shard_solve`` span carries the delta of exactly
    its solve in ``meta["kernels"]`` (shipped back over the
    :class:`~repro.parallel.ShardExecutor` task-return channel), and this
    merges them into one ``{"backend/kernel": {"calls", "seconds"}}``
    dict for the flight record.  ``{}`` when tracing was off or the solve
    never sharded."""
    merged: dict = {}
    if span is None:
        return merged
    stack = [span]
    while stack:
        s = stack.pop()
        if s.name == "shard_solve":
            delta = s.meta.get("kernels") or {}
            for key, vals in delta.get("kernels", {}).items():
                slot = merged.setdefault(key, {"calls": 0, "seconds": 0.0})
                slot["calls"] += vals.get("calls", 0)
                slot["seconds"] += vals.get("seconds", 0.0)
        stack.extend(s.children)
    return merged


@dataclass
class QueryRecord:
    """One completed query, as the flight recorder remembers it.

    Every field is a number or small string the serving path had already
    computed when the query finished — building a record allocates one
    object and copies references, nothing else.  ``knobs`` holds the
    engine's canonical ``TimesKey`` (a NamedTuple; serialized by
    :mod:`repro.obs.export`), ``span`` the finished root
    :class:`~repro.obs.trace.Span` of the query's timeline when tracing
    was enabled (``None`` otherwise — the record itself is always-on).
    """

    #: Unique per-recorder id correlating the record with latency
    #: histogram exemplars and ``/v1/debug/trace/<id>`` lookups.
    trace_id: str
    #: Structural graph identity (:func:`graph_key`), ``None`` when the
    #: query failed before its graph reference resolved.
    graph: str | None
    #: Query source vertex.
    source: int
    #: ``"ok"``, a stable error code (``"deadline_exceeded"``,
    #: ``"shutting_down"``, ``"bad_request"``, ``"not_found"``,
    #: ``"unconverged"``) or ``"error:<ExceptionType>"``.
    outcome: str
    #: End-to-end seconds, admission to answer (or typed failure).
    duration: float
    #: Canonical knob identity (``TimesKey``), ``None`` before
    #: canonicalization succeeded.
    knobs: object = None
    #: Resolved backend name for the execution group.
    backend: str | None = None
    #: Cache disposition: ``"hit"`` / ``"miss"`` / ``"inflight_dedup"``
    #: (``"miss"`` means the query cost — or joined — a coalesced solve).
    cache: str | None = None
    #: Coalesced-batch facts when tracing captured them:
    #: ``{"sources": ..., "trigger": ...}``.
    batch: dict | None = None
    #: Merged worker-side kernel deltas (:func:`kernels_from_span`).
    kernels: dict = field(default_factory=dict)
    #: Per-stage wall seconds (:func:`stages_from_span`).
    stages: dict = field(default_factory=dict)
    #: Query priority and relative deadline as admitted (serving knobs —
    #: they never change what was computed, but they explain scheduling).
    priority: int = 0
    deadline: float | None = None
    #: Unix wall-clock completion time (``time.time()``) so records
    #: correlate with external logs; exported as ``"unix_ts"``.
    unix_ts: float = 0.0
    #: Finished root span of the query timeline (tracing enabled only).
    span: object = None


class FlightRecorder:
    """An always-on, bounded, thread-safe ring of :class:`QueryRecord`.

    Parameters
    ----------
    capacity:
        Main-ring bound (oldest records overwritten).  ``0`` disables the
        recorder entirely: :meth:`record` returns immediately and no
        counters move — the off half of the bitwise-identity contract.
    slow_threshold:
        Seconds at or above which a record is *also* admitted to the
        slow-query ring (its own, smaller bound: ``slow_capacity``).
    slow_capacity:
        Slow-ring bound.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` for
        the recorder counters (``repro_flight_records_total``,
        ``repro_flight_slow_total``, ``repro_flight_errors_total``);
        private when omitted, exposed as :attr:`metrics`.

    Thread-safety: one lock guards both rings; every public method takes
    it for O(ring) at most (reads copy), appends are O(1).  The serving
    layer records from the event loop while debug endpoints, tests and
    benchmark threads read concurrently — ``tests/test_flight.py``
    hammers exactly that with exact record accounting.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        slow_threshold: float = 0.25,
        slow_capacity: int = 256,
        registry: MetricsRegistry | None = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if slow_capacity < 1:
            raise ValueError("slow_capacity must be >= 1")
        if slow_threshold < 0:
            raise ValueError("slow_threshold must be >= 0")
        self.capacity = int(capacity)
        self.slow_threshold = float(slow_threshold)
        self.slow_capacity = int(slow_capacity)
        self._ring: deque[QueryRecord] = deque(maxlen=max(capacity, 1))
        self._slow: deque[QueryRecord] = deque(maxlen=slow_capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._records_total = self.metrics.counter(
            "repro_flight_records_total",
            "Query records appended to the flight recorder.",
        )
        self._slow_total = self.metrics.counter(
            "repro_flight_slow_total",
            "Flight records at or above the slow-query threshold.",
        )
        self._errors_total = self.metrics.counter(
            "repro_flight_errors_total",
            "Flight records whose outcome was not ok.",
        )

    @property
    def enabled(self) -> bool:
        """False when constructed with ``capacity=0`` — every
        :meth:`record` call is then a no-op costing one attribute read."""
        return self.capacity > 0

    def next_trace_id(self) -> str:
        """A fresh trace id (``"q-<n>"``, monotonically increasing per
        recorder) — assigned at admission so latency-histogram exemplars
        and the eventual flight record agree."""
        return f"q-{next(self._ids)}"

    def record(self, rec: QueryRecord) -> None:
        """Append one completed-query record (O(1); oldest records roll
        off a full ring).  A record meeting the slow threshold is also
        admitted to the slow ring.  No-op when the recorder is disabled."""
        if not self.capacity:
            return
        slow = rec.duration >= self.slow_threshold
        with self._lock:
            self._ring.append(rec)
            if slow:
                self._slow.append(rec)
        self._records_total.inc()
        if slow:
            self._slow_total.inc()
        if rec.outcome != "ok":
            self._errors_total.inc()

    @staticmethod
    def _matches(rec: QueryRecord, graph, backend, outcome) -> bool:
        if graph is not None and rec.graph != graph:
            return False
        if backend is not None and rec.backend != backend:
            return False
        if outcome is not None and rec.outcome != outcome:
            return False
        return True

    def records(
        self,
        limit: int | None = None,
        *,
        graph: str | None = None,
        backend: str | None = None,
        outcome: str | None = None,
    ) -> list[QueryRecord]:
        """The retained records, most recent first, optionally filtered
        by graph structural key, backend name and/or outcome, truncated
        to ``limit``."""
        with self._lock:
            out = [
                rec
                for rec in reversed(self._ring)
                if self._matches(rec, graph, backend, outcome)
            ]
        return out[:limit] if limit is not None else out

    def slow_records(
        self,
        limit: int | None = None,
        *,
        graph: str | None = None,
        backend: str | None = None,
    ) -> list[QueryRecord]:
        """The slow-query log's slowest-N view: retained slow records
        sorted by descending duration (ties: most recent first),
        optionally filtered per graph / per backend."""
        with self._lock:
            hits = [
                (idx, rec)
                for idx, rec in enumerate(self._slow)
                if self._matches(rec, graph, backend, None)
            ]
        hits.sort(key=lambda pair: (-pair[1].duration, -pair[0]))
        out = [rec for _, rec in hits]
        return out[:limit] if limit is not None else out

    def get(self, trace_id: str) -> QueryRecord | None:
        """Look a record up by trace id (both rings; ``None`` when it has
        rolled off or never existed).  O(capacity) — a debug-endpoint
        operation, not a serving-path one."""
        with self._lock:
            for rec in reversed(self._ring):
                if rec.trace_id == trace_id:
                    return rec
            for rec in reversed(self._slow):
                if rec.trace_id == trace_id:
                    return rec
        return None

    def stats(self) -> dict:
        """Recorder counters and occupancy as one plain dict:
        ``records`` / ``slow`` / ``errors`` totals plus current ring
        sizes and the configured bounds."""
        with self._lock:
            retained, slow_retained = len(self._ring), len(self._slow)
        return {
            "records": self._records_total.value,
            "slow": self._slow_total.value,
            "errors": self._errors_total.value,
            "retained": retained,
            "slow_retained": slow_retained,
            "capacity": self.capacity,
            "slow_capacity": self.slow_capacity,
            "slow_threshold": self.slow_threshold,
        }

    def clear(self) -> None:
        """Empty both rings (the totals keep counting — they are
        monotonic counters, not occupancy)."""
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def __repr__(self) -> str:
        st = self.stats()
        return (
            f"FlightRecorder(retained={st['retained']}/{self.capacity}, "
            f"slow={st['slow_retained']}/{self.slow_capacity}, "
            f"records={st['records']})"
        )
