"""Benchmark perf-trajectory history: record, load, compare.

Every :class:`~repro.obs.reporting.BenchReporter` run already dumps a
``results/<bench>.metrics.json`` snapshot — and then the next run
overwrites it, so the suite has no memory.  This module gives each
benchmark an **append-only** trajectory file
(``benchmarks/results/history/<bench>.jsonl``, one JSON entry per line,
one file per benchmark) and a comparator that can say whether the newest
entry regressed:

* :func:`extract_entry` distills one reporter snapshot into a compact
  history entry: section timings, the reporter's *identity* fields
  (counters and result digests that must never drift — see
  :meth:`~repro.obs.reporting.BenchReporter.record_identity`), a quick-
  vs-full flag, and a :func:`machine_fingerprint` so numbers from
  different machines are never compared against each other.
* :func:`append_entry` / :func:`load_history` are the JSONL append /
  scan pair (append-only by construction: nothing here ever rewrites a
  line).
* :func:`compare` judges one entry against its trailing history —
  **identity fields are compared exactly** against the most recent
  comparable baseline (a mismatch is a gated finding: the computation
  changed), while **timings are compared against the trailing median**
  of comparable entries with a relative noise band (a crossing is a
  warning by default — wall-clock noise on shared CI runners must not
  fail builds — and gated only when the caller opts in).

``tools/bench_track.py`` is the CLI front end (``record`` after a
benchmark run, ``check`` in CI); ``tests/test_history.py`` pins the
entry schema and the comparator's verdicts on synthetic regressions.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass

__all__ = [
    "Finding",
    "append_entry",
    "check_history",
    "compare",
    "extract_entry",
    "fingerprint_key",
    "load_history",
    "machine_fingerprint",
]

#: Default relative noise band for timing comparisons (a timing flags
#: only when it exceeds ``(1 + noise) ×`` the trailing median).
DEFAULT_NOISE = 0.25

#: Default trailing-window size (entries) for the timing median.
DEFAULT_WINDOW = 5


def machine_fingerprint() -> dict:
    """The measuring machine's identity, as stored in every history
    entry: platform string, Python version, CPU count and NumPy version.
    Entries with different fingerprints are never compared — a laptop's
    numbers say nothing about CI's."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "numpy": numpy_version,
    }


def fingerprint_key(fp: dict) -> str:
    """A stable string key for one fingerprint dict (sorted-key JSON) —
    what :func:`compare` groups comparable entries by."""
    return json.dumps(fp or {}, sort_keys=True)


def extract_entry(
    snapshot: dict,
    *,
    quick: bool | None = None,
    recorded_at: float | None = None,
) -> dict:
    """Distill one :meth:`BenchReporter.snapshot
    <repro.obs.reporting.BenchReporter.snapshot>` dict into a history
    entry: ``bench`` name, section ``timings`` (seconds), ``identity``
    fields (exact-match gated), the ``quick``-mode flag (defaulting to
    the ``REPRO_BENCH_QUICK`` environment switch) and this machine's
    fingerprint.  ``recorded_at`` is a caller-supplied Unix timestamp
    (``None`` stores null — the comparator never reads it)."""
    if quick is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    return {
        "bench": snapshot.get("bench"),
        "recorded_at": recorded_at,
        "quick": bool(quick),
        "fingerprint": machine_fingerprint(),
        "timings": {
            str(k): float(v)
            for k, v in (snapshot.get("sections") or {}).items()
        },
        "identity": dict(snapshot.get("identity") or {}),
    }


def append_entry(history_dir: str, entry: dict) -> str:
    """Append ``entry`` as one JSON line to
    ``<history_dir>/<bench>.jsonl`` (directory created, file created on
    first append, existing lines never touched).  Returns the file
    path."""
    bench = entry.get("bench")
    if not bench:
        raise ValueError("history entry has no bench name")
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, f"{bench}.jsonl")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(path: str) -> list[dict]:
    """Every entry of one benchmark's JSONL history, oldest first
    (missing file → empty list; blank lines skipped)."""
    if not os.path.exists(path):
        return []
    out = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


@dataclass(frozen=True)
class Finding:
    """One comparator verdict: ``field`` (``"timings.<section>"`` or
    ``"identity.<name>"``), ``kind`` (``"timing_regression"`` or
    ``"identity_mismatch"``), the observed ``value``, the ``baseline``
    it was judged against, the ``ratio`` (timings only; ``None`` for
    identity), whether the finding is ``gated`` (must fail the build)
    and a human-readable ``message``."""

    field: str
    kind: str
    value: object
    baseline: object
    ratio: float | None
    gated: bool
    message: str


def _comparable(entry: dict, other: dict) -> bool:
    """True when ``other`` is a valid baseline for ``entry``: same
    benchmark, same quick/full mode, same machine fingerprint."""
    return (
        other.get("bench") == entry.get("bench")
        and bool(other.get("quick")) == bool(entry.get("quick"))
        and fingerprint_key(other.get("fingerprint"))
        == fingerprint_key(entry.get("fingerprint"))
    )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def compare(
    entry: dict,
    history: list[dict],
    *,
    noise: float = DEFAULT_NOISE,
    window: int = DEFAULT_WINDOW,
    gate_timing: bool = False,
) -> list[Finding]:
    """Judge ``entry`` against its trailing ``history`` (older entries;
    ``entry`` itself must not be in the list).

    Identity fields are compared **exactly** against the most recent
    comparable baseline entry that carries the same field — any mismatch
    is a gated :class:`Finding` (the computation's answer changed, which
    no noise band excuses).  Section timings are compared against the
    trailing median of the last ``window`` comparable entries; a timing
    beyond ``(1 + noise) × median`` is flagged, gated only when
    ``gate_timing`` is set (CI keeps timing findings warn-only).  An
    entry with no comparable history passes vacuously — the first run on
    a machine *is* the baseline."""
    if noise < 0:
        raise ValueError("noise must be >= 0")
    if window < 1:
        raise ValueError("window must be >= 1")
    baselines = [h for h in history if _comparable(entry, h)]
    findings: list[Finding] = []

    for name, value in (entry.get("identity") or {}).items():
        for base in reversed(baselines):
            base_identity = base.get("identity") or {}
            if name in base_identity:
                expected = base_identity[name]
                if value != expected:
                    findings.append(
                        Finding(
                            field=f"identity.{name}",
                            kind="identity_mismatch",
                            value=value,
                            baseline=expected,
                            ratio=None,
                            gated=True,
                            message=(
                                f"identity field {name!r} changed: "
                                f"{expected!r} -> {value!r}"
                            ),
                        )
                    )
                break

    for section, value in (entry.get("timings") or {}).items():
        trail = [
            float(h["timings"][section])
            for h in baselines[-window:]
            if section in (h.get("timings") or {})
        ]
        if not trail:
            continue
        baseline = _median(trail)
        if baseline <= 0:
            continue
        ratio = float(value) / baseline
        if ratio > 1.0 + noise:
            findings.append(
                Finding(
                    field=f"timings.{section}",
                    kind="timing_regression",
                    value=float(value),
                    baseline=baseline,
                    ratio=ratio,
                    gated=gate_timing,
                    message=(
                        f"section {section!r} took {float(value):.6f}s, "
                        f"{ratio:.2f}x the trailing median "
                        f"{baseline:.6f}s (band: {1.0 + noise:.2f}x)"
                    ),
                )
            )
    return findings


def check_history(
    path: str,
    *,
    noise: float = DEFAULT_NOISE,
    window: int = DEFAULT_WINDOW,
    gate_timing: bool = False,
) -> list[Finding]:
    """Compare one history file's newest entry against everything before
    it (the CI entry point behind ``tools/bench_track.py check``).  An
    empty or single-entry file yields no findings."""
    history = load_history(path)
    if len(history) < 2:
        return []
    return compare(
        history[-1],
        history[:-1],
        noise=noise,
        window=window,
        gate_timing=gate_timing,
    )
