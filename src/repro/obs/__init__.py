"""Unified observability: metrics registry, query tracing, kernel profiling.

One vocabulary for everything the system measures about itself, shared
by every tier (engine, parallel executor, serving layer, dynamic
tracker, benchmarks):

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` of
  counters / gauges / fixed-bucket histograms with labeled children, a
  ``snapshot()`` JSON view, and a Prometheus-text ``render()`` the
  future HTTP ``/metrics`` endpoint serves verbatim.  Component counter
  dicts (:class:`~repro.service.ResultCache`,
  :class:`~repro.service.QueryCoalescer`,
  :class:`~repro.parallel.ShardExecutor`, the dynamic tracker) are views
  over registry counters; their documented ``stats()`` shapes are
  unchanged.
* :mod:`repro.obs.trace` — span-based per-query timelines threaded
  ``MixingService.submit`` → coalescer flush → cache lookup → batched
  engine → kernel calls, with shard workers' timelines shipped back over
  the executor's task-return channel into the parent trace.
* :mod:`repro.obs.kernels` — per-backend per-kernel call counts and
  wall seconds on the :class:`~repro.engine.backends.KernelBackend`
  seam, plus the ``float32`` screening re-verification rate.
* :mod:`repro.obs.flight` — the always-on bounded flight recorder of
  completed query records (plus the slow-query log), fed by
  ``MixingService.submit`` and exported over the wire debug endpoints.
* :mod:`repro.obs.export` — the stable JSON schema flight records and
  span trees are served in (``/v1/debug/flight`` / ``/v1/debug/slow`` /
  ``/v1/debug/trace/<id>``).
* :mod:`repro.obs.history` — append-only benchmark perf-trajectory
  files and the regression comparator behind ``tools/bench_track.py``.
* :mod:`repro.obs.reporting` — the shared benchmark reporter.
* :mod:`repro.obs.live` — live telemetry: the bucketed
  :class:`RollingWindow` of per-(graph, backend, outcome) rates and
  streaming latency quantiles fed from the service completion path,
  plus the :class:`ResourceSampler` background task (event-loop lag,
  RSS, GC, queue depth, executor occupancy).
* :mod:`repro.obs.slo` — declarative :class:`SLO` objectives evaluated
  against the rolling window into typed ok/warn/breach verdicts with
  error-budget burn rate and a bounded transition-alert ring, surfaced
  on ``/healthz`` and the ``/v1/debug/stream`` telemetry push.

The cost contract (see :mod:`repro.obs.config`): plain counters always
record; timing instrumentation records only while observability is
enabled (:func:`set_observability` / :func:`observability` /
``REPRO_OBS=1``) and costs one boolean check when disabled.  The switch
never changes results — every result-producing path is bitwise identical
with observability enabled, disabled, or absent
(``tests/test_obs.py``; ``benchmarks/bench_o1_observability.py`` gates
the enabled overhead at < 3%).
"""

from .config import (
    OBS_ENV,
    observability,
    observability_enabled,
    set_observability,
)
from .export import (
    flight_payload,
    record_to_dict,
    slow_payload,
    telemetry_payload,
    trace_payload,
)
from .flight import (
    FlightRecorder,
    QueryRecord,
    graph_key,
    kernels_from_span,
    stages_from_span,
)
from .history import (
    Finding,
    append_entry,
    check_history,
    extract_entry,
    load_history,
    machine_fingerprint,
)
from .history import compare as compare_history_entry
from .kernels import (
    KernelProfiler,
    ProfiledBackend,
    diff_kernel_snapshots,
    kernel_profiler,
    maybe_profile,
)
from .live import (
    ResourceSampler,
    RollingWindow,
)
from .metrics import (
    Counter,
    CounterDict,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .slo import (
    SLO,
    SLOEngine,
    SLOVerdict,
)
from .reporting import BenchReporter
from .trace import (
    Span,
    attach_or_record,
    clear_traces,
    current_span,
    recent_traces,
    start_span,
    trace,
    use_span,
)

__all__ = [
    "BenchReporter",
    "Counter",
    "CounterDict",
    "Finding",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "OBS_ENV",
    "ProfiledBackend",
    "QueryRecord",
    "ResourceSampler",
    "RollingWindow",
    "SLO",
    "SLOEngine",
    "SLOVerdict",
    "Span",
    "append_entry",
    "attach_or_record",
    "check_history",
    "clear_traces",
    "compare_history_entry",
    "current_span",
    "default_registry",
    "diff_kernel_snapshots",
    "extract_entry",
    "flight_payload",
    "graph_key",
    "kernel_profiler",
    "kernels_from_span",
    "load_history",
    "machine_fingerprint",
    "maybe_profile",
    "observability",
    "observability_enabled",
    "recent_traces",
    "record_to_dict",
    "set_observability",
    "slow_payload",
    "stages_from_span",
    "start_span",
    "telemetry_payload",
    "trace",
    "trace_payload",
    "use_span",
]
