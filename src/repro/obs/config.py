"""The observability on/off switch.

Observability instrumentation splits into two cost classes with two
different policies:

* **Plain counters** (cache hits, coalescer flushes, executor dispatches,
  tracker work counters) always record.  They are part of the components'
  documented ``stats()`` contracts, they cost one lock-protected integer
  add on paths that already take a lock, and tests pin their exact values.
* **Timing instrumentation** (spans, kernel profiling, latency
  histograms) records only while observability is *enabled*.  Disabled —
  the default — every instrumentation site collapses to one boolean check,
  so the engine hot loops pay effectively nothing
  (``benchmarks/bench_o1_observability.py`` gates the *enabled* overhead
  at < 3% on the E1 workload; disabled overhead is below measurement
  noise).

Enable per process with :func:`set_observability`, per scope with the
:func:`observability` context manager, or per environment with
``REPRO_OBS=1`` (read once at import — the same pattern as
``REPRO_BACKEND``).  The switch only ever changes *what is recorded*:
every result-producing path is bitwise identical with observability
enabled, disabled, or never imported (pinned by
``tests/test_obs.py``).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

__all__ = [
    "OBS_ENV",
    "observability",
    "observability_enabled",
    "set_observability",
]

#: Environment variable enabling timing instrumentation at import
#: (``REPRO_OBS=1``); the programmatic switch overrides it.
OBS_ENV = "REPRO_OBS"

_lock = threading.Lock()
_enabled: bool = os.environ.get(OBS_ENV, "") not in ("", "0")


def observability_enabled() -> bool:
    """True while timing instrumentation (spans, kernel profiling,
    latency histograms) records; plain counters record regardless.  This
    is the one check every instrumentation site makes — reading a module
    global, cheap enough for per-call hot paths."""
    return _enabled


def set_observability(on: bool) -> bool:
    """Switch timing instrumentation on or off process-wide and return
    the *previous* state (so callers can restore it).  Thread-safe; the
    flag is a plain boolean read on the hot path, so a flip lands on
    other threads at their next instrumentation site."""
    global _enabled
    with _lock:
        prev = _enabled
        _enabled = bool(on)
    return prev


@contextmanager
def observability(on: bool = True):
    """Scope the observability switch: enable (or disable) inside the
    ``with`` block and restore the previous state on exit — the shard
    workers use this to collect kernel timings for exactly one solve when
    the parent's trace asked for them."""
    prev = set_observability(on)
    try:
        yield
    finally:
        set_observability(prev)
