"""Stable JSON export of flight records and trace timelines.

The flight recorder (:mod:`repro.obs.flight`) stores live Python objects
— records referencing ``TimesKey`` NamedTuples and finished
:class:`~repro.obs.trace.Span` trees.  This module is the one place
those objects are flattened into a **stable, versioned JSON schema** so
the wire debug endpoints (``GET /v1/debug/flight`` / ``/v1/debug/slow``
/ ``/v1/debug/trace/<id>``) and offline tooling speak the same
vocabulary:

* :func:`record_to_dict` — one record as a plain dict.  Every float is
  carried verbatim (Python's ``json`` emits the shortest round-trip
  ``repr``, which decodes to the identical IEEE-754 double — the same
  bitwise discipline as :mod:`repro.service.wire.protocol`), tuples
  become lists, and the span tree is included only where the payload
  asks for it (the timeline endpoint), never in the bulk listings.
* :func:`flight_payload` / :func:`slow_payload` / :func:`trace_payload`
  — the response envelopes the debug endpoints serve, each carrying
  ``{"v": EXPORT_VERSION, ...}`` and a **bounded** record list (``limit`` is clamped
  to :data:`MAX_EXPORT_RECORDS` server-side, so a scrape can never ask
  the server to serialize an unbounded ring).

``tests/test_flight.py`` pins the dict → JSON → dict round trip bitwise
over awkward floats and the envelope shapes against drift.
"""

from __future__ import annotations

from .flight import FlightRecorder, QueryRecord

__all__ = [
    "EXPORT_VERSION",
    "MAX_EXPORT_RECORDS",
    "TELEMETRY_VERSION",
    "flight_payload",
    "knobs_to_dict",
    "record_to_dict",
    "slow_payload",
    "telemetry_payload",
    "trace_payload",
]

#: Version tag carried by every export envelope; bump on schema change.
#: v2: record ``wall_time`` renamed to ``unix_ts`` (wall-clock
#: completion time for external-log correlation).
EXPORT_VERSION = 2

#: Hard server-side bound on records per export payload (a request may
#: ask for fewer, never more).
MAX_EXPORT_RECORDS = 256

#: Default records per listing payload when the request names no limit.
DEFAULT_EXPORT_RECORDS = 64

#: Version tag of the ``/v1/debug/stream`` telemetry delta frames
#: (independent of :data:`EXPORT_VERSION` — the stream can evolve
#: without invalidating stored flight exports).
TELEMETRY_VERSION = 1


def knobs_to_dict(knobs) -> dict | None:
    """The canonical knob identity (an engine ``TimesKey`` NamedTuple)
    as a JSON-ready dict — field names preserved, the size grid as a
    list of ints.  Duck-typed on ``_asdict`` so this module never
    imports the engine; ``None`` passes through (a query that failed
    before canonicalization has no knobs)."""
    if knobs is None:
        return None
    out = dict(knobs._asdict()) if hasattr(knobs, "_asdict") else dict(knobs)
    for key, value in out.items():
        if isinstance(value, tuple):
            out[key] = [int(v) for v in value]
    return out


def record_to_dict(rec: QueryRecord, *, spans: bool = False) -> dict:
    """One :class:`~repro.obs.flight.QueryRecord` in the stable export
    schema.  ``spans=True`` additionally embeds the full span-tree dict
    (:meth:`~repro.obs.trace.Span.to_dict`) under ``"spans"`` — the
    timeline endpoint asks for it, the bulk listings do not."""
    out = {
        "trace_id": rec.trace_id,
        "graph": rec.graph,
        "source": int(rec.source),
        "outcome": rec.outcome,
        "duration": float(rec.duration),
        "knobs": knobs_to_dict(rec.knobs),
        "backend": rec.backend,
        "cache": rec.cache,
        "batch": dict(rec.batch) if rec.batch else None,
        "kernels": dict(rec.kernels),
        "stages": dict(rec.stages),
        "priority": int(rec.priority),
        "deadline": rec.deadline,
        "unix_ts": float(rec.unix_ts),
    }
    if spans:
        out["spans"] = rec.span.to_dict() if rec.span is not None else None
    return out


def _clamp_limit(limit: int | None) -> int:
    if limit is None:
        return DEFAULT_EXPORT_RECORDS
    return max(0, min(int(limit), MAX_EXPORT_RECORDS))


def flight_payload(
    recorder: FlightRecorder,
    *,
    limit: int | None = None,
    graph: str | None = None,
    backend: str | None = None,
    outcome: str | None = None,
) -> dict:
    """The ``GET /v1/debug/flight`` envelope: the most recent retained
    records (newest first, filtered, bounded) plus the recorder's own
    counters, so the reader can tell "64 records" from "64 of 40000"."""
    records = recorder.records(
        _clamp_limit(limit), graph=graph, backend=backend, outcome=outcome
    )
    return {
        "v": EXPORT_VERSION,
        "kind": "flight",
        "records": [record_to_dict(rec) for rec in records],
        "stats": recorder.stats(),
    }


def slow_payload(
    recorder: FlightRecorder,
    *,
    limit: int | None = None,
    graph: str | None = None,
    backend: str | None = None,
) -> dict:
    """The ``GET /v1/debug/slow`` envelope: the slowest-N retained slow
    records (descending duration, filtered per graph / per backend,
    bounded) plus recorder counters."""
    records = recorder.slow_records(
        _clamp_limit(limit), graph=graph, backend=backend
    )
    return {
        "v": EXPORT_VERSION,
        "kind": "slow",
        "records": [record_to_dict(rec) for rec in records],
        "stats": recorder.stats(),
    }


def telemetry_payload(
    telemetry: dict,
    *,
    seq: int,
    unix_ts: float,
    alerts: list | None = None,
    gauges: dict | None = None,
    draining: bool = False,
) -> dict:
    """One ``/v1/debug/stream`` delta frame: the envelope the stream
    pusher sends per tick and :func:`WireClient.stream_telemetry
    <repro.service.wire.client.stream_telemetry>` yields back decoded.

    ``telemetry`` is :meth:`MixingService.telemetry
    <repro.service.MixingService.telemetry>`'s dict (window snapshot +
    SLO verdict + sampler values); ``seq`` numbers the frames of one
    subscription (strictly increasing from 1 — a gap means the server
    restarted the stream); ``alerts`` carries only the SLO transitions
    this subscriber has not seen (the engine's cursor mechanism);
    ``gauges`` adds the wire tier's own instantaneous numbers (queue
    depth, live connections); ``draining`` flags a server in graceful
    drain — the stream stays readable so an operator can watch the
    drain complete.  Floats ride JSON's shortest round-trip ``repr``,
    bitwise like every other wire payload."""
    return {
        "v": TELEMETRY_VERSION,
        "kind": "telemetry",
        "seq": int(seq),
        "unix_ts": float(unix_ts),
        "window": telemetry.get("window"),
        "slo": telemetry.get("slo"),
        "sampler": telemetry.get("sampler"),
        "alerts": list(alerts or ()),
        "gauges": dict(gauges or {}),
        "draining": bool(draining),
    }


def trace_payload(recorder: FlightRecorder, trace_id: str) -> dict | None:
    """The ``GET /v1/debug/trace/<id>`` envelope: the one record for
    ``trace_id`` **with** its span-tree timeline embedded, or ``None``
    when the id is unknown (the endpoint answers 404)."""
    rec = recorder.get(trace_id)
    if rec is None:
        return None
    return {
        "v": EXPORT_VERSION,
        "kind": "trace",
        "record": record_to_dict(rec, spans=True),
    }
