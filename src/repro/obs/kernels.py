"""Kernel-level profiling on the :class:`~repro.engine.backends.KernelBackend` seam.

:class:`ProfiledBackend` wraps any backend and times its kernel methods
(``step_block``, ``sorted_scan``, ``split_points``, ``best_sums``,
``best_sums_grid``, ``deviation_lower_bounds``), recording per-backend
per-kernel call counts and wall seconds into the process-global
:func:`~repro.obs.metrics.default_registry`:

* ``repro_kernel_calls_total{backend,kernel}``
* ``repro_kernel_seconds_total{backend,kernel}``
* ``repro_screen_pairs_total{backend}`` / ``repro_screen_flagged_total{backend}``
  — how many (R, column) candidate pairs the screening scan considered
  vs flagged for exact re-verification (the ``float32`` backend's
  re-verification *rate* is ``flagged / pairs``).

The wrapper is pure delegation plus two ``perf_counter`` reads per call —
it never touches kernel inputs or outputs, so results stay bitwise
identical (pinned by ``tests/test_obs.py``).  The engine drivers wrap
their resolved backend with :func:`maybe_profile`, which returns the
backend untouched while observability is disabled — the disabled cost is
one boolean check per *driver call*, not per kernel call.

:func:`kernel_profiler` exposes snapshot/merge/reset over the same
counters so shard workers can ship their per-solve kernel deltas back to
the parent (see ``ShardExecutor.run_sharded``) and benchmarks can diff
before/after a timed region.
"""

from __future__ import annotations

import time

from .config import observability_enabled
from .metrics import default_registry

__all__ = [
    "KernelProfiler",
    "ProfiledBackend",
    "diff_kernel_snapshots",
    "kernel_profiler",
    "maybe_profile",
]

#: The kernel methods ProfiledBackend times (everything on the seam
#: that does per-call numerical work; cheap attribute-like methods
#: ``screen_slack``/``inverse_sizes`` are delegated untimed).
PROFILED_KERNELS = (
    "step_block",
    "sorted_scan",
    "split_points",
    "best_sums",
    "best_sums_grid",
    "deviation_lower_bounds",
)


class KernelProfiler:
    """Registry-backed accounting of kernel calls, kernel seconds, and
    screening volumes, keyed by (backend, kernel) labels.

    One process-wide instance (:func:`kernel_profiler`) backs every
    :class:`ProfiledBackend`; its :meth:`snapshot`/:meth:`merge`/
    :meth:`reset` views are how per-solve deltas cross process
    boundaries (shard workers snapshot around one solve and ship the
    diff) and how benchmarks attribute a timed region to kernels."""

    def __init__(self, registry=None):
        registry = registry if registry is not None else default_registry()
        self.registry = registry
        self._calls = registry.counter(
            "repro_kernel_calls_total",
            "Kernel invocations on the backend seam.",
            labels=("backend", "kernel"),
        )
        self._seconds = registry.counter(
            "repro_kernel_seconds_total",
            "Wall seconds spent inside backend kernels.",
            labels=("backend", "kernel"),
        )
        self._screen_pairs = registry.counter(
            "repro_screen_pairs_total",
            "Candidate (R, column) pairs considered by the screening scan.",
            labels=("backend",),
        )
        self._screen_flagged = registry.counter(
            "repro_screen_flagged_total",
            "Screened pairs flagged for exact re-verification.",
            labels=("backend",),
        )

    def record(self, backend: str, kernel: str, seconds: float) -> None:
        """Account one kernel call of ``seconds`` wall time to
        ``(backend, kernel)``."""
        self._calls.labels(backend=backend, kernel=kernel).inc()
        self._seconds.labels(backend=backend, kernel=kernel).inc(seconds)

    def record_screen(self, backend: str, pairs: int, flagged: int) -> None:
        """Account one screening pass: ``pairs`` candidates considered,
        ``flagged`` of them sent to exact re-verification."""
        self._screen_pairs.labels(backend=backend).inc(int(pairs))
        self._screen_flagged.labels(backend=backend).inc(int(flagged))

    def screen_recorder(self, backend: str):
        """A pre-bound ``(pairs, flagged)`` recording callable for
        ``backend`` — the engine chunk loop binds this once per chunk so
        the per-step cost is two counter increments."""
        pairs_c = self._screen_pairs.labels(backend=backend)
        flagged_c = self._screen_flagged.labels(backend=backend)

        def _record(pairs: int, flagged: int) -> None:
            """Record one screening pass for the pre-bound backend."""
            pairs_c.inc(int(pairs))
            flagged_c.inc(int(flagged))

        return _record

    def snapshot(self) -> dict:
        """The current kernel totals as a plain nested dict:
        ``{"kernels": {(backend, kernel) as "backend/kernel": {"calls", "seconds"}},
        "screen": {backend: {"pairs", "flagged"}}}`` — subtractable with
        :func:`diff_kernel_snapshots` to attribute a timed region."""
        kernels: dict = {}
        for label_values, leaf in self._calls.series():
            backend, kernel = label_values
            kernels[f"{backend}/{kernel}"] = {"calls": leaf.value}
        for label_values, leaf in self._seconds.series():
            backend, kernel = label_values
            kernels.setdefault(f"{backend}/{kernel}", {"calls": 0})[
                "seconds"
            ] = leaf.value
        screen: dict = {}
        for label_values, leaf in self._screen_pairs.series():
            screen[label_values[0]] = {"pairs": leaf.value, "flagged": 0}
        for label_values, leaf in self._screen_flagged.series():
            screen.setdefault(label_values[0], {"pairs": 0})[
                "flagged"
            ] = leaf.value
        return {"kernels": kernels, "screen": screen}

    def merge(self, delta: dict) -> None:
        """Fold a :func:`diff_kernel_snapshots` delta (typically shipped
        from a shard worker) into this process's kernel counters."""
        for key, vals in delta.get("kernels", {}).items():
            backend, kernel = key.split("/", 1)
            calls = vals.get("calls", 0)
            seconds = vals.get("seconds", 0.0)
            if calls:
                self._calls.labels(backend=backend, kernel=kernel).inc(calls)
            if seconds:
                self._seconds.labels(backend=backend, kernel=kernel).inc(
                    seconds
                )
        for backend, vals in delta.get("screen", {}).items():
            pairs = vals.get("pairs", 0)
            flagged = vals.get("flagged", 0)
            if pairs or flagged:
                self.record_screen(backend, pairs, flagged)

    def reset(self) -> None:
        """Zero every kernel counter (all backends, all kernels) — a
        windowing convenience for benchmarks and tests."""
        self._calls.reset()
        self._seconds.reset()
        self._screen_pairs.reset()
        self._screen_flagged.reset()


def diff_kernel_snapshots(before: dict, after: dict) -> dict:
    """The elementwise difference ``after - before`` of two
    :meth:`KernelProfiler.snapshot` dicts, dropping all-zero entries —
    the per-solve delta a shard worker ships to the parent."""
    kernels: dict = {}
    for key, vals in after.get("kernels", {}).items():
        prev = before.get("kernels", {}).get(key, {})
        calls = vals.get("calls", 0) - prev.get("calls", 0)
        seconds = vals.get("seconds", 0.0) - prev.get("seconds", 0.0)
        if calls or seconds:
            kernels[key] = {"calls": calls, "seconds": seconds}
    screen: dict = {}
    for backend, vals in after.get("screen", {}).items():
        prev = before.get("screen", {}).get(backend, {})
        pairs = vals.get("pairs", 0) - prev.get("pairs", 0)
        flagged = vals.get("flagged", 0) - prev.get("flagged", 0)
        if pairs or flagged:
            screen[backend] = {"pairs": pairs, "flagged": flagged}
    return {"kernels": kernels, "screen": screen}


_profiler: KernelProfiler | None = None


def kernel_profiler() -> KernelProfiler:
    """The process-global :class:`KernelProfiler` (lazily created on the
    :func:`~repro.obs.metrics.default_registry`)."""
    global _profiler
    if _profiler is None:
        _profiler = KernelProfiler()
    return _profiler


class ProfiledBackend:
    """A pure-delegation wrapper timing a backend's kernel calls.

    Exposes the full :class:`~repro.engine.backends.KernelBackend`
    surface (so it passes ``get_backend``'s instance check and drops
    into ``BlockPropagator``/oracles unchanged); the profiled kernels
    are timed with two ``perf_counter`` reads around the delegate call
    and accounted via pre-bound per-kernel counters — inputs and outputs
    pass through untouched, so results are bitwise identical to the
    wrapped backend."""

    def __init__(self, backend, profiler: KernelProfiler | None = None):
        profiler = profiler if profiler is not None else kernel_profiler()
        self._backend = backend
        self._profiler = profiler
        name = backend.name
        # Pre-bind the per-kernel (calls, seconds) counter children once
        # so each kernel call pays two increments, not two label lookups.
        self._counters = {
            kernel: (
                profiler._calls.labels(backend=name, kernel=kernel),
                profiler._seconds.labels(backend=name, kernel=kernel),
            )
            for kernel in PROFILED_KERNELS
        }

    @property
    def name(self) -> str:
        """The wrapped backend's registry name (delegated verbatim so
        coalescer execution keys and worker forwarding see the real
        backend)."""
        return self._backend.name

    @property
    def dtype(self):
        """The wrapped backend's screening dtype (delegated)."""
        return self._backend.dtype

    @property
    def exact_scan(self) -> bool:
        """Whether the wrapped backend's screening scan is exact
        (delegated)."""
        return self._backend.exact_scan

    @property
    def wrapped(self):
        """The underlying (unprofiled) backend."""
        return self._backend

    def screen_slack(self, n: int) -> float:
        """Delegate ``screen_slack`` untimed (it is a constant-time
        bound computation, not a kernel)."""
        return self._backend.screen_slack(n)

    def inverse_sizes(self, Rs):
        """Delegate ``inverse_sizes`` untimed (cheap elementwise
        reciprocal)."""
        return self._backend.inverse_sizes(Rs)

    def _timed(self, kernel: str, fn, *args, **kwargs):
        calls_c, seconds_c = self._counters[kernel]
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        dt = time.perf_counter() - t0
        calls_c.inc()
        seconds_c.inc(dt)
        return out

    def step_block(self, A, P):
        """Timed delegation of the walk-step kernel."""
        return self._timed("step_block", self._backend.step_block, A, P)

    def sorted_scan(self, P):
        """Timed delegation of the column-sorted scan kernel."""
        return self._timed("sorted_scan", self._backend.sorted_scan, P)

    def split_points(self, scan, inv_r):
        """Timed delegation of the split-point search kernel."""
        return self._timed(
            "split_points", self._backend.split_points, scan, inv_r
        )

    def best_sums(self, scan, R, *, k0=None):
        """Timed delegation of the single-size best-sums kernel."""
        return self._timed(
            "best_sums", self._backend.best_sums, scan, R, k0=k0
        )

    def best_sums_grid(self, scan, Rs, *, k0=None):
        """Timed delegation of the size-grid best-sums kernel."""
        return self._timed(
            "best_sums_grid", self._backend.best_sums_grid, scan, Rs, k0=k0
        )

    def deviation_lower_bounds(self, scan, Rs, *, k0=None):
        """Timed delegation of the fused deviation-lower-bound kernel."""
        return self._timed(
            "deviation_lower_bounds",
            self._backend.deviation_lower_bounds,
            scan,
            Rs,
            k0=k0,
        )

    def __repr__(self) -> str:
        return f"ProfiledBackend({self._backend!r})"


def maybe_profile(backend):
    """Wrap ``backend`` in a :class:`ProfiledBackend` when observability
    is enabled; return it untouched (zero added cost) when disabled or
    when it is already profiled.  The engine drivers call this once per
    driver invocation on their resolved backend."""
    if not observability_enabled():
        return backend
    if isinstance(backend, ProfiledBackend):
        return backend
    return ProfiledBackend(backend)
