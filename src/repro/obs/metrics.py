"""Metrics primitives: counters, gauges, histograms and their registry.

A :class:`MetricsRegistry` is a named collection of metrics with two
export views:

* :meth:`MetricsRegistry.snapshot` — a plain nested ``dict`` (JSON-ready;
  the benchmark harness dumps one next to every results artifact);
* :meth:`MetricsRegistry.render` — the Prometheus text exposition format,
  which a future HTTP ``/metrics`` endpoint can serve verbatim
  (``# HELP`` / ``# TYPE`` headers, ``name{label="value"} value`` series,
  ``_bucket``/``_sum``/``_count`` histogram series).

Metric naming follows the Prometheus conventions: every metric is
prefixed ``repro_``, counters end in ``_total``, durations are
``_seconds``.  A metric created with ``labels=("backend",)`` is a
*family*: call :meth:`Counter.labels` to get (or create) the child for
one label combination — e.g.
``registry.histogram("repro_engine_solve_seconds", labels=("backend",))
.labels(backend="float32").observe(dt)``.

Threading: every metric guards its state with its own lock, so components
may share one registry across threads (the serving layer records from the
event loop, engine worker threads and benchmark threads at once — the
thread hammer in ``tests/test_obs.py`` pins exact totals).  Composition:
:meth:`MetricsRegistry.include` lets one registry re-export another's
metrics in its views — the serving layer composes its cache/coalescer
registry with the executor's and the process-global engine registry so a
single ``render()`` covers every tier.

Per-component topology: each instrumented component (cache, coalescer,
executor, graph registry, tracker) defaults to a *private* registry so
two instances never collide; process-wide concerns (engine solve
latencies, kernel profiling) live in the shared
:func:`default_registry`.
"""

from __future__ import annotations

import bisect
import re
import threading
from collections.abc import MutableMapping

__all__ = [
    "Counter",
    "CounterDict",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(pairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs
    )
    return "{" + inner + "}"


class _Metric:
    """Shared machinery of every metric type: identity (name / help /
    label schema), the per-metric lock, and the label-family children
    map.  A metric constructed with ``label_names`` and no label values
    is a *family*; :meth:`labels` returns its per-combination children,
    which are what actually hold values."""

    kind = "untyped"

    def __init__(self, name, help="", label_names=(), _label_values=None):
        if _label_values is None:
            _validate_name(name)
            for ln in label_names:
                if not isinstance(ln, str) or not _LABEL_RE.match(ln):
                    raise ValueError(f"invalid label name {ln!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.label_values = (
            tuple(_label_values) if _label_values is not None else None
        )
        self._lock = threading.Lock()
        self._children: dict[tuple, _Metric] = {}

    @property
    def is_family(self) -> bool:
        """True when this metric is a label family (values live on the
        children returned by :meth:`labels`, not on the family itself)."""
        return bool(self.label_names) and self.label_values is None

    def labels(self, **labels) -> "_Metric":
        """The child metric for one label-value combination (created on
        first use, returned from then on).  Only valid on a family; the
        keyword names must match the family's label schema exactly."""
        if not self.is_family:
            raise ValueError(
                f"metric {self.name!r} takes no labels"
                if not self.label_names
                else f"metric {self.name!r} child cannot be re-labelled"
            )
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels "
                f"{self.label_names}, got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[ln]) for ln in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child(key)
                self._children[key] = child
            return child

    def _make_child(self, label_values: tuple) -> "_Metric":
        raise NotImplementedError  # pragma: no cover - overridden

    def series(self) -> list:
        """The leaf series of this metric as ``(label_values, metric)``
        pairs — one ``(None, self)`` pair for an unlabelled metric, one
        pair per child (sorted by label values) for a family."""
        if self.is_family:
            with self._lock:
                return sorted(self._children.items())
        return [(self.label_values, self)]

    def reset(self) -> None:
        """Zero this metric; a family also drops all of its children
        (their label combinations are re-created on next use).  This is a
        bookkeeping hook for windowed measurement (e.g.
        :meth:`~repro.parallel.ShardExecutor.reset`), not part of the
        Prometheus exposition semantics."""
        with self._lock:
            self._children.clear()
            self._reset_values()

    def _reset_values(self) -> None:
        raise NotImplementedError  # pragma: no cover - overridden

    def _label_pairs(self):
        if self.label_values is None:
            return ()
        return tuple(zip(self.label_names, self.label_values))

    def __repr__(self) -> str:
        lbl = (
            dict(self._label_pairs())
            if self.label_values is not None
            else list(self.label_names)
        )
        return f"{type(self).__name__}({self.name!r}, labels={lbl})"


class Counter(_Metric):
    """A monotonically increasing count (``..._total`` by convention).

    ``inc()`` is the only Prometheus-sanctioned mutation;
    :meth:`set_value` exists solely as a migration/reset hook so
    components that historically exposed writable counter dicts (the
    tracker's ``stats``) can keep their accessor contracts while the
    storage moves here."""

    kind = "counter"

    def __init__(self, name, help="", label_names=(), _label_values=None):
        super().__init__(name, help, label_names, _label_values)
        self._value = 0

    def _make_child(self, label_values):
        return Counter(
            self.name, self.help, self.label_names, _label_values=label_values
        )

    def inc(self, value=1) -> None:
        """Add ``value`` (default 1) to the counter; negative increments
        are rejected (counters only go up)."""
        if value < 0:
            raise ValueError("counters cannot decrease")
        with self._lock:
            self._value += value

    @property
    def value(self):
        """The current count (``int`` while only integer increments were
        recorded, so ``stats()`` views stay integer-typed)."""
        return self._value

    def set_value(self, value) -> None:
        """Overwrite the count — a migration/reset hook for dict-shaped
        legacy accessors, not part of counter semantics (see the class
        docstring)."""
        with self._lock:
            self._value = value

    def _reset_values(self) -> None:
        self._value = 0


class Gauge(_Metric):
    """A value that can go up and down (sizes, high-water marks)."""

    kind = "gauge"

    def __init__(self, name, help="", label_names=(), _label_values=None):
        super().__init__(name, help, label_names, _label_values)
        self._value = 0

    def _make_child(self, label_values):
        return Gauge(
            self.name, self.help, self.label_names, _label_values=label_values
        )

    def set(self, value) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, value=1) -> None:
        """Add ``value`` (may be negative) to the gauge."""
        with self._lock:
            self._value += value

    def set_max(self, value) -> None:
        """Raise the gauge to ``value`` if it is larger (atomic
        high-water-mark update — the coalescer's ``largest_batch``)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self):
        """The current gauge value."""
        return self._value

    def _reset_values(self) -> None:
        self._value = 0


class Histogram(_Metric):
    """A fixed-bucket distribution of observations (Prometheus
    semantics: a bucket with bound ``le`` counts every observation
    ``<= le``; rendering emits cumulative ``_bucket`` series plus
    ``_sum`` and ``_count``).  Buckets are fixed at construction —
    a strictly increasing tuple of upper bounds, ``+Inf`` implicit."""

    kind = "histogram"

    #: Default latency buckets (seconds): spans four orders of magnitude
    #: around typical engine-call costs.
    DEFAULT_BUCKETS = (
        0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
    )

    def __init__(
        self,
        name,
        help="",
        buckets=None,
        label_names=(),
        _label_values=None,
    ):
        super().__init__(name, help, label_names, _label_values)
        buckets = tuple(
            float(b) for b in (
                self.DEFAULT_BUCKETS if buckets is None else buckets
            )
        )
        if not buckets or any(
            b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])
        ):
            raise ValueError(
                "histogram buckets must be a non-empty strictly "
                f"increasing sequence, got {buckets!r}"
            )
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._exemplars: dict[int, str] = {}

    def _make_child(self, label_values):
        return Histogram(
            self.name,
            self.help,
            self.buckets,
            self.label_names,
            _label_values=label_values,
        )

    def observe(self, value, *, exemplar=None) -> None:
        """Record one observation (an exact bucket-boundary value counts
        into the bucket whose upper bound it equals — ``le`` is
        inclusive).  ``exemplar`` optionally tags the bucket the value
        lands in with a trace id: one exemplar per bucket, last
        observation wins — so a histogram spike links directly to a
        flight-recorder entry (see :meth:`exemplars`).  Exemplars live
        only in the JSON :meth:`MetricsRegistry.snapshot` view; the
        Prometheus text rendering is unchanged."""
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                self._exemplars[idx] = str(exemplar)

    def exemplars(self) -> dict[str, str]:
        """The per-bucket exemplar trace ids, keyed by the bucket's upper
        bound (``"+Inf"`` for the overflow bucket); only buckets that
        ever received an exemplar appear.  Last observation per bucket
        wins."""
        bounds = [str(b) for b in self.buckets] + ["+Inf"]
        with self._lock:
            return {bounds[idx]: tid for idx, tid in self._exemplars.items()}

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative_counts(self) -> list[int]:
        """Cumulative per-bucket counts (one entry per bound plus the
        trailing ``+Inf`` bucket) — the Prometheus ``_bucket`` series."""
        with self._lock:
            out, run = [], 0
            for c in self._counts:
                run += c
                out.append(run)
            return out

    def _reset_values(self) -> None:
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._exemplars = {}


class MetricsRegistry:
    """A named collection of metrics with JSON and Prometheus views.

    :meth:`counter` / :meth:`gauge` / :meth:`histogram` are idempotent
    get-or-create front doors (re-requesting a name returns the existing
    metric; a kind or label-schema mismatch raises).  See the module
    docstring for the naming scheme, the per-component topology, and
    :meth:`include` composition."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._includes: list["MetricsRegistry"] = []
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(
                    labels
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}"
                    )
                return existing
            metric = cls(name, help, label_names=labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help="", labels=()) -> Counter:
        """Get or create the :class:`Counter` (family, with ``labels``)
        named ``name``."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name, help="", labels=()) -> Gauge:
        """Get or create the :class:`Gauge` (family, with ``labels``)
        named ``name``."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name, help="", buckets=None, labels=()) -> Histogram:
        """Get or create the :class:`Histogram` named ``name`` with the
        given fixed ``buckets`` (:attr:`Histogram.DEFAULT_BUCKETS` when
        omitted)."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def include(self, other: "MetricsRegistry") -> None:
        """Re-export ``other``'s metrics through this registry's
        :meth:`snapshot` and :meth:`render` views (idempotent; a registry
        never includes itself).  This is how the serving layer composes
        per-component registries into one ``/metrics`` payload."""
        if not isinstance(other, MetricsRegistry):
            raise TypeError("include() takes a MetricsRegistry")
        if other is self:
            return
        with self._lock:
            if other not in self._includes:
                self._includes.append(other)

    def _collect(self, seen=None) -> list[_Metric]:
        """Every metric visible through this registry (own metrics first,
        then included registries', transitively, each registry once)."""
        if seen is None:
            seen = set()
        if id(self) in seen:
            return []
        seen.add(id(self))
        with self._lock:
            metrics = list(self._metrics.values())
            includes = list(self._includes)
        for inc in includes:
            metrics.extend(inc._collect(seen))
        return metrics

    def snapshot(self) -> dict:
        """A JSON-ready nested dict of every visible metric: per metric
        its kind, help and series (label values plus the value — for
        histograms the cumulative bucket counts, sum and count)."""
        out: dict = {}
        for metric in self._collect():
            entry = out.setdefault(
                metric.name,
                {"kind": metric.kind, "help": metric.help, "series": []},
            )
            for label_values, leaf in metric.series():
                labels = (
                    dict(zip(metric.label_names, label_values))
                    if label_values is not None
                    else {}
                )
                if metric.kind == "histogram":
                    series = {
                        "labels": labels,
                        "buckets": {
                            str(le): c
                            for le, c in zip(
                                list(leaf.buckets) + ["+Inf"],
                                leaf.cumulative_counts(),
                            )
                        },
                        "sum": leaf.sum,
                        "count": leaf.count,
                    }
                    exemplars = leaf.exemplars()
                    if exemplars:
                        series["exemplars"] = exemplars
                    entry["series"].append(series)
                else:
                    entry["series"].append(
                        {"labels": labels, "value": leaf.value}
                    )
        return out

    def render(self) -> str:
        """The Prometheus text exposition of every visible metric —
        servable verbatim as a ``/metrics`` response body (one
        ``# HELP`` / ``# TYPE`` header per metric, then its series;
        histograms emit cumulative ``_bucket{le=...}`` series plus
        ``_sum`` and ``_count``)."""
        lines: list[str] = []
        rendered: set[str] = set()
        for metric in self._collect():
            if metric.name in rendered:
                header = False
            else:
                rendered.add(metric.name)
                header = True
            if header:
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for label_values, leaf in metric.series():
                pairs = (
                    tuple(zip(metric.label_names, label_values))
                    if label_values is not None
                    else ()
                )
                if metric.kind == "histogram":
                    bounds = list(leaf.buckets) + ["+Inf"]
                    for le, c in zip(bounds, leaf.cumulative_counts()):
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_format_labels(pairs + (('le', le),))} {c}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_format_labels(pairs)} "
                        f"{leaf.sum}"
                    )
                    lines.append(
                        f"{metric.name}_count{_format_labels(pairs)} "
                        f"{leaf.count}"
                    )
                else:
                    lines.append(
                        f"{metric.name}{_format_labels(pairs)} {leaf.value}"
                    )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(metrics={len(self._metrics)}, "
            f"includes={len(self._includes)})"
        )


class CounterDict(MutableMapping):
    """A dict-shaped view over registry counters — the migration shim
    that lets a component's historically-public counter dict (e.g.
    :attr:`MixingTracker.stats <repro.dynamic.tracker.MixingTracker>`)
    keep its exact read/write surface (``stats["memo_hits"] += 1``,
    ``dict(stats)``, key iteration) while the storage moves onto a
    :class:`MetricsRegistry`.

    Keys map to counters named ``<prefix><key>_total``; reading a key
    returns the counter's value, assigning writes it (via
    :meth:`Counter.set_value` — these dicts predate counter semantics).
    Unknown keys are created on first assignment, matching plain-dict
    behavior."""

    def __init__(self, registry: MetricsRegistry, prefix: str, keys=(),
                 help_prefix: str = ""):
        self._registry = registry
        self._prefix = prefix
        self._help_prefix = help_prefix
        self._counters: dict[str, Counter] = {}
        for key in keys:
            self._counters[key] = self._make(key)

    def _make(self, key: str) -> Counter:
        return self._registry.counter(
            f"{self._prefix}{key}_total", f"{self._help_prefix}{key}"
        )

    def __getitem__(self, key):
        """The counter value for ``key`` (``KeyError`` when absent)."""
        return self._counters[key].value

    def __setitem__(self, key, value):
        """Write ``value`` into ``key``'s counter, creating the counter
        on first assignment of a new key."""
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = self._make(key)
        counter.set_value(value)

    def __delitem__(self, key):
        """Drop ``key`` from this view (the underlying counter stays
        registered — registries never forget metrics)."""
        del self._counters[key]

    def __iter__(self):
        """Iterate the view's keys in insertion order."""
        return iter(self._counters)

    def __len__(self):
        """Number of keys in the view."""
        return len(self._counters)

    def __repr__(self) -> str:
        return f"CounterDict({dict(self)!r})"


_default_registry: MetricsRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry for process-wide instrumentation —
    engine solve latencies, kernel profiling, benchmark sections.
    Components with per-instance counters (cache, coalescer, executor)
    keep private registries and are composed into one view with
    :meth:`MetricsRegistry.include` instead."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry
