"""Live telemetry: the rolling window and the runtime resource sampler.

Every observability surface so far is a *pull* of accumulated state: the
``/metrics`` scrape is cumulative since process start, the flight
recorder is a post-hoc ring, the perf trajectory only moves in CI.  None
of them answers the operator's live questions — *what is the request
rate right now, what is p99 over the last minute, is the error rate
climbing as we watch?*  This module closes that gap with two pieces:

* :class:`RollingWindow` — a thread-safe, bucketed sliding window
  (default 60 buckets × 1 s) fed from the same service completion path
  as the :class:`~repro.obs.flight.FlightRecorder`.  Each time bucket
  holds per-``(graph_key, backend, outcome)`` request counts plus a
  fixed-bucket latency histogram (the same bounds as
  :attr:`~repro.obs.metrics.Histogram.DEFAULT_BUCKETS`), so a
  :meth:`RollingWindow.snapshot` yields instantaneous rates, error
  rates, and streaming p50/p95/p99 via linear interpolation inside the
  histogram buckets.  :meth:`RollingWindow.record` is O(1) — one bucket
  index, a few dict increments — and observing never touches the
  computation, so served results are bitwise identical with the window
  on or off (``benchmarks/bench_o2_live_telemetry.py`` gates the
  enabled overhead < 3 % alongside ``bench_o1``'s).
* :class:`ResourceSampler` — a background asyncio task sampling the
  *runtime* (not the queries): event-loop lag, resident set size
  (``/proc/self/statm``, stdlib only), GC generation counts and
  collections, plus caller-supplied gauges (the serving layer wires in
  coalescer queue depth and executor occupancy).  Samples land on
  ordinary registry gauges so they ride ``/metrics`` and the
  ``/v1/debug/stream`` telemetry push alike.

The :class:`~repro.obs.slo.SLOEngine` evaluates service-level
objectives against :meth:`RollingWindow.snapshot`; the
``WireServer``'s ``GET /v1/debug/stream`` WebSocket pushes the same
snapshot (plus new SLO alerts and the sampler gauges) as versioned
JSON deltas — see :func:`repro.obs.export.telemetry_payload` and
``tools/obs_top.py`` for the operator-facing end of the pipe.

Clocks are injectable (``clock=``) so tests drive the window
deterministically; the defaults are ``time.monotonic`` (bucket
placement must never jump backwards) and ``time.time`` for wall-clock
stamps.
"""

from __future__ import annotations

import asyncio
import bisect
import gc
import os
import threading
import time

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "ResourceSampler",
    "RollingWindow",
]


class _TimeBucket:
    """One slot of the circular window: an epoch tag (which absolute
    time bucket this slot currently represents) plus the counts recorded
    during that bucket's second(s).  Slots are reused in place — a
    record landing in a slot whose epoch has moved on resets it first,
    so the window never allocates after construction (beyond the
    per-key dict entries)."""

    __slots__ = ("epoch", "count", "errors", "sum", "latency", "keys")

    def __init__(self, n_bounds: int):
        self.epoch = -1
        self.count = 0
        self.errors = 0
        self.sum = 0.0
        self.latency = [0] * (n_bounds + 1)  # trailing +Inf bucket
        self.keys: dict[tuple, int] = {}

    def reset(self, epoch: int) -> None:
        """Re-tag this slot for a new epoch, zeroing its counts."""
        self.epoch = epoch
        self.count = 0
        self.errors = 0
        self.sum = 0.0
        self.latency = [0] * len(self.latency)
        self.keys = {}


class RollingWindow:
    """A thread-safe sliding window of completed-query telemetry.

    Parameters
    ----------
    buckets:
        Number of time buckets (default 60).  The window spans
        ``buckets × width`` seconds; counts older than that age out as
        their slots are reused.
    width:
        Seconds per bucket (default 1.0).
    bounds:
        Strictly increasing latency-histogram upper bounds (seconds);
        defaults to the registry histograms'
        :attr:`~repro.obs.metrics.Histogram.DEFAULT_BUCKETS`, so window
        quantiles and the cumulative ``/metrics`` histograms speak the
        same bucket vocabulary.
    clock:
        Monotonic time source (injectable for deterministic tests).

    Thread-safety: one lock guards the slots; :meth:`record` holds it
    for O(1), :meth:`snapshot` for O(buckets + keys).  The serving layer
    records from the event loop while the stream pusher, ``/healthz``
    and tests read concurrently.
    """

    def __init__(
        self,
        buckets: int = 60,
        *,
        width: float = 1.0,
        bounds=None,
        clock=time.monotonic,
    ):
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        if width <= 0:
            raise ValueError("width must be > 0")
        bounds = tuple(
            float(b)
            for b in (Histogram.DEFAULT_BUCKETS if bounds is None else bounds)
        )
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                "bounds must be a non-empty strictly increasing sequence"
            )
        self.n_buckets = int(buckets)
        self.width = float(width)
        self.bounds = bounds
        self._clock = clock
        self._slots = [_TimeBucket(len(bounds)) for _ in range(buckets)]
        self._lock = threading.Lock()
        self._t0 = clock()
        self._total = 0  # lifetime records, monotonic (never ages out)

    @property
    def span(self) -> float:
        """The window's full extent in seconds (``buckets × width``)."""
        return self.n_buckets * self.width

    def record(
        self,
        duration: float,
        *,
        graph: str | None = None,
        backend: str | None = None,
        outcome: str = "ok",
    ) -> None:
        """Fold one completed query into the current time bucket — O(1):
        one bucket-index division, one bisect into the fixed latency
        bounds, a handful of integer adds.  ``outcome != "ok"`` counts
        as an error; ``graph``/``backend`` key the per-combination rate
        counts the stream and ``snapshot()`` group by."""
        now = self._clock()
        epoch = int((now - self._t0) / self.width)
        lat_idx = bisect.bisect_left(self.bounds, float(duration))
        key = (graph, backend, outcome)
        with self._lock:
            slot = self._slots[epoch % self.n_buckets]
            if slot.epoch != epoch:
                slot.reset(epoch)
            slot.count += 1
            slot.sum += float(duration)
            if outcome != "ok":
                slot.errors += 1
            slot.latency[lat_idx] += 1
            slot.keys[key] = slot.keys.get(key, 0) + 1
            self._total += 1

    def _live_slots(self, now: float, span: float | None) -> list[_TimeBucket]:
        """The slots still inside the window at ``now`` (newest epoch
        last), optionally restricted to the trailing ``span`` seconds."""
        epoch_now = int((now - self._t0) / self.width)
        n_back = self.n_buckets
        if span is not None:
            n_back = min(n_back, max(1, int(span / self.width + 0.5)))
        oldest = epoch_now - n_back + 1
        return [
            slot
            for slot in self._slots
            if oldest <= slot.epoch <= epoch_now
        ]

    def quantiles(self, qs=(0.5, 0.95, 0.99)) -> dict[str, float | None]:
        """Streaming latency quantiles over the whole window via linear
        interpolation inside the fixed histogram buckets (``None`` per
        quantile while the window is empty).  Keys are ``"p50"``-style
        labels.  An observation beyond the last finite bound reports
        that bound — the histogram cannot resolve further."""
        snap = self.snapshot()
        return {
            f"p{round(q * 100)}": _interpolate(
                snap["latency"], self.bounds, q, snap["count"]
            )
            for q in qs
        }

    def snapshot(self, *, span: float | None = None) -> dict:
        """Merge the live buckets into one JSON-ready view of the
        trailing window (optionally only its last ``span`` seconds):

        ``count`` / ``errors`` / ``sum`` totals, ``rate`` and
        ``error_rate`` per second of covered time, non-cumulative
        ``latency`` bucket counts over :attr:`bounds`, interpolated
        ``quantiles`` (p50/p95/p99), per-``(graph, backend, outcome)``
        ``keys`` rows sorted by descending count, the monotonic lifetime
        ``total``, and the window geometry (``span`` / ``covered`` /
        ``width``).  ``covered`` is the seconds of window actually
        elapsed (a freshly built window has seen less than its full
        span), which is the rate denominator."""
        now = self._clock()
        with self._lock:
            slots = self._live_slots(now, span)
            count = sum(s.count for s in slots)
            errors = sum(s.errors for s in slots)
            total_sum = sum(s.sum for s in slots)
            latency = [0] * (len(self.bounds) + 1)
            keys: dict[tuple, int] = {}
            for s in slots:
                for i, c in enumerate(s.latency):
                    latency[i] += c
                for key, c in s.keys.items():
                    keys[key] = keys.get(key, 0) + c
            total = self._total
        full_span = self.span if span is None else min(span, self.span)
        covered = max(min(now - self._t0, full_span), self.width)
        return {
            "span": full_span,
            "width": self.width,
            "covered": covered,
            "count": count,
            "errors": errors,
            "sum": total_sum,
            "rate": count / covered,
            "error_rate": (errors / count) if count else 0.0,
            "latency": latency,
            "bounds": list(self.bounds),
            "quantiles": {
                f"p{round(q * 100)}": _interpolate(
                    latency, self.bounds, q, count
                )
                for q in (0.5, 0.95, 0.99)
            },
            "keys": [
                {
                    "graph": graph,
                    "backend": backend,
                    "outcome": outcome,
                    "count": c,
                }
                for (graph, backend, outcome), c in sorted(
                    keys.items(),
                    key=lambda kv: (-kv[1], str(kv[0])),
                )
            ],
            "total": total,
        }

    def stats(self) -> dict:
        """Occupancy and configuration as one plain dict — the lifetime
        ``total`` plus window geometry (for ``MixingService.stats``)."""
        with self._lock:
            total = self._total
        return {
            "total": total,
            "buckets": self.n_buckets,
            "width": self.width,
            "span": self.span,
        }

    def __repr__(self) -> str:
        return (
            f"RollingWindow({self.n_buckets}x{self.width:g}s, "
            f"total={self._total})"
        )


def _interpolate(latency, bounds, q: float, count: int) -> float | None:
    """The ``q``-quantile of a windowed latency histogram by linear
    interpolation inside the bucket the target rank falls in (Prometheus
    ``histogram_quantile`` semantics over non-cumulative counts).
    ``None`` when the histogram is empty; ranks in the overflow bucket
    report the last finite bound."""
    if count <= 0:
        return None
    target = q * count
    cum = 0
    for idx, c in enumerate(latency):
        if c == 0:
            continue
        if cum + c >= target:
            if idx >= len(bounds):  # +Inf bucket: unresolvable beyond
                return float(bounds[-1])
            lo = bounds[idx - 1] if idx > 0 else 0.0
            hi = bounds[idx]
            return float(lo + (hi - lo) * (target - cum) / c)
        cum += c
    return float(bounds[-1])


def _read_rss_bytes() -> int:
    """Resident set size in bytes from ``/proc/self/statm`` (stdlib
    only: field 2 is resident pages, scaled by the system page size).
    Returns 0 where procfs is unavailable (macOS, exotic containers) —
    the gauge then simply stays flat instead of the sampler failing."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return 0


class ResourceSampler:
    """A background task sampling runtime health into registry gauges.

    Each tick (every ``interval`` seconds) samples:

    * **event-loop lag** — how late ``asyncio.sleep(interval)`` woke up
      versus its target, the canonical "is the loop starved" signal
      (``repro_runtime_loop_lag_seconds``);
    * **RSS** — resident memory from ``/proc/self/statm``
      (``repro_runtime_rss_bytes``);
    * **GC** — per-generation live object counts and cumulative
      collection counts (``repro_runtime_gc_objects{gen}`` /
      ``repro_runtime_gc_collections{gen}``);
    * **caller gauges** — ``sources`` maps gauge names to zero-argument
      callables sampled each tick; the serving layer wires in coalescer
      queue depth and executor occupancy this way, so the sampler never
      imports the service.

    Gauges live on ``registry`` (private when omitted) and therefore
    ride both ``/metrics`` and the ``/v1/debug/stream`` telemetry push;
    :meth:`values` returns the latest flat sample dict for the stream
    payload.  The sampler is an observer: it reads counters and procfs,
    never the computation, so serving results are bitwise identical with
    it running or not (gated with the window in ``bench_o2``).

    Start with :meth:`start` on a running loop; stop with
    :meth:`aclose` (both idempotent).  A ``sources`` callable that
    raises disables only itself (sampled as 0) — a debug gauge must
    never take the serving loop down.
    """

    def __init__(
        self,
        *,
        interval: float = 1.0,
        registry: MetricsRegistry | None = None,
        sources: dict | None = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.interval = float(interval)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._sources = dict(sources or {})
        self._task: asyncio.Task | None = None
        self._lock = threading.Lock()
        self._values: dict[str, float] = {}
        self._loop_lag = self.metrics.gauge(
            "repro_runtime_loop_lag_seconds",
            "Event-loop scheduling lag of the sampler's last tick.",
        )
        self._rss = self.metrics.gauge(
            "repro_runtime_rss_bytes",
            "Resident set size sampled from /proc/self/statm.",
        )
        self._gc_objects = self.metrics.gauge(
            "repro_runtime_gc_objects",
            "Live objects tracked per GC generation.",
            labels=("gen",),
        )
        self._gc_collections = self.metrics.gauge(
            "repro_runtime_gc_collections",
            "Cumulative GC collections per generation.",
            labels=("gen",),
        )
        self._samples = self.metrics.counter(
            "repro_runtime_samples_total", "Resource-sampler ticks taken."
        )
        self._source_gauges = {
            name: self.metrics.gauge(
                name, "Caller-supplied runtime gauge (resource sampler)."
            )
            for name in self._sources
        }

    @property
    def running(self) -> bool:
        """True while the background sampling task is alive."""
        return self._task is not None and not self._task.done()

    def start(self) -> "ResourceSampler":
        """Start the background sampling task on the running event loop
        (idempotent) and take one immediate sample so gauges are live
        before the first interval elapses."""
        if not self.running:
            self.sample_once(0.0)
            self._task = asyncio.ensure_future(self._run())
        return self

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            target = loop.time() + self.interval
            await asyncio.sleep(self.interval)
            self.sample_once(max(0.0, loop.time() - target))

    def sample_once(self, loop_lag: float = 0.0) -> dict:
        """Take one sample synchronously (the background task calls this
        each tick; tests call it directly) and return the flat value
        dict also available from :meth:`values`."""
        values: dict[str, float] = {
            "loop_lag_seconds": float(loop_lag),
            "rss_bytes": float(_read_rss_bytes()),
        }
        self._loop_lag.set(values["loop_lag_seconds"])
        self._rss.set(values["rss_bytes"])
        for gen, n in enumerate(gc.get_count()):
            self._gc_objects.labels(gen=gen).set(n)
            values[f"gc_objects_gen{gen}"] = float(n)
        for gen, st in enumerate(gc.get_stats()):
            collections = int(st.get("collections", 0))
            self._gc_collections.labels(gen=gen).set(collections)
            values[f"gc_collections_gen{gen}"] = float(collections)
        for name, fn in self._sources.items():
            try:
                sampled = float(fn())
            except Exception:
                sampled = 0.0
            self._source_gauges[name].set(sampled)
            values[name] = sampled
        self._samples.inc()
        with self._lock:
            self._values = values
        return values

    def values(self) -> dict:
        """The most recent flat sample (gauge name → value; empty before
        the first tick) — what the telemetry stream embeds per frame."""
        with self._lock:
            return dict(self._values)

    async def aclose(self) -> None:
        """Cancel and await the background task (idempotent)."""
        task, self._task = self._task, None
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"ResourceSampler(interval={self.interval:g}s, {state})"
