"""Declarative SLOs evaluated against the live rolling window.

An operator states the service-level objective once —

>>> from repro.obs import SLO
>>> slo = SLO(target_latency=0.5, availability=0.99, window=60.0)

— and the :class:`SLOEngine` turns every evaluation of the
:class:`~repro.obs.live.RollingWindow` into a typed
:class:`SLOVerdict`:

* ``ok`` — availability and the latency quantile are both inside the
  objective, and the error budget is burning slower than
  ``SLO.warn_burn``;
* ``warn`` — still inside the objective, but the *burn rate* (observed
  error rate over allowed error rate; burn 1.0 exhausts the budget
  exactly at the window's end) or the latency quantile
  (above ``warn_latency_ratio × target_latency``) says a breach is
  coming;
* ``breach`` — availability below target or the latency quantile above
  ``target_latency`` over the evaluation window.

Verdict *transitions* (ok→warn, warn→breach, breach→ok …) are recorded
as alert events in a bounded ring with monotonically increasing
sequence numbers, so the ``/v1/debug/stream`` telemetry push can send
each subscriber only the alerts it has not seen (cursor = last
sequence received) and ``/healthz`` can say *degraded* without saying
*dead*.  The engine also publishes ``repro_slo_status`` /
``repro_slo_burn_rate`` gauges and a ``repro_slo_alerts_total``
counter on its registry so SLO state rides ``/metrics`` too.

Evaluation is pull-based and cheap (one window snapshot, a handful of
divisions): the wire tier evaluates on each stream tick and on
``/healthz``; nothing here runs in the background or touches the
query path.  Clocks are injectable for deterministic transition tests
(``tests/test_wire_stream.py`` drives ok→breach→ok through the wire
fault harness).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .live import RollingWindow
from .metrics import MetricsRegistry

__all__ = [
    "SLO",
    "SLOEngine",
    "SLOVerdict",
    "STATUS_ORDER",
]

#: Verdict severity order; the numeric rank is what the
#: ``repro_slo_status`` gauge publishes (0 ok / 1 warn / 2 breach).
STATUS_ORDER = ("ok", "warn", "breach")


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    Parameters
    ----------
    target_latency:
        The latency objective in seconds: the ``quantile`` of windowed
        latency must stay at or below this.
    availability:
        The success-rate objective in ``(0, 1)``; e.g. ``0.99`` allows
        one error per hundred requests.
    window:
        Evaluation span in seconds — how far back into the rolling
        window a verdict looks (clamped to the window's extent).
    quantile:
        Which latency quantile the latency objective binds (default
        p95).
    warn_burn:
        Burn-rate threshold for the ``warn`` verdict: observed error
        rate over the budget (``1 - availability``); 1.0 means the
        budget exhausts exactly at the window's end.
    warn_latency_ratio:
        Fraction of ``target_latency`` at which latency alone warrants
        ``warn`` (default 0.8 — warn at 80 % of the objective).
    name:
        Identifier used in alert events and gauges when several SLOs
        coexist.
    """

    target_latency: float
    availability: float
    window: float = 60.0
    quantile: float = 0.95
    warn_burn: float = 0.5
    warn_latency_ratio: float = 0.8
    name: str = "default"

    def __post_init__(self):
        """Validate the objective's numeric ranges."""
        if self.target_latency <= 0:
            raise ValueError("target_latency must be > 0")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must be in (0, 1)")
        if self.window <= 0:
            raise ValueError("window must be > 0")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.warn_burn <= 0:
            raise ValueError("warn_burn must be > 0")
        if not 0.0 < self.warn_latency_ratio <= 1.0:
            raise ValueError("warn_latency_ratio must be in (0, 1]")

    def to_dict(self) -> dict:
        """The objective as a JSON-ready dict (telemetry payloads)."""
        return {
            "name": self.name,
            "target_latency": self.target_latency,
            "availability": self.availability,
            "window": self.window,
            "quantile": self.quantile,
            "warn_burn": self.warn_burn,
            "warn_latency_ratio": self.warn_latency_ratio,
        }


@dataclass(frozen=True)
class SLOVerdict:
    """One evaluation of an :class:`SLO` against the rolling window.

    ``status`` is ``"ok"`` / ``"warn"`` / ``"breach"``;
    ``error_budget`` is the fraction of the window's error allowance
    still unspent (1.0 = untouched, 0.0 = exhausted, clamped at 0);
    ``burn_rate`` is observed error rate over allowed error rate;
    ``latency`` is the bound quantile's observed value (``None`` while
    the window is empty — an empty window is vacuously ``ok``);
    ``reasons`` lists which objectives drove a non-ok status.
    """

    status: str
    availability: float
    burn_rate: float
    error_budget: float
    latency: float | None
    latency_target: float
    count: int
    slo: str = "default"
    reasons: tuple = field(default_factory=tuple)

    @property
    def rank(self) -> int:
        """Numeric severity (0 ok / 1 warn / 2 breach) — the
        ``repro_slo_status`` gauge value."""
        return STATUS_ORDER.index(self.status)

    def to_dict(self) -> dict:
        """The verdict as a JSON-ready dict for health and telemetry
        payloads."""
        return {
            "slo": self.slo,
            "status": self.status,
            "availability": self.availability,
            "burn_rate": self.burn_rate,
            "error_budget": self.error_budget,
            "latency": self.latency,
            "latency_target": self.latency_target,
            "count": self.count,
            "reasons": list(self.reasons),
        }


class SLOEngine:
    """Evaluates one :class:`SLO` against a
    :class:`~repro.obs.live.RollingWindow` and keeps the alert ring.

    Parameters
    ----------
    slo:
        The objective to evaluate.
    window:
        The rolling window fed by the service completion path.
    registry:
        Registry for the SLO gauges/counter (private when omitted).
    alert_capacity:
        Bound on the alert ring (oldest transitions evicted first).
    clock:
        Wall-clock source for alert timestamps (injectable; default
        ``time.time`` — alerts are for correlation with external logs,
        so wall clock, not monotonic).

    :meth:`evaluate` computes the verdict, updates the gauges, and —
    only when the status *changed* — appends an alert event
    ``{"seq", "unix_ts", "slo", "from", "to", "verdict"}`` to the
    ring.  :meth:`alerts` reads the ring from a sequence cursor so
    every stream subscriber sees each transition exactly once.
    """

    def __init__(
        self,
        slo: SLO,
        window: RollingWindow,
        *,
        registry: MetricsRegistry | None = None,
        alert_capacity: int = 256,
        clock=time.time,
    ):
        if alert_capacity < 1:
            raise ValueError("alert_capacity must be >= 1")
        self.slo = slo
        self.window = window
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._lock = threading.Lock()
        self._alerts: deque = deque(maxlen=alert_capacity)
        self._seq = 0
        self._last_status = "ok"
        self._status_gauge = self.metrics.gauge(
            "repro_slo_status",
            "Current SLO verdict rank (0 ok / 1 warn / 2 breach).",
            labels=("slo",),
        )
        self._burn_gauge = self.metrics.gauge(
            "repro_slo_burn_rate",
            "Error-budget burn rate (observed error rate / allowed).",
            labels=("slo",),
        )
        self._alerts_total = self.metrics.counter(
            "repro_slo_alerts_total",
            "SLO verdict transitions recorded as alerts.",
            labels=("slo",),
        )

    @property
    def last_status(self) -> str:
        """The status of the most recent :meth:`evaluate` (``"ok"``
        before the first evaluation)."""
        with self._lock:
            return self._last_status

    def _judge(self, snap: dict) -> SLOVerdict:
        """Turn one window snapshot into a verdict (pure: no gauge or
        alert side effects — :meth:`evaluate` adds those)."""
        slo = self.slo
        count = snap["count"]
        if count == 0:
            return SLOVerdict(
                status="ok",
                availability=1.0,
                burn_rate=0.0,
                error_budget=1.0,
                latency=None,
                latency_target=slo.target_latency,
                count=0,
                slo=slo.name,
            )
        availability = 1.0 - snap["error_rate"]
        budget = 1.0 - slo.availability
        burn = snap["error_rate"] / budget
        error_budget = max(0.0, 1.0 - burn)
        qkey = f"p{round(slo.quantile * 100)}"
        latency = snap["quantiles"].get(qkey)
        if latency is None:
            latency = _quantile_of(snap, slo.quantile)
        reasons = []
        if availability < slo.availability:
            reasons.append("availability")
        if latency is not None and latency > slo.target_latency:
            reasons.append("latency")
        if reasons:
            status = "breach"
        else:
            if burn >= slo.warn_burn:
                reasons.append("burn_rate")
            if (
                latency is not None
                and latency > slo.warn_latency_ratio * slo.target_latency
            ):
                reasons.append("latency_warn")
            status = "warn" if reasons else "ok"
        return SLOVerdict(
            status=status,
            availability=availability,
            burn_rate=burn,
            error_budget=error_budget,
            latency=latency,
            latency_target=slo.target_latency,
            count=count,
            slo=slo.name,
            reasons=tuple(reasons),
        )

    def evaluate(self) -> SLOVerdict:
        """Snapshot the rolling window over the SLO's evaluation span,
        judge it, publish the gauges, and append a transition alert if
        the status changed since the last evaluation."""
        snap = self.window.snapshot(span=self.slo.window)
        verdict = self._judge(snap)
        self._status_gauge.labels(slo=self.slo.name).set(verdict.rank)
        self._burn_gauge.labels(slo=self.slo.name).set(verdict.burn_rate)
        with self._lock:
            if verdict.status != self._last_status:
                self._seq += 1
                self._alerts.append(
                    {
                        "seq": self._seq,
                        "unix_ts": self._clock(),
                        "slo": self.slo.name,
                        "from": self._last_status,
                        "to": verdict.status,
                        "verdict": verdict.to_dict(),
                    }
                )
                self._last_status = verdict.status
                self._alerts_total.labels(slo=self.slo.name).inc()
        return verdict

    def alerts(self, since: int = 0) -> tuple[list, int]:
        """The alert events with ``seq > since`` (oldest first) plus the
        cursor to pass next time — the stream's exactly-once delta
        mechanism.  Alerts evicted from the bounded ring before being
        read are gone (the cursor still advances past them)."""
        with self._lock:
            events = [a for a in self._alerts if a["seq"] > since]
            return events, self._seq

    def stats(self) -> dict:
        """Current status, alert-ring occupancy, and the objective —
        one plain dict (for ``MixingService.stats``)."""
        with self._lock:
            return {
                "status": self._last_status,
                "alerts": len(self._alerts),
                "seq": self._seq,
                "slo": self.slo.to_dict(),
            }

    def __repr__(self) -> str:
        return (
            f"SLOEngine({self.slo.name!r}, status={self.last_status!r}, "
            f"window={self.slo.window:g}s)"
        )


def _quantile_of(snap: dict, q: float) -> float | None:
    """Interpolate an arbitrary quantile from a snapshot's latency
    histogram (fallback for quantiles outside the snapshot's standard
    p50/p95/p99 set)."""
    from .live import _interpolate

    return _interpolate(snap["latency"], tuple(snap["bounds"]), q,
                        snap["count"])
