"""Legacy setup shim.

The offline environment ships setuptools 65.5 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .`` through pyproject build
isolation) cannot build editable wheels.  Keeping this file and omitting the
``[build-system]`` table lets pip use the legacy ``setup.py develop`` code
path; all metadata still lives in pyproject.toml's ``[project]`` table, which
setuptools reads directly.
"""

from setuptools import setup

setup()
