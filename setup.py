"""Legacy setup shim.

The offline environment ships setuptools 65.5 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .`` through pyproject build
isolation) cannot build editable wheels.  Keeping this file and omitting the
``[build-system]`` table lets pip use the legacy ``setup.py develop`` code
path; all metadata still lives in pyproject.toml's ``[project]`` table, which
setuptools reads directly.

The ``fast`` extra pulls in numba, which auto-registers the jitted compute
backend (see :mod:`repro.engine.backends`); the library runs fully — and
bitwise identically — without it.
"""

from setuptools import setup

setup(
    extras_require={
        # Optional JIT backend: `pip install .[fast]` registers the
        # "numba" compute backend; absence degrades cleanly (the backend
        # simply is not listed).
        "fast": ["numba"],
    },
)
