#!/usr/bin/env python
"""obs_top: a live terminal dashboard over ``GET /v1/debug/stream``.

Subscribes to a running :class:`~repro.service.wire.WireServer`'s
telemetry push (``repro.service.wire.client.stream_telemetry``) and
renders each delta frame — rolling-window rates and latency quantiles,
per-(graph, backend, outcome) traffic rows, the SLO verdict with its
error-budget burn rate, new SLO transition alerts, wire queue/connection
gauges and the runtime resource-sampler values — as a full-screen
curses view, or as plain text blocks with ``--plain`` (also the
automatic fallback when stdout is not a terminal).

Usage::

    PYTHONPATH=src python tools/obs_top.py HOST PORT \
        [--interval 1.0] [--frames N] [--plain]

``--frames N`` exits after N frames (useful for scripted smoke tests:
``--plain --frames 1`` prints one snapshot and returns).  Interrupt
with Ctrl-C any time; the client sends a proper WebSocket close frame
on the way out.
"""

from __future__ import annotations

import argparse
import asyncio
import sys


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def render_frame(frame: dict) -> str:
    """One telemetry delta frame as a multi-line text block — the pure
    rendering core both the curses view and ``--plain`` mode print
    (and what the stream smoke test asserts against)."""
    lines = []
    drain = "  [DRAINING]" if frame.get("draining") else ""
    lines.append(
        f"obs_top  seq={frame.get('seq')}  v={frame.get('v')}{drain}"
    )
    window = frame.get("window")
    if window:
        q = window.get("quantiles") or {}
        lines.append(
            f"window   {window['count']} req / {window['covered']:.0f}s"
            f"  rate={window['rate']:.1f}/s"
            f"  errors={window['errors']}"
            f" ({100.0 * window['error_rate']:.1f}%)"
        )
        lines.append(
            "latency  p50=" + _fmt_seconds(q.get("p50"))
            + "  p95=" + _fmt_seconds(q.get("p95"))
            + "  p99=" + _fmt_seconds(q.get("p99"))
        )
        for row in (window.get("keys") or [])[:8]:
            lines.append(
                f"  {row['count']:>6}  {row['outcome']:<18}"
                f" {row['backend'] or '-':<10} {row['graph'] or '-'}"
            )
    else:
        lines.append("window   (live telemetry disabled on the server)")
    slo = frame.get("slo")
    if slo:
        lines.append(
            f"slo      [{slo['status'].upper()}] {slo['slo']}"
            f"  avail={100.0 * slo['availability']:.2f}%"
            f"  burn={slo['burn_rate']:.2f}"
            f"  budget={100.0 * slo['error_budget']:.0f}%"
            f"  {_fmt_seconds(slo['latency'])}"
            f" vs {_fmt_seconds(slo['latency_target'])}"
        )
    for alert in frame.get("alerts") or ():
        lines.append(
            f"ALERT    #{alert['seq']} {alert['slo']}:"
            f" {alert['from']} -> {alert['to']}"
        )
    gauges = frame.get("gauges") or {}
    if gauges:
        lines.append(
            f"wire     queue={gauges.get('queue_depth')}"
            f"/{gauges.get('max_pending')}"
            f"  conns={gauges.get('connections')}"
            f"  streams={gauges.get('stream_subscribers')}"
        )
    sampler = frame.get("sampler")
    if sampler:
        lines.append(
            "runtime  lag="
            + _fmt_seconds(sampler.get("loop_lag_seconds"))
            + f"  rss={_fmt_bytes(sampler.get('rss_bytes', 0.0))}"
            + f"  gc0={sampler.get('gc_collections_gen0', 0):.0f}"
            + f"  depth={sampler.get('repro_runtime_coalescer_depth', 0):.0f}"
            + f"  batches={sampler.get('repro_runtime_inflight_batches', 0):.0f}"
        )
    return "\n".join(lines)


async def _consume(args, on_frame) -> int:
    """Drive the stream subscription, calling ``on_frame(frame)`` per
    delta frame; returns the number of frames consumed."""
    sys.path.insert(0, "src")
    from repro.service.wire.client import stream_telemetry

    count = 0
    async for frame in stream_telemetry(
        args.host, args.port,
        interval=args.interval, max_frames=args.frames,
    ):
        on_frame(frame)
        count += 1
    return count


def run_plain(args) -> int:
    """Plain-text mode: print each frame as a separated text block
    (scripted/smoke usage, or stdout is not a terminal)."""
    def show(frame):
        print(render_frame(frame))
        print("-" * 60)
        sys.stdout.flush()

    asyncio.run(_consume(args, show))
    return 0


def run_curses(args) -> int:
    """Full-screen curses mode: repaint the pad on every frame, exit on
    ``q`` or Ctrl-C."""
    import curses

    def driver(screen):
        curses.curs_set(0)
        screen.nodelay(True)

        def show(frame):
            if screen.getch() in (ord("q"), ord("Q")):
                raise KeyboardInterrupt
            screen.erase()
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(render_frame(frame).splitlines()):
                if y >= max_y - 1:
                    break
                screen.addnstr(y, 0, line, max_x - 1)
            screen.refresh()

        asyncio.run(_consume(args, show))

    curses.wrapper(driver)
    return 0


def main(argv=None) -> int:
    """CLI entry point: parse arguments, pick curses vs plain mode, and
    stream until ``--frames`` is exhausted or the user interrupts."""
    parser = argparse.ArgumentParser(
        description="Live telemetry dashboard over /v1/debug/stream."
    )
    parser.add_argument("host", help="wire server host")
    parser.add_argument("port", type=int, help="wire server port")
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="push interval requested from the server (seconds)",
    )
    parser.add_argument(
        "--frames", type=int, default=None,
        help="exit after this many frames (default: run until Ctrl-C)",
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="print text blocks instead of the curses view",
    )
    args = parser.parse_args(argv)
    try:
        if args.plain or not sys.stdout.isatty():
            return run_plain(args)
        return run_curses(args)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as exc:
        print(f"obs_top: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
