#!/usr/bin/env python
"""Perf-trajectory CLI: record benchmark runs, check for regressions.

The benchmark harness dumps one ``benchmarks/results/<bench>.metrics.json``
snapshot per run — and the next run overwrites it.  This tool gives the
suite a memory (see :mod:`repro.obs.history`):

* ``record`` — distill every ``results/*.metrics.json`` artifact into a
  compact, machine-fingerprinted history entry and append it to the
  per-benchmark trajectory file ``results/history/<bench>.jsonl``
  (append-only; nothing is ever rewritten).
* ``check`` — compare each trajectory file's newest entry against its
  trailing history: **identity fields gate hard** (an exact-match
  mismatch exits non-zero — the computation's answer changed), while
  timing excursions beyond the noise band against the trailing median
  are warnings unless ``--fail-on-timing`` is passed (CI keeps the
  timing gate warn-only; shared runners are noisy).

Run from the repository root (CI does, right after the quick-mode
benchmark smoke)::

    PYTHONPATH=src python tools/bench_track.py record
    PYTHONPATH=src python tools/bench_track.py check

Exit status: ``record`` fails only on I/O errors; ``check`` exits 1 iff
any *gated* finding fired.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.history import (  # noqa: E402  (path bootstrap above)
    append_entry,
    check_history,
    extract_entry,
)

DEFAULT_RESULTS = ROOT / "benchmarks" / "results"


def _history_dir(args) -> Path:
    return (
        Path(args.history_dir)
        if args.history_dir
        else Path(args.results_dir) / "history"
    )


def cmd_record(args) -> int:
    """Append one history entry per ``*.metrics.json`` artifact found in
    the results directory."""
    results_dir = Path(args.results_dir)
    history_dir = _history_dir(args)
    artifacts = sorted(results_dir.glob("*.metrics.json"))
    if not artifacts:
        print(f"bench_track: no *.metrics.json under {results_dir}")
        return 0
    for artifact in artifacts:
        snapshot = json.loads(artifact.read_text())
        entry = extract_entry(snapshot, recorded_at=time.time())
        if not entry.get("bench"):
            entry["bench"] = artifact.name.removesuffix(".metrics.json")
        path = append_entry(str(history_dir), entry)
        print(
            f"bench_track: recorded {entry['bench']} "
            f"({len(entry['timings'])} timings, "
            f"{len(entry['identity'])} identity fields) -> {path}"
        )
    return 0


def cmd_check(args) -> int:
    """Compare each trajectory file's newest entry against its history;
    exit 1 iff a gated finding fired."""
    history_dir = _history_dir(args)
    files = sorted(history_dir.glob("*.jsonl")) if history_dir.is_dir() else []
    if not files:
        print(f"bench_track: no history under {history_dir} (nothing to check)")
        return 0
    gated_failures = 0
    for path in files:
        findings = check_history(
            str(path),
            noise=args.noise,
            window=args.window,
            gate_timing=args.fail_on_timing,
        )
        if not findings:
            print(f"bench_track: {path.stem}: ok")
            continue
        for finding in findings:
            tag = "FAIL" if finding.gated else "warn"
            print(f"bench_track: {path.stem}: {tag}: {finding.message}")
            if finding.gated:
                gated_failures += 1
    if gated_failures:
        print(f"bench_track: {gated_failures} gated regression(s)")
        return 1
    return 0


def main(argv=None) -> int:
    """CLI entry point (``record`` / ``check`` subcommands)."""
    parser = argparse.ArgumentParser(
        prog="bench_track", description=__doc__.splitlines()[0]
    )
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument(
        "--results-dir",
        default=str(DEFAULT_RESULTS),
        help="directory holding *.metrics.json artifacts "
        "(default: benchmarks/results)",
    )
    shared.add_argument(
        "--history-dir",
        default=None,
        help="trajectory directory (default: <results-dir>/history)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "record",
        parents=[shared],
        help="append history entries from artifacts",
    )
    check = sub.add_parser(
        "check", parents=[shared], help="compare newest entries vs history"
    )
    check.add_argument(
        "--noise",
        type=float,
        default=0.25,
        help="relative timing noise band vs the trailing median "
        "(default 0.25 = +25%%)",
    )
    check.add_argument(
        "--window",
        type=int,
        default=5,
        help="trailing entries the timing median is taken over (default 5)",
    )
    check.add_argument(
        "--fail-on-timing",
        action="store_true",
        help="gate timing regressions too (default: warn-only; identity "
        "mismatches always gate)",
    )
    args = parser.parse_args(argv)
    if args.command == "record":
        return cmd_record(args)
    return cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
