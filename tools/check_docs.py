#!/usr/bin/env python
"""Docs gate: intra-repo links, public-API docstring coverage, quickstart.

Three checks, all dependency-free (stdlib + the library itself):

1. **Links** — every relative link/image target in the repo's Markdown
   files must exist (external ``http(s)``/``mailto`` targets are skipped,
   ``#fragment`` parts are ignored).
2. **Docstrings** — every public module / class / function / method
   defined under ``repro.engine`` and ``repro.dynamic`` must carry a
   non-trivial docstring (the ``interrogate --fail-under 100`` contract,
   implemented with ``inspect`` so the offline image needs no extra
   package).
3. **Quickstart** — the first ``python`` code block of README.md is
   executed; a broken quickstart fails the gate.
4. **Tools** — every ``tools/*.py`` script must carry a module docstring
   and document its top-level public functions (checked via ``ast`` so
   the gate never imports — and thereby runs — a CLI script).

Run from the repository root::

    python tools/check_docs.py            # all checks
    python tools/check_docs.py links docstrings   # a subset

Exit status 0 iff every requested check passes.
"""

from __future__ import annotations

import ast
import inspect
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose links are validated.
MARKDOWN_GLOBS = ["*.md", "docs/*.md"]

#: Packages whose public APIs must be fully documented.
DOCSTRING_PACKAGES = [
    "repro.engine",
    "repro.engine.backends",
    "repro.dynamic",
    "repro.obs",
    "repro.parallel",
    "repro.service",
    "repro.service.wire",
]

#: Minimum docstring length to count as documentation, not a placeholder.
MIN_DOCSTRING = 10

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files():
    """Yield every Markdown file the link check covers."""
    for pattern in MARKDOWN_GLOBS:
        yield from sorted(ROOT.glob(pattern))


def check_links() -> list[str]:
    """Return a list of 'file: broken-target' problems."""
    problems = []
    for md in iter_markdown_files():
        text = md.read_text(encoding="utf-8")
        # Strip fenced code blocks: link syntax inside code is not a link.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(ROOT)}: broken link -> {target}"
                )
    return problems


def _public_members(module):
    """Yield (qualified name, object) for the module's public API."""
    mod_name = module.__name__
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != mod_name:
            continue  # re-export; documented at its definition site
        yield f"{mod_name}.{name}", obj
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if inspect.isfunction(member) or isinstance(
                    member, (property, classmethod, staticmethod)
                ):
                    yield f"{mod_name}.{name}.{mname}", member


def _has_docstring(obj) -> bool:
    if isinstance(obj, (classmethod, staticmethod)):
        obj = obj.__func__
    if isinstance(obj, property):
        obj = obj.fget
    doc = inspect.getdoc(obj)
    return doc is not None and len(doc.strip()) >= MIN_DOCSTRING


def check_docstrings() -> list[str]:
    """Return a list of undocumented public API members."""
    import importlib
    import pkgutil

    problems = []
    for pkg_name in DOCSTRING_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        modules = [pkg]
        for info in pkgutil.iter_modules(pkg.__path__):
            if not info.name.startswith("_"):
                modules.append(
                    importlib.import_module(f"{pkg_name}.{info.name}")
                )
        for module in modules:
            if not _has_docstring(module):
                problems.append(f"{module.__name__}: missing module docstring")
            for qual, obj in _public_members(module):
                if not _has_docstring(obj):
                    problems.append(f"{qual}: missing docstring")
    return problems


def check_quickstart() -> list[str]:
    """Execute README.md's first ``python`` code block."""
    readme = ROOT / "README.md"
    match = re.search(r"```python\n(.*?)```", readme.read_text(), flags=re.S)
    if match is None:
        return ["README.md: no ```python quickstart block found"]
    code = match.group(1)
    try:
        exec(compile(code, "README.md:quickstart", "exec"), {"__name__": "__quickstart__"})
    except Exception as exc:  # pragma: no cover - failure path
        return [f"README.md quickstart raised {type(exc).__name__}: {exc}"]
    return []


def check_tools() -> list[str]:
    """Every ``tools/*.py`` script: module docstring plus docstrings on
    all top-level public functions — parsed with ``ast`` (importing a
    CLI script would execute it)."""
    problems = []
    for script in sorted((ROOT / "tools").glob("*.py")):
        tree = ast.parse(script.read_text(encoding="utf-8"))
        rel = script.relative_to(ROOT)
        doc = ast.get_docstring(tree)
        if not doc or len(doc.strip()) < MIN_DOCSTRING:
            problems.append(f"{rel}: missing module docstring")
        for node in tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if node.name.startswith("_"):
                continue
            fdoc = ast.get_docstring(node)
            if not fdoc or len(fdoc.strip()) < MIN_DOCSTRING:
                problems.append(
                    f"{rel}: function {node.name} missing docstring"
                )
    return problems


CHECKS = {
    "links": check_links,
    "docstrings": check_docstrings,
    "quickstart": check_quickstart,
    "tools": check_tools,
}


def main(argv: list[str]) -> int:
    """Run the requested checks (all by default); 0 iff all pass."""
    sys.path.insert(0, str(ROOT / "src"))
    names = argv or list(CHECKS)
    unknown = [n for n in names if n not in CHECKS]
    if unknown:
        print(f"unknown checks: {unknown}; available: {sorted(CHECKS)}")
        return 2
    failed = False
    for name in names:
        problems = CHECKS[name]()
        status = "ok" if not problems else f"{len(problems)} problem(s)"
        print(f"[{name}] {status}")
        for p in problems:
            print(f"  - {p}")
        failed = failed or bool(problems)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
