"""Broadcast / convergecast over BFS trees — value correctness, round
formulas, and fast/faithful agreement."""

import numpy as np
import pytest

from repro.congest import (
    CongestNetwork,
    broadcast_value,
    build_bfs_tree,
    convergecast_count,
    convergecast_max,
    convergecast_min,
    convergecast_sum,
)
from repro.congest.tree_ops import convergecast
from repro.errors import CongestViolationError
from repro.graphs import generators as gen


@pytest.fixture
def nets():
    g = gen.beta_barbell(3, 5)
    fast = CongestNetwork(g, mode="fast")
    slow = CongestNetwork(g, mode="faithful")
    return fast, slow, build_bfs_tree(fast, 0), build_bfs_tree(slow, 0)


class TestBroadcast:
    def test_value_delivered(self, nets):
        fast, slow, tf, ts = nets
        assert broadcast_value(fast, tf, 42, 8) == 42
        assert broadcast_value(slow, ts, 42, 8) == 42

    def test_round_cost_is_height(self, nets):
        fast, slow, tf, ts = nets
        fast.reset_ledger()
        slow.reset_ledger()
        broadcast_value(fast, tf, 1, 8)
        broadcast_value(slow, ts, 1, 8)
        assert fast.ledger.rounds == tf.height
        assert slow.ledger.rounds == ts.height
        assert fast.ledger.messages == slow.ledger.messages == tf.size - 1

    def test_bit_budget_enforced(self, nets):
        fast, _, tf, _ = nets
        with pytest.raises(CongestViolationError):
            broadcast_value(fast, tf, "big", 10_000)


class TestConvergecast:
    def test_sum_min_max_match_numpy(self, nets, rng):
        fast, slow, tf, ts = nets
        vals = rng.random(15)
        assert convergecast_sum(fast, tf, vals, 8) == pytest.approx(vals.sum())
        assert convergecast_sum(slow, ts, vals, 8) == pytest.approx(vals.sum())
        assert convergecast_min(fast, tf, vals, 8) == pytest.approx(vals.min())
        assert convergecast_max(slow, ts, vals, 8) == pytest.approx(vals.max())

    def test_count(self, nets):
        fast, _, tf, _ = nets
        mask = np.zeros(15, dtype=bool)
        mask[[0, 3, 7]] = True
        assert convergecast_count(fast, tf, mask, 8) == 3

    def test_round_cost_is_height(self, nets, rng):
        fast, slow, tf, ts = nets
        vals = rng.random(15)
        fast.reset_ledger()
        slow.reset_ledger()
        convergecast_sum(fast, tf, vals, 8)
        convergecast_sum(slow, ts, vals, 8)
        assert fast.ledger.rounds == slow.ledger.rounds == tf.height
        assert fast.ledger.messages == slow.ledger.messages == tf.size - 1

    def test_vector_payload(self, nets, rng):
        fast, slow, tf, ts = nets
        vals = rng.random((15, 2))
        got_f = convergecast(fast, tf, vals, "min", 8)
        got_s = convergecast(slow, ts, vals, "min", 8)
        np.testing.assert_allclose(got_f, vals.min(axis=0))
        np.testing.assert_allclose(got_s, vals.min(axis=0))

    def test_vector_payload_bits_counted(self, nets, rng):
        fast, _, tf, _ = nets
        vals = rng.random((15, 3))
        fast.reset_ledger()
        convergecast(fast, tf, vals, "sum", 8)
        assert fast.ledger.bits == (tf.size - 1) * 24

    def test_only_tree_values_aggregated(self):
        g = gen.path_graph(6)
        net = CongestNetwork(g)
        tree = build_bfs_tree(net, 0, depth_limit=2)  # nodes 0..2
        vals = np.array([1.0, 2.0, 3.0, 100.0, 100.0, 100.0])
        assert convergecast_sum(net, tree, vals, 8) == pytest.approx(6.0)

    def test_shape_validation(self, nets):
        fast, _, tf, _ = nets
        with pytest.raises(ValueError):
            convergecast_sum(fast, tf, np.ones(3), 8)
        with pytest.raises(ValueError):
            convergecast(fast, tf, np.ones(15), "median", 8)

    def test_oversized_vector_rejected(self, nets):
        fast, _, tf, _ = nets
        with pytest.raises(CongestViolationError):
            convergecast(fast, tf, np.ones((15, 50)), "sum", 8)

    def test_deep_chain_faithful(self):
        """Convergecast over a path (worst-case depth) in the engine."""
        g = gen.path_graph(6)
        slow = CongestNetwork(g, mode="faithful")
        ts = build_bfs_tree(slow, 0)
        vals = np.arange(6, dtype=float)
        slow.reset_ledger()
        assert convergecast_sum(slow, ts, vals, 8) == pytest.approx(15.0)
        assert slow.ledger.rounds == 5
