"""Algorithm 2 (LOCAL-MIXING-TIME, Theorem 1) and the §3.2 exact variant
(Theorem 2): output guarantees, round ledgers, and agreement with the
centralized reference under matching grid semantics."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    exact_local_mixing_time_congest,
    local_mixing_time_congest,
)
from repro.analysis import theorem1_round_bound, theorem2_round_bound
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.errors import ConvergenceError
from repro.graphs import generators as gen
from repro.graphs.properties import diameter
from repro.walks import local_mixing_time, mixing_time


@pytest.fixture
def barbell_net():
    g = gen.beta_barbell(4, 16)
    return g, CongestNetwork(g, mode="fast")


class TestAlgorithm2Output:
    def test_within_2x_of_grid_exact(self, barbell_net):
        """Output ℓ is a power of 2; the grid-exact stopping time τ* (same
        4ε/grid semantics, every length) satisfies ℓ ≤ 2τ*  — and ℓ ≥ τ*'s
        preceding power of two."""
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=1)
        grid_exact = local_mixing_time(
            g, 0, beta=4, sizes="grid", threshold_factor=4.0, t_schedule="all"
        ).time
        assert res.time <= 2 * max(grid_exact, 1)
        assert res.time >= grid_exact / 2

    def test_matches_centralized_doubling(self, barbell_net):
        """With identical (doubling, grid, 4ε) semantics the distributed
        run must stop at the same ℓ as the centralized scan — the only
        differences are the n^{-c} rounding and the n^{-4} perturbations,
        both far below ε."""
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=2)
        cen = local_mixing_time(
            g, 0, beta=4, sizes="grid", threshold_factor=4.0,
            t_schedule="doubling",
        )
        assert res.time == cen.time
        assert res.set_size == cen.set_size

    def test_output_is_power_of_two(self, barbell_net):
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=3)
        assert res.time & (res.time - 1) == 0

    def test_deviation_below_threshold(self, barbell_net):
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=4)
        assert res.deviation < res.threshold == 4 * DEFAULT_EPS

    def test_expander_local_close_to_global(self):
        """§2.3(b): on an expander there is no substantial local-vs-global
        gap — Algorithm 2's output is within the doubling factor of the
        global mixing time (both polylog n)."""
        g = gen.random_regular(64, 8, seed=5)
        net = CongestNetwork(g)
        res = local_mixing_time_congest(net, 0, beta=2, seed=5)
        tau_mix = mixing_time(g, 0, DEFAULT_EPS)
        assert res.time <= 2 * tau_mix
        cen = local_mixing_time(
            g, 0, beta=2, sizes="grid", threshold_factor=4.0,
            t_schedule="doubling",
        )
        assert res.time == cen.time

    def test_different_sources_work(self, barbell_net):
        g, net = barbell_net
        for s in (0, 17, 63):
            res = local_mixing_time_congest(
                CongestNetwork(g), s, beta=4, seed=s
            )
            assert res.time <= 4

    def test_validation(self, barbell_net):
        g, net = barbell_net
        with pytest.raises(ValueError):
            local_mixing_time_congest(net, 0, beta=0.5)
        with pytest.raises(ValueError):
            local_mixing_time_congest(net, 0, beta=2, eps=0)
        with pytest.raises(ValueError):
            local_mixing_time_congest(net, g.n, beta=2)

    def test_t_max_exhaustion(self):
        g = gen.beta_barbell(3, 5)  # inhomogeneity floor > 4*eps for tiny eps
        net = CongestNetwork(g)
        with pytest.raises(ConvergenceError):
            local_mixing_time_congest(net, 0, beta=3, eps=1e-4, t_max=64)


class TestTheorem1Rounds:
    def test_round_bound_shape(self, barbell_net):
        """Measured rounds stay within a constant of the Theorem 1 bound
        τ·log²n·log_{1+ε}β (constants absorbed; ratio reported by bench A2)."""
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=6)
        bound = theorem1_round_bound(res.time, g.n, DEFAULT_EPS, 4)
        assert res.rounds <= 40 * bound

    def test_ledger_phases_present(self, barbell_net):
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=7)
        for phase in ("bfs", "flooding", "ksearch"):
            assert res.ledger.phase_rounds(phase) > 0

    def test_flooding_rounds_sum_of_phases(self, barbell_net):
        """Algorithm 1 reruns per phase: flooding rounds = Σ 2^i up to ℓ."""
        g, net = barbell_net
        res = local_mixing_time_congest(net, 0, beta=4, seed=8)
        expect = sum(2**i for i in range(int(math.log2(res.time)) + 1))
        assert res.ledger.phase_rounds("flooding") == expect


class TestExactAlgorithm:
    def test_matches_centralized_grid_exact(self, barbell_net):
        g, net = barbell_net
        res = exact_local_mixing_time_congest(net, 0, beta=4, seed=9)
        cen = local_mixing_time(
            g, 0, beta=4, sizes="grid", threshold_factor=4.0, t_schedule="all"
        )
        assert res.time == cen.time

    def test_exact_le_doubling_output(self, barbell_net):
        g, _ = barbell_net
        exact = exact_local_mixing_time_congest(
            CongestNetwork(g), 0, beta=4, seed=10
        )
        approx = local_mixing_time_congest(CongestNetwork(g), 0, beta=4, seed=10)
        assert exact.time <= approx.time

    def test_reuse_bfs_same_output(self, barbell_net):
        g, _ = barbell_net
        a = exact_local_mixing_time_congest(CongestNetwork(g), 0, beta=4, seed=11)
        b = exact_local_mixing_time_congest(
            CongestNetwork(g), 0, beta=4, seed=11, reuse_bfs=True
        )
        assert a.time == b.time

    def test_theorem2_round_shape(self, barbell_net):
        g, net = barbell_net
        res = exact_local_mixing_time_congest(net, 0, beta=4, seed=12)
        d_tilde = min(res.time, diameter(g))
        bound = theorem2_round_bound(res.time, d_tilde, g.n, DEFAULT_EPS, 4)
        assert res.rounds <= 40 * bound

    def test_one_flooding_round_per_length(self, barbell_net):
        g, net = barbell_net
        res = exact_local_mixing_time_congest(net, 0, beta=4, seed=13)
        assert res.ledger.phase_rounds("flooding") == res.time

    def test_t_max_exhaustion(self):
        g = gen.beta_barbell(3, 5)
        net = CongestNetwork(g)
        with pytest.raises(ConvergenceError):
            exact_local_mixing_time_congest(net, 0, beta=3, eps=1e-4, t_max=16)


class TestEndToEndSemantics:
    def test_gap_vs_global_mixing(self):
        """The reproduction's headline: on the β-barbell the distributed
        local-mixing computation finishes in rounds ~ τ_local·polylog while
        the global mixing time is orders of magnitude larger."""
        g = gen.beta_barbell(4, 16)
        net = CongestNetwork(g)
        res = local_mixing_time_congest(net, 0, beta=4, seed=14)
        tau_mix = mixing_time(g, 0, DEFAULT_EPS)
        assert res.time <= 4
        assert tau_mix > 1000
        assert res.rounds < tau_mix  # cheaper than even one global pass


class TestProtocolInvariants:
    def test_convergecast_mismatch_raises_protocol_error(self, monkeypatch):
        """Regression: the tree-size invariant used to be a bare ``assert``,
        silently stripped under ``python -O``; it must raise ProtocolError."""
        import repro.algorithms.local_mixing_time as alg2_mod
        from repro.errors import ProtocolError

        def bad_convergecast(net, tree, values, bits, phase=None):
            return -1  # a count no tree can produce

        monkeypatch.setattr(alg2_mod, "convergecast_count", bad_convergecast)
        g = gen.beta_barbell(3, 5)
        net = CongestNetwork(g)
        with pytest.raises(ProtocolError, match="tree-size mismatch"):
            local_mixing_time_congest(net, 0, beta=3, seed=1)
