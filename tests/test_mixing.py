"""Unit tests for global mixing times (Definition 1 + Lemma 1)."""

import numpy as np
import pytest

from repro.constants import DEFAULT_EPS
from repro.errors import BipartiteGraphError, ConvergenceError
from repro.graphs import generators as gen
from repro.spectral import stationary_distribution
from repro.walks import (
    distribution_trajectory,
    graph_mixing_time,
    l1_distance,
    mixing_time,
)


class TestMixingTime:
    def test_complete_graph_is_one(self):
        # §2.3(a): p_1 is eps-close to uniform on K_n for large-enough n
        g = gen.complete_graph(64)
        assert mixing_time(g, 0, DEFAULT_EPS) == 1

    def test_methods_agree(self, nonbipartite_graph):
        g = nonbipartite_graph
        a = mixing_time(g, 0, DEFAULT_EPS, method="iterative")
        b = mixing_time(g, 0, DEFAULT_EPS, method="spectral")
        assert a == b

    def test_definition_first_time_below_eps(self, barbell_small):
        g = barbell_small
        eps = DEFAULT_EPS
        t = mixing_time(g, 0, eps)
        pi = stationary_distribution(g)
        dists = {
            s: l1_distance(p, pi)
            for s, p in distribution_trajectory(g, 0, t_max=t)
        }
        assert dists[t] < eps
        if t > 0:
            assert dists[t - 1] >= eps

    def test_monotone_in_eps(self, barbell_small):
        t_loose = mixing_time(barbell_small, 0, 0.25)
        t_tight = mixing_time(barbell_small, 0, 0.01)
        assert t_tight >= t_loose

    def test_bipartite_rejected_without_lazy(self, path8):
        with pytest.raises(BipartiteGraphError):
            mixing_time(path8, 0, DEFAULT_EPS)

    def test_bipartite_ok_with_lazy(self, path8):
        assert mixing_time(path8, 0, DEFAULT_EPS, lazy=True) > 0

    def test_eps_validation(self, cycle9):
        with pytest.raises(ValueError):
            mixing_time(cycle9, 0, 0.0)
        with pytest.raises(ValueError):
            mixing_time(cycle9, 0, 1.0)

    def test_t_max_exhaustion_raises(self, barbell_small):
        with pytest.raises(ConvergenceError):
            mixing_time(barbell_small, 0, 1e-9, t_max=3, method="iterative")
        with pytest.raises(ConvergenceError):
            mixing_time(barbell_small, 0, 1e-9, t_max=3, method="spectral")

    def test_unknown_method(self, cycle9):
        with pytest.raises(ValueError):
            mixing_time(cycle9, 0, 0.1, method="quantum")

    def test_barbell_mixing_large(self, barbell_medium):
        # The bottleneck forces a large mixing time (Ω(β²) scale).
        assert mixing_time(barbell_medium, 0, DEFAULT_EPS) > 100


class TestLemma1Monotonicity:
    """Lemma 1: ‖p_{t+1} − π‖₁ ≤ ‖p_t − π‖₁ (global distance only)."""

    @pytest.mark.parametrize("source", [0, 4])
    def test_distance_non_increasing(self, nonbipartite_graph, source):
        g = nonbipartite_graph
        if source >= g.n:
            source = g.n - 1
        pi = stationary_distribution(g)
        dists = [
            l1_distance(p, pi)
            for _, p in distribution_trajectory(g, source, t_max=60)
        ]
        for a, b in zip(dists, dists[1:]):
            assert b <= a + 1e-12


class TestGraphMixingTime:
    def test_max_over_sources(self, barbell_small):
        g = barbell_small
        per_source = [
            mixing_time(g, s, DEFAULT_EPS) for s in range(g.n)
        ]
        assert graph_mixing_time(g, DEFAULT_EPS) == max(per_source)

    def test_source_sample(self, barbell_small):
        g = barbell_small
        full = graph_mixing_time(g, DEFAULT_EPS)
        sampled = graph_mixing_time(g, DEFAULT_EPS, sources=[0, 7, 14])
        assert sampled <= full

    def test_vertex_transitive_single_source_suffices(self, cycle9):
        assert graph_mixing_time(cycle9, DEFAULT_EPS) == mixing_time(
            cycle9, 0, DEFAULT_EPS
        )


class TestGraphMixingTimeEngines:
    """graph_mixing_time now runs on the batched engine by default; the
    per-source loop stays available as the validation reference."""

    def test_batch_default_equals_loop(self, barbell_small):
        g = barbell_small
        assert graph_mixing_time(g, DEFAULT_EPS) == graph_mixing_time(
            g, DEFAULT_EPS, engine="loop"
        )

    @pytest.mark.parametrize("method", ["iterative", "spectral"])
    def test_methods_agree_across_engines(self, nonbipartite_graph, method):
        g = nonbipartite_graph
        batch = graph_mixing_time(g, DEFAULT_EPS, method=method)
        loop = graph_mixing_time(g, DEFAULT_EPS, method=method, engine="loop")
        assert batch == loop

    def test_lazy_path_engines_agree(self, path8):
        batch = graph_mixing_time(path8, DEFAULT_EPS, lazy=True)
        loop = graph_mixing_time(path8, DEFAULT_EPS, lazy=True, engine="loop")
        assert batch == loop

    def test_source_subset_engines_agree(self, barbell_small):
        g = barbell_small
        srcs = [0, 7, 14]
        assert graph_mixing_time(g, DEFAULT_EPS, sources=srcs) == max(
            mixing_time(g, s, DEFAULT_EPS, method="spectral") for s in srcs
        )

    def test_unknown_engine_rejected(self, cycle9):
        with pytest.raises(ValueError, match="engine"):
            graph_mixing_time(cycle9, DEFAULT_EPS, engine="warp")
