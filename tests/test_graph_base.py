"""Unit tests for repro.graphs.base.Graph."""

import numpy as np
import pytest

import networkx as nx

from repro.errors import DisconnectedGraphError, GraphError, NotRegularError
from repro.graphs import Graph
from repro.graphs import generators as gen


class TestConstruction:
    def test_basic_edge_list(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_reverse_orientation_collapses(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 1)])
        assert g.m == 2

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            Graph(3, [(0, 3)])
        with pytest.raises(GraphError, match="out of range"):
            Graph(3, [(-1, 0)])

    def test_zero_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_empty_graph_single_node(self):
        g = Graph(1, [])
        assert g.n == 1 and g.m == 0

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1, 2)])

    def test_name_default_and_custom(self):
        assert "n=3" in Graph(3, [(0, 1)]).name
        assert Graph(3, [(0, 1)], name="tri").name == "tri"


class TestAccessors:
    def test_degrees(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.degrees.tolist() == [3, 1, 1, 1]
        assert g.degree(0) == 3
        assert g.degree(2) == 1

    def test_neighbors_sorted(self):
        g = Graph(5, [(2, 4), (2, 0), (2, 3)])
        assert g.neighbors(2).tolist() == [0, 3, 4]

    def test_has_edge(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 3)

    def test_edges_iteration_canonical(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        g = Graph(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_volume_is_twice_m(self):
        g = gen.beta_barbell(3, 4)
        assert g.volume == 2 * g.m

    def test_len(self):
        assert len(Graph(5, [(0, 1)])) == 5

    def test_csr_arrays_read_only(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.indptr[0] = 5
        with pytest.raises(ValueError):
            g.indices[0] = 2
        with pytest.raises(ValueError):
            g.degrees[0] = 9


class TestPredicates:
    def test_regular_complete(self):
        g = gen.complete_graph(6)
        assert g.is_regular
        assert g.regular_degree == 5

    def test_not_regular_raises(self):
        g = gen.star_graph(5)
        assert not g.is_regular
        with pytest.raises(NotRegularError):
            _ = g.regular_degree

    def test_connected(self):
        assert Graph(3, [(0, 1), (1, 2)]).is_connected
        assert not Graph(3, [(0, 1)]).is_connected

    def test_require_connected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(DisconnectedGraphError):
            g.require_connected()

    @pytest.mark.parametrize(
        "maker,expect",
        [
            (lambda: gen.path_graph(6), True),
            (lambda: gen.cycle_graph(8), True),
            (lambda: gen.cycle_graph(9), False),
            (lambda: gen.complete_graph(4), False),
            (lambda: gen.hypercube(3), True),
            (lambda: gen.star_graph(7), True),
            (lambda: gen.beta_barbell(3, 4), False),
        ],
    )
    def test_bipartite(self, maker, expect):
        assert maker().is_bipartite is expect


class TestConversions:
    def test_networkx_round_trip(self):
        g = gen.beta_barbell(3, 4)
        g2 = Graph.from_networkx(g.to_networkx())
        assert g == g2

    def test_from_networkx_relabels(self):
        nxg = nx.Graph()
        nxg.add_edges_from([("c", "a"), ("a", "b")])
        g = Graph.from_networkx(nxg)
        assert g.n == 3
        # sorted labels: a->0, b->1, c->2
        assert g.has_edge(0, 2) and g.has_edge(0, 1)

    def test_from_adjacency_dense(self):
        adj = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]])
        g = Graph.from_adjacency(adj)
        assert g.m == 2 and g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_adjacency_matrix_symmetric(self):
        g = gen.random_regular(12, 4, seed=3)
        A = g.adjacency_matrix()
        assert (A != A.T).nnz == 0
        assert A.sum() == 2 * g.m

    def test_from_csr_round_trip(self):
        g = gen.cycle_graph(7)
        g2 = Graph.from_csr(g.indptr, g.indices)
        assert g == g2

    def test_from_csr_rejects_asymmetric(self):
        with pytest.raises(GraphError):
            Graph.from_csr(np.array([0, 1, 1]), np.array([1]))

    def test_from_csr_rejects_unsorted_rows(self):
        # Regression: a triangle with unsorted neighbor rows used to pass
        # validation, silently breaking the searchsorted-based has_edge
        # (has_edge(0, 1) returned False on a triangle).
        indptr = np.array([0, 2, 4, 6])
        unsorted = np.array([2, 1, 0, 2, 1, 0])  # rows [2,1], [0,2], [1,0]
        with pytest.raises(GraphError, match="sorted"):
            Graph.from_csr(indptr, unsorted)
        sorted_rows = np.array([1, 2, 0, 2, 0, 1])
        g = Graph.from_csr(indptr, sorted_rows)
        assert g.has_edge(0, 1) and g.has_edge(1, 2) and g.has_edge(0, 2)

    def test_from_csr_rejects_duplicate_in_row(self):
        indptr = np.array([0, 2, 4])
        dup = np.array([1, 1, 0, 0])
        with pytest.raises(GraphError, match="sorted"):
            Graph.from_csr(indptr, dup)

    def test_from_csr_rejects_out_of_range_index(self):
        indptr = np.array([0, 1, 2])
        bad = np.array([5, 0])
        with pytest.raises(GraphError, match="out of range"):
            Graph.from_csr(indptr, bad)

    def test_from_csr_validate_false_adopts_verbatim(self):
        # The documented contract: validate=False trusts the caller.
        indptr = np.array([0, 2, 4, 6])
        unsorted = np.array([2, 1, 0, 2, 1, 0])
        g = Graph.from_csr(indptr, unsorted, validate=False)
        assert g.n == 3


class TestInducedSubgraph:
    def test_clique_extraction(self):
        g = gen.beta_barbell(3, 5)
        sub, mapping = g.induced_subgraph(range(5))
        assert sub.n == 5
        assert sub.m == 10  # K5
        assert mapping.tolist() == [0, 1, 2, 3, 4]

    def test_mapping_preserves_edges(self):
        g = gen.cycle_graph(8)
        sub, mapping = g.induced_subgraph([0, 1, 2, 5])
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)

    def test_empty_selection_rejected(self):
        g = gen.cycle_graph(5)
        with pytest.raises(GraphError):
            g.induced_subgraph([])

    def test_out_of_range_rejected(self):
        g = gen.cycle_graph(5)
        with pytest.raises(GraphError):
            g.induced_subgraph([99])


class TestEqualityHash:
    def test_equality(self):
        a = gen.cycle_graph(6)
        b = Graph(6, [(i, (i + 1) % 6) for i in range(6)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert gen.cycle_graph(6) != gen.path_graph(6)

    def test_eq_other_type(self):
        assert gen.cycle_graph(6) != "cycle"
