"""Unit tests for repro.graphs.generators — every family's structural
invariants (sizes, degrees, connectivity, the Figure 1 barbell layout)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.properties import diameter, shortest_path_lengths_from


class TestComplete:
    @pytest.mark.parametrize("n", [2, 3, 5, 10])
    def test_structure(self, n):
        g = gen.complete_graph(n)
        assert g.n == n
        assert g.m == n * (n - 1) // 2
        assert g.is_regular and g.regular_degree == n - 1
        assert g.is_connected

    def test_too_small(self):
        with pytest.raises(GraphError):
            gen.complete_graph(1)


class TestPathCycle:
    def test_path(self):
        g = gen.path_graph(6)
        assert g.m == 5
        assert g.degrees.tolist() == [1, 2, 2, 2, 2, 1]
        assert diameter(g) == 5
        assert g.is_bipartite

    def test_cycle(self):
        g = gen.cycle_graph(7)
        assert g.m == 7
        assert g.is_regular and g.regular_degree == 2
        assert diameter(g) == 3

    def test_minimums(self):
        with pytest.raises(GraphError):
            gen.path_graph(1)
        with pytest.raises(GraphError):
            gen.cycle_graph(2)


class TestBetaBarbell:
    """Figure 1: a path of β equal-sized cliques."""

    @pytest.mark.parametrize("beta,k", [(1, 4), (2, 3), (3, 5), (5, 8)])
    def test_node_and_edge_counts(self, beta, k):
        g = gen.beta_barbell(beta, k)
        assert g.n == beta * k
        assert g.m == beta * k * (k - 1) // 2 + (beta - 1)

    def test_clique_blocks_are_cliques(self):
        g = gen.beta_barbell(4, 5)
        for b in range(4):
            block = range(b * 5, (b + 1) * 5)
            for i in block:
                for j in block:
                    if i < j:
                        assert g.has_edge(i, j)

    def test_bridge_edges(self):
        g = gen.beta_barbell(3, 4)
        assert g.has_edge(3, 4)  # clique0 tail -> clique1 head
        assert g.has_edge(7, 8)
        assert not g.has_edge(0, 4)

    def test_degree_profile(self):
        k = 6
        g = gen.beta_barbell(3, k)
        deg = g.degrees
        # interior clique nodes: k-1; bridge endpoints: k
        assert int(deg.max()) == k
        assert int(deg.min()) == k - 1
        assert int(np.count_nonzero(deg == k)) == 2 * (3 - 1)

    def test_diameter_theta_beta(self):
        # D = 3*(beta-1) + ... each clique crossing is 1 hop, bridges 1 hop
        g3 = gen.beta_barbell(3, 5)
        g6 = gen.beta_barbell(6, 5)
        assert diameter(g6) > diameter(g3)
        assert diameter(g6) <= 3 * 6  # O(beta)

    def test_connected_not_bipartite(self):
        g = gen.beta_barbell(4, 4)
        assert g.is_connected and not g.is_bipartite

    def test_validation(self):
        with pytest.raises(GraphError):
            gen.beta_barbell(0, 4)
        with pytest.raises(GraphError):
            gen.beta_barbell(3, 1)


class TestDumbbellLollipop:
    def test_dumbbell_classic(self):
        g = gen.dumbbell(4)
        assert g.n == 8
        assert g.m == 2 * 6 + 1
        assert g.is_connected

    def test_dumbbell_with_path(self):
        g = gen.dumbbell(3, path_len=2)
        assert g.n == 8
        assert g.is_connected
        assert shortest_path_lengths_from(g, 0)[-1] >= 3

    def test_lollipop(self):
        g = gen.lollipop(5, 3)
        assert g.n == 8
        assert g.m == 10 + 3
        assert g.is_connected
        assert g.degree(7) == 1  # tail end


class TestStarBipartite:
    def test_star(self):
        g = gen.star_graph(6)
        assert g.degree(0) == 5
        assert g.is_bipartite

    def test_complete_bipartite(self):
        g = gen.complete_bipartite(3, 4)
        assert g.n == 7 and g.m == 12
        assert g.is_bipartite
        assert g.degrees.tolist() == [4] * 3 + [3] * 4


class TestHypercubeTorus:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_hypercube(self, dim):
        g = gen.hypercube(dim)
        assert g.n == 2**dim
        assert g.is_regular and g.regular_degree == dim
        assert g.is_bipartite
        assert diameter(g) == dim

    def test_torus(self):
        g = gen.torus_2d(4, 5)
        assert g.n == 20
        assert g.is_regular and g.regular_degree == 4
        assert g.is_connected

    def test_torus_min_size(self):
        with pytest.raises(GraphError):
            gen.torus_2d(2, 5)


class TestCirculantBtree:
    def test_circulant_degree(self):
        g = gen.circulant(10, [1, 2])
        assert g.is_regular and g.regular_degree == 4

    def test_circulant_rejects_zero_offset(self):
        with pytest.raises(GraphError):
            gen.circulant(8, [0])

    def test_binary_tree(self):
        g = gen.binary_tree(3)
        assert g.n == 15
        assert g.m == 14
        assert g.is_connected and g.is_bipartite


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (16, 4), (21, 4), (12, 5)])
    def test_regularity(self, n, d):
        g = gen.random_regular(n, d, seed=11)
        assert g.n == n
        assert g.is_regular and g.regular_degree == d
        assert g.is_connected

    def test_reproducible(self):
        a = gen.random_regular(16, 4, seed=5)
        b = gen.random_regular(16, 4, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = gen.random_regular(20, 4, seed=1)
        b = gen.random_regular(20, 4, seed=2)
        assert a != b

    def test_parity_rejected(self):
        with pytest.raises(GraphError):
            gen.random_regular(9, 3)

    def test_degree_too_big_rejected(self):
        with pytest.raises(GraphError):
            gen.random_regular(5, 5)


class TestMargulis:
    def test_structure(self):
        g = gen.margulis_expander(4)
        assert g.n == 16
        assert g.is_connected
        assert int(g.degrees.max()) <= 8

    def test_expansion(self):
        from repro.spectral import spectral_gap

        g = gen.margulis_expander(6)
        assert spectral_gap(g) > 0.05  # bounded away from 0


class TestExpanderChain:
    def test_structure(self):
        g = gen.clique_chain_of_expanders(3, 12, d=4, seed=3)
        assert g.n == 36
        assert g.is_connected

    def test_bridges(self):
        g = gen.clique_chain_of_expanders(3, 10, d=4, seed=3)
        assert g.has_edge(9, 10)
        assert g.has_edge(19, 20)

    def test_parity_autofix(self):
        # odd block with odd d must drop to an even-degree-sum config
        g = gen.clique_chain_of_expanders(2, 9, d=5, seed=1)
        assert g.is_connected
