"""Unit tests for the centralized local mixing time (Definition 2) and the
window oracle behind it."""

import itertools
import math

import numpy as np
import pytest

from repro.constants import DEFAULT_EPS
from repro.errors import BipartiteGraphError, ConvergenceError
from repro.graphs import generators as gen
from repro.walks import (
    best_uniform_deviation,
    distribution_at,
    find_witness_set,
    graph_local_mixing_time,
    local_mixing_time,
    mixing_time,
    set_l1_deviation,
    size_grid,
)
from repro.walks.local_mixing import UniformDeviationOracle, local_mixing_profile


class TestOracleBruteForce:
    """The sorted-window oracle must equal subset enumeration exactly."""

    def brute(self, p, R, src=None):
        idx = range(len(p))
        combos = itertools.combinations(idx, R)
        if src is not None:
            combos = (S for S in combos if src in S)
        return min(sum(abs(p[list(S)] - 1.0 / R)) for S in combos)

    @pytest.mark.parametrize("seed", range(6))
    def test_unconstrained(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        p = rng.random(n)
        p /= p.sum()
        oracle = UniformDeviationOracle(p)
        for R in range(1, n + 1):
            got, _ = oracle.best_sum(R)
            assert got == pytest.approx(self.brute(p, R), abs=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_require_source(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(4, 10))
        p = rng.random(n)
        p /= p.sum()
        src = int(rng.integers(n))
        oracle = UniformDeviationOracle(p, source=src)
        for R in range(1, n + 1):
            got, _ = oracle.best_sum(R, require_source=True)
            assert got == pytest.approx(self.brute(p, R, src), abs=1e-9)

    def test_with_ties(self):
        p = np.array([0.25, 0.25, 0.25, 0.25, 0.0, 0.0])
        oracle = UniformDeviationOracle(p, source=4)
        for R in range(1, 7):
            got, _ = oracle.best_sum(R)
            assert got == pytest.approx(self.brute(p, R), abs=1e-12)
            gots, _ = oracle.best_sum(R, require_source=True)
            assert gots == pytest.approx(self.brute(p, R, 4), abs=1e-12)

    def test_witness_achieves_sum(self):
        rng = np.random.default_rng(5)
        p = rng.random(9)
        p /= p.sum()
        oracle = UniformDeviationOracle(p, source=2)
        for R in (1, 3, 6, 9):
            for rs in (False, True):
                w = oracle.witness(R, require_source=rs)
                s, _ = oracle.best_sum(R, require_source=rs)
                assert len(w) == R
                assert len(set(w.tolist())) == R
                if rs:
                    assert 2 in w
                assert np.abs(p[w] - 1.0 / R).sum() == pytest.approx(s, abs=1e-9)

    def test_convenience_wrapper(self):
        p = np.array([0.5, 0.3, 0.2])
        assert best_uniform_deviation(p, 3) == pytest.approx(
            np.abs(p - 1 / 3).sum()
        )

    def test_r_out_of_range(self):
        oracle = UniformDeviationOracle(np.ones(3) / 3)
        with pytest.raises(ValueError):
            oracle.best_sum(0)
        with pytest.raises(ValueError):
            oracle.best_sum(4)

    def test_require_source_without_source(self):
        oracle = UniformDeviationOracle(np.ones(3) / 3)
        with pytest.raises(ValueError):
            oracle.best_sum(2, require_source=True)


class TestSizeGrid:
    def test_starts_at_ceil_n_over_beta(self):
        grid = size_grid(100, 4, 0.1)
        assert grid[0] == 25

    def test_ends_at_n(self):
        assert size_grid(100, 4, 0.1)[-1] == 100

    def test_geometric_growth(self):
        grid = size_grid(10000, 100, 0.5)
        ratios = [b / a for a, b in zip(grid, grid[1:-1])]
        assert all(r <= 1.5 + 0.02 for r in ratios)

    def test_beta_one_single_size(self):
        assert size_grid(50, 1, 0.1) == [50]

    def test_strictly_increasing_unique(self):
        grid = size_grid(37, 5, 0.046)
        assert grid == sorted(set(grid))

    def test_validation(self):
        with pytest.raises(ValueError):
            size_grid(10, 0.5, 0.1)
        with pytest.raises(ValueError):
            size_grid(10, 2, 0.0)


class TestLocalMixingTime:
    def test_barbell_local_is_constant(self, barbell_medium):
        res = local_mixing_time(barbell_medium, 0, beta=4)
        assert res.time <= 3
        assert res.set_size >= 16

    def test_barbell_gap_vs_global(self, barbell_medium):
        g = barbell_medium
        t_local = local_mixing_time(g, 0, beta=4).time
        t_mix = mixing_time(g, 0, DEFAULT_EPS)
        assert t_mix > 50 * t_local  # §2.3(d): the headline gap

    def test_beta_one_equals_mixing_time(self, nonbipartite_graph):
        """§2.2: τ_s(1, ε) = τ_s^mix(ε).

        The uniform target matches π only on regular graphs (the paper's §3
        assumption); for the near-regular barbell the degree-aware target is
        the faithful Definition 2 check (it reduces to ‖p_t − π‖₁ at R=n).
        """
        g = nonbipartite_graph
        target = "uniform" if g.is_regular else "degree"
        res = local_mixing_time(g, 0, beta=1, target=target)
        assert res.time == mixing_time(g, 0, DEFAULT_EPS)

    def test_local_le_mixing(self, nonbipartite_graph):
        g = nonbipartite_graph
        target = "uniform" if g.is_regular else "degree"
        for beta in (1, 2, 4):
            assert (
                local_mixing_time(g, 0, beta=beta, target=target).time
                <= mixing_time(g, 0, DEFAULT_EPS)
            )

    def test_uniform_target_needs_regularity_headroom(self, barbell_small):
        """On the k=5 barbell the degree-inhomogeneity term
        Σ|d(v)/µ(S) − 1/|S|| ≈ 0.08 exceeds ε = 1/(8e) ≈ 0.046, so the
        paper's uniform check can never fire from an interior source — a
        concrete witness that the §3 regularity assumption is load-bearing.
        """
        with pytest.raises(ConvergenceError):
            local_mixing_time(barbell_small, 0, beta=3, t_max=3000)
        # With ε above the inhomogeneity term it fires immediately.
        res = local_mixing_time(barbell_small, 0, beta=3, eps=0.15)
        assert res.time <= 4

    def test_beta_monotonicity(self, barbell_medium):
        """§2.3: β₁ ≥ β₂ ⇒ τ_s(β₁) ≤ τ_s(β₂)."""
        g = barbell_medium
        times = [
            local_mixing_time(g, 0, beta=b).time for b in (1, 2, 4)
        ]
        assert times[2] <= times[1] <= times[0]

    def test_witness_satisfies_definition(self, barbell_medium):
        g = barbell_medium
        res, witness = find_witness_set(g, 0, beta=4)
        assert len(witness) == res.set_size
        p = distribution_at(g, 0, res.time)
        # uniform-target deviation below threshold by construction
        assert np.abs(p[witness] - 1 / res.set_size).sum() < res.threshold

    def test_complete_graph(self):
        g = gen.complete_graph(64)
        assert local_mixing_time(g, 0, beta=2).time == 1

    def test_grid_vs_all_sizes(self, barbell_medium):
        g = barbell_medium
        t_all = local_mixing_time(g, 0, beta=4, sizes="all").time
        t_grid = local_mixing_time(g, 0, beta=4, sizes="grid").time
        # the grid checks fewer sizes, so it can only stop later-or-equal
        assert t_grid >= t_all

    def test_explicit_sizes(self, barbell_medium):
        res = local_mixing_time(barbell_medium, 0, beta=4, sizes=[16, 32])
        assert res.set_size in (16, 32)

    def test_doubling_schedule_within_2x(self, barbell_medium):
        g = barbell_medium
        exact = local_mixing_time(g, 0, beta=4, t_schedule="all").time
        doubled = local_mixing_time(g, 0, beta=4, t_schedule="doubling").time
        assert doubled <= max(2 * exact, 1)

    def test_require_source(self, barbell_medium):
        g = barbell_medium
        res = local_mixing_time(g, 0, beta=4, require_source=True)
        assert res.time <= 3  # source's own clique is the witness

    def test_degree_target_regular_matches_uniform(self, expander16):
        g = expander16
        a = local_mixing_time(g, 0, beta=2, target="uniform").time
        b = local_mixing_time(g, 0, beta=2, target="degree").time
        assert a == b

    def test_validation(self, cycle9):
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 0, beta=0.5)
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 0, beta=2, eps=0)
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 99, beta=2)
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 0, beta=2, sizes="bogus")
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 0, beta=2, sizes=[0, 99])
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 0, beta=2, t_schedule="fibonacci")
        with pytest.raises(ValueError):
            local_mixing_time(cycle9, 0, beta=2, target="entropy")

    def test_bipartite_needs_lazy(self, path8):
        with pytest.raises(BipartiteGraphError):
            local_mixing_time(path8, 0, beta=2)
        # Small irregular path: use an ε above the endpoint-degree
        # inhomogeneity so the lazy walk's check can fire.
        assert local_mixing_time(path8, 0, beta=2, eps=0.3, lazy=True).time > 0

    def test_t_max_exhaustion(self, barbell_medium):
        with pytest.raises(ConvergenceError):
            local_mixing_time(
                barbell_medium, 0, beta=1, eps=1e-9, t_max=5
            )

    def test_result_metadata(self, barbell_medium):
        res = local_mixing_time(barbell_medium, 0, beta=4)
        assert res.deviation < res.threshold
        assert res.steps_checked >= 1
        assert res.sizes_checked >= res.steps_checked


class TestGraphLocalMixing:
    # ε = 0.15 clears the k=5 barbell's degree-inhomogeneity floor (see
    # test_uniform_target_needs_regularity_headroom).
    def test_max_over_sources(self, barbell_small):
        g = barbell_small
        full = graph_local_mixing_time(g, beta=3, eps=0.15)
        per = max(
            local_mixing_time(g, s, beta=3, eps=0.15).time for s in range(g.n)
        )
        assert full == per

    def test_sampled_sources(self, barbell_small):
        g = barbell_small
        sampled = graph_local_mixing_time(g, beta=3, eps=0.15, sources=[0, 7])
        assert sampled <= graph_local_mixing_time(g, beta=3, eps=0.15)


class TestNonMonotoneProfile:
    def test_profile_non_monotone_on_barbell(self, barbell_medium):
        """§3 remark: the best local deviation is not monotone in t, which
        is why Algorithm 2 cannot binary-search the length."""
        prof = local_mixing_profile(
            barbell_medium, 0, beta=4, sizes="grid", t_max=40
        )
        diffs = np.diff(prof)
        assert (diffs > 1e-9).any(), "expected at least one increase"

    def test_profile_hits_threshold_at_local_mixing_time(self, barbell_medium):
        g = barbell_medium
        res = local_mixing_time(g, 0, beta=4, sizes="grid")
        prof = local_mixing_profile(g, 0, beta=4, sizes="grid", t_max=res.time)
        assert prof[res.time] < DEFAULT_EPS
        assert (prof[: res.time] >= DEFAULT_EPS).all()


class TestProfileBatched:
    """local_mixing_profile now rides the batched engine (single column);
    require_source keeps the per-source path."""

    def test_profile_bitwise_matches_trajectory_loop(self):
        from repro.walks.distribution import distribution_trajectory
        from repro.walks.local_mixing import _candidate_sizes
        from repro.constants import DEFAULT_EPS

        g = gen.beta_barbell(3, 6)
        prof = local_mixing_profile(g, 2, beta=3, t_max=20)
        cand = _candidate_sizes(g.n, 3, "all", DEFAULT_EPS)
        ref = np.empty(21)
        for t, p in distribution_trajectory(g, 2, t_max=20):
            oracle = UniformDeviationOracle(p, source=2)
            ref[t] = min(oracle.best_sum(R)[0] for R in cand)
        assert np.array_equal(prof, ref)

    def test_require_source_path_still_constrained(self):
        g = gen.beta_barbell(3, 6)
        free = local_mixing_profile(g, 0, beta=3, t_max=15)
        constrained = local_mixing_profile(
            g, 0, beta=3, t_max=15, require_source=True
        )
        assert constrained.shape == free.shape
        # The constraint can only increase the best deviation.
        assert (constrained >= free - 1e-12).all()
