"""Shared fixtures: a zoo of small graphs with known properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as gen


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running soak/stress tests (deselect with -m 'not slow')",
    )


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def barbell_small():
    """β-barbell with β=3, cliques of 5 (n=15) — Figure 1 at toy scale."""
    return gen.beta_barbell(3, 5)


@pytest.fixture
def barbell_medium():
    """β-barbell with β=4, cliques of 16 (n=64)."""
    return gen.beta_barbell(4, 16)


@pytest.fixture
def cycle9():
    """Odd cycle (aperiodic simple walk), n=9."""
    return gen.cycle_graph(9)


@pytest.fixture
def complete8():
    return gen.complete_graph(8)


@pytest.fixture
def path8():
    """Path (bipartite — needs the lazy walk)."""
    return gen.path_graph(8)


@pytest.fixture
def expander16():
    """Random 4-regular graph, n=16, fixed seed."""
    return gen.random_regular(16, 4, seed=7)


@pytest.fixture(
    params=["barbell", "cycle", "complete", "expander"],
    ids=["barbell", "cycle9", "K8", "rr16"],
)
def nonbipartite_graph(request):
    """Parametrized zoo of small connected non-bipartite graphs."""
    return {
        "barbell": gen.beta_barbell(3, 5),
        "cycle": gen.cycle_graph(9),
        "complete": gen.complete_graph(8),
        "expander": gen.random_regular(16, 4, seed=7),
    }[request.param]
