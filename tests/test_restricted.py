"""Unit tests for restricted distributions (paper §2.2)."""

import math

import numpy as np
import pytest

from repro.constants import DEFAULT_EPS
from repro.graphs import generators as gen
from repro.walks import (
    distribution_at,
    restrict,
    restricted_stationary,
    set_l1_deviation,
    set_mixing_time,
)


class TestRestrict:
    def test_zeroes_outside(self):
        p = np.array([0.2, 0.3, 0.5])
        out = restrict(p, [0, 2])
        np.testing.assert_allclose(out, [0.2, 0.0, 0.5])

    def test_not_renormalized(self):
        p = np.array([0.25, 0.25, 0.5])
        assert restrict(p, [0]).sum() == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            restrict(np.ones(3) / 3, [])


class TestRestrictedStationary:
    def test_uniform_on_regular_subset(self, complete8):
        pi_s = restricted_stationary(complete8, [0, 1, 2])
        np.testing.assert_allclose(pi_s[[0, 1, 2]], 1 / 3)
        assert pi_s[3:].sum() == 0

    def test_degree_weighted(self, barbell_small):
        g = barbell_small
        sub = [3, 4, 5]  # includes bridge endpoints with higher degree
        pi_s = restricted_stationary(g, sub)
        deg = g.degrees[sub]
        np.testing.assert_allclose(pi_s[sub], deg / deg.sum())

    def test_sums_to_one(self, cycle9):
        assert restricted_stationary(cycle9, [1, 4, 7]).sum() == pytest.approx(1.0)

    def test_full_set_equals_global_stationary(self, barbell_small):
        from repro.spectral import stationary_distribution

        np.testing.assert_allclose(
            restricted_stationary(barbell_small, range(15)),
            stationary_distribution(barbell_small),
        )


class TestSetDeviation:
    def test_definition(self, barbell_small):
        g = barbell_small
        p = distribution_at(g, 0, 3)
        sub = list(range(5))
        manual = np.abs(
            p[sub] - g.degrees[sub] / g.degrees[sub].sum()
        ).sum()
        assert set_l1_deviation(g, p, sub) == pytest.approx(manual)

    def test_zero_when_exactly_stationary(self, complete8):
        pi_s = restricted_stationary(complete8, [0, 1, 2, 3])
        assert set_l1_deviation(complete8, pi_s, [0, 1, 2, 3]) == pytest.approx(0)


class TestSetMixingTime:
    def test_home_clique_mixes_fast(self, barbell_medium):
        g = barbell_medium
        t = set_mixing_time(g, 0, range(16), DEFAULT_EPS)
        assert t <= 3

    def test_full_set_equals_global(self, barbell_small):
        from repro.walks import mixing_time

        g = barbell_small
        t_set = set_mixing_time(g, 0, range(g.n), DEFAULT_EPS)
        assert t_set == mixing_time(g, 0, DEFAULT_EPS)

    def test_never_mixing_set_returns_inf(self, barbell_medium):
        # Half of the source's home clique: the walk spreads over the whole
        # clique, so a strict half never holds ≈ all the mass.
        g = barbell_medium
        t = set_mixing_time(g, 0, range(8), DEFAULT_EPS, t_max=2000)
        assert t == math.inf

    def test_source_must_be_in_set(self, cycle9):
        with pytest.raises(ValueError):
            set_mixing_time(cycle9, 0, [1, 2, 3], 0.1)

    def test_eps_validation(self, cycle9):
        with pytest.raises(ValueError):
            set_mixing_time(cycle9, 0, [0, 1], 1.5)

    def test_non_monotone_possible(self, barbell_medium):
        """The §3 remark: ‖p_t↾S − π_S‖₁ is NOT monotone in t.

        On the barbell, the home clique's restricted deviation first drops
        (local mixing) then RISES as mass leaks across the bridge toward
        global equilibrium (the clique ends up with ~1/β of the mass but
        π_S wants all of it).
        """
        g = barbell_medium
        sub = np.arange(16)
        vol = g.degrees[sub].sum()
        target = g.degrees[sub] / vol
        devs = []
        from repro.walks import distribution_trajectory

        for t, p in distribution_trajectory(g, 0, t_max=800):
            devs.append(np.abs(p[sub] - target).sum())
        devs = np.array(devs)
        t_min = int(devs.argmin())
        assert devs[t_min] < DEFAULT_EPS        # it locally mixes...
        assert devs[-1] > devs[t_min] + 0.25    # ...then deviates again
