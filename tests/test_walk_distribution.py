"""Unit tests for repro.walks.distribution (exact and spectral evolution)."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.spectral import stationary_distribution
from repro.walks import (
    SpectralPropagator,
    distribution_at,
    distribution_trajectory,
    initial_distribution,
    l1_distance,
)


class TestInitialDistribution:
    def test_one_hot(self):
        p = initial_distribution(5, 2)
        assert p.tolist() == [0, 0, 1, 0, 0]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            initial_distribution(5, 5)
        with pytest.raises(ValueError):
            initial_distribution(5, -1)


class TestDistributionAt:
    def test_t0_is_initial(self, barbell_small):
        p = distribution_at(barbell_small, 3, 0)
        np.testing.assert_array_equal(p, initial_distribution(15, 3))

    def test_one_step_uniform_over_neighbors(self, complete8):
        p = distribution_at(complete8, 0, 1)
        assert p[0] == 0
        np.testing.assert_allclose(p[1:], 1 / 7)

    def test_mass_conserved(self, nonbipartite_graph):
        for t in (1, 3, 10):
            p = distribution_at(nonbipartite_graph, 0, t)
            assert p.sum() == pytest.approx(1.0)
            assert (p >= -1e-15).all()

    def test_matches_matrix_power(self, cycle9):
        from repro.spectral import walk_operator

        A = walk_operator(cycle9).toarray()
        p_direct = np.linalg.matrix_power(A, 5) @ initial_distribution(9, 0)
        np.testing.assert_allclose(
            distribution_at(cycle9, 0, 5), p_direct, atol=1e-12
        )

    def test_negative_t_rejected(self, cycle9):
        with pytest.raises(ValueError):
            distribution_at(cycle9, 0, -1)

    def test_lazy_keeps_half_mass_locally_step1(self, cycle9):
        p = distribution_at(cycle9, 0, 1, lazy=True)
        assert p[0] == pytest.approx(0.5)

    def test_converges_to_stationary(self, barbell_small):
        pi = stationary_distribution(barbell_small)
        p = distribution_at(barbell_small, 0, 4000)
        assert l1_distance(p, pi) < 1e-3


class TestTrajectory:
    def test_yields_consecutive(self, cycle9):
        ts = [t for t, _ in zip(range(5), distribution_trajectory(cycle9, 0))]
        traj = distribution_trajectory(cycle9, 0, t_max=4)
        got = [(t, p.copy()) for t, p in traj]
        assert [t for t, _ in got] == [0, 1, 2, 3, 4]
        for t, p in got:
            np.testing.assert_allclose(p, distribution_at(cycle9, 0, t))

    def test_t_max_respected(self, cycle9):
        assert len(list(distribution_trajectory(cycle9, 0, t_max=7))) == 8


class TestSpectralPropagator:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_matches_iterative(self, nonbipartite_graph, lazy):
        g = nonbipartite_graph
        prop = SpectralPropagator(g, lazy=lazy)
        for t in (0, 1, 2, 7, 33):
            np.testing.assert_allclose(
                prop.from_source(0, t),
                distribution_at(g, 0, t, lazy=lazy),
                atol=1e-9,
            )

    def test_propagate_arbitrary_start(self, barbell_small):
        g = barbell_small
        prop = SpectralPropagator(g)
        p0 = np.full(g.n, 1.0 / g.n)
        from repro.spectral import walk_operator

        A = walk_operator(g)
        want = A @ (A @ p0)
        np.testing.assert_allclose(prop.propagate(p0, 2), want, atol=1e-10)

    def test_huge_t_returns_stationary(self, barbell_small):
        prop = SpectralPropagator(barbell_small)
        pi = stationary_distribution(barbell_small)
        np.testing.assert_allclose(
            prop.from_source(0, 10**9), pi, atol=1e-9
        )

    def test_negative_t_rejected(self, cycle9):
        prop = SpectralPropagator(cycle9)
        with pytest.raises(ValueError):
            prop.from_source(0, -1)
        with pytest.raises(ValueError):
            prop.propagate(initial_distribution(9, 0), -2)


class TestL1Distance:
    def test_zero_on_equal(self):
        p = np.array([0.5, 0.5])
        assert l1_distance(p, p) == 0.0

    def test_symmetry(self, rng):
        p, q = rng.random(6), rng.random(6)
        assert l1_distance(p, q) == pytest.approx(l1_distance(q, p))

    def test_known_value(self):
        assert l1_distance([1, 0], [0, 1]) == pytest.approx(2.0)
