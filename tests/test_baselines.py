"""Baseline estimators: MP'17 token walks, Das Sarma sampling (grey area),
Kempe–McSherry spectral."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    mixing_time_dassarma,
    mixing_time_mp,
    spectral_mixing_kempe,
)
from repro.congest import CongestNetwork
from repro.constants import DEFAULT_EPS
from repro.errors import BipartiteGraphError
from repro.graphs import generators as gen
from repro.spectral import second_eigenvalue
from repro.walks import mixing_time


class TestMP:
    def test_estimate_within_2x_band(self):
        g = gen.beta_barbell(3, 6)
        true = mixing_time(g, 0, DEFAULT_EPS)
        net = CongestNetwork(g)
        est = mixing_time_mp(net, 0, seed=1)
        # doubling + sampling noise: the estimate is a power of two within
        # a factor ~2 of the truth (whp; fixed seed keeps it deterministic)
        assert true / 2 <= est.time <= 4 * true

    def test_rounds_sum_of_lengths(self):
        g = gen.complete_graph(16)
        net = CongestNetwork(g)
        est = mixing_time_mp(net, 0, seed=2)
        assert est.rounds == sum(ell for ell, _ in est.history)
        assert net.ledger.phase_rounds("mp-walks") == est.rounds

    def test_history_distances_decrease_overall(self):
        g = gen.beta_barbell(3, 6)
        est = mixing_time_mp(CongestNetwork(g), 0, seed=3)
        dists = [d for _, d in est.history]
        assert dists[-1] < DEFAULT_EPS
        assert dists[-1] <= dists[0]

    def test_custom_walk_budget(self):
        g = gen.complete_graph(16)
        est = mixing_time_mp(CongestNetwork(g), 0, walks=50_000, seed=4)
        assert est.walks == 50_000

    def test_bipartite_rejected(self):
        g = gen.path_graph(8)
        with pytest.raises(BipartiteGraphError):
            mixing_time_mp(CongestNetwork(g), 0)

    def test_lazy_on_bipartite(self):
        g = gen.path_graph(8)
        est = mixing_time_mp(CongestNetwork(g), 0, seed=5, lazy=True)
        assert est.time >= 8  # lazy path mixes slowly

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            mixing_time_mp(CongestNetwork(gen.cycle_graph(9)), 0, eps=0)


class TestDasSarma:
    def test_estimate_in_published_band(self):
        """The JACM'13 guarantee the paper quotes: the estimate lands
        between τ(1/2e) and τ(O(1/(√n log n))) — checked (with doubling
        slack) over several seeds on the n=64 barbell."""
        g = gen.beta_barbell(4, 16)
        eps = 1 / (2 * math.e)
        lo = mixing_time(g, 0, eps)
        hi = mixing_time(g, 0, 1.0 / (math.sqrt(g.n) * math.log(g.n)))
        for seed in range(5):
            est = mixing_time_dassarma(g, 0, seed=seed)
            assert lo / 2 <= est.time <= 2 * hi

    def test_grey_area_overshoots_l1_target(self):
        """The documented inaccuracy: the collision test cannot resolve the
        ε-L1 threshold — on the bottlenecked barbell it keeps running past
        the true τ(1/2e) (toward the far smaller-ε mixing time)."""
        g = gen.beta_barbell(4, 16)
        true = mixing_time(g, 0, 1 / (2 * math.e))
        estimates = {
            mixing_time_dassarma(g, 0, seed=s).time for s in range(5)
        }
        assert max(estimates) > true

    def test_round_model_formula(self):
        g = gen.complete_graph(16)
        est = mixing_time_dassarma(g, 0, seed=8, diameter=1)
        per_phase = math.ceil(math.sqrt(16)) + math.ceil(16**0.25 * 1)
        assert est.rounds_model >= per_phase

    def test_sample_budget_control(self):
        g = gen.complete_graph(16)
        est = mixing_time_dassarma(g, 0, samples=64, seed=9)
        assert est.samples == 64

    def test_validation(self):
        g = gen.complete_graph(8)
        with pytest.raises(ValueError):
            mixing_time_dassarma(g, 0, eps=1.5)
        with pytest.raises(ValueError):
            mixing_time_dassarma(g, 0, samples=1)
        with pytest.raises(BipartiteGraphError):
            mixing_time_dassarma(gen.path_graph(6), 0)


class TestKempe:
    def test_lambda2_accurate(self):
        g = gen.beta_barbell(3, 6)
        est = spectral_mixing_kempe(g, DEFAULT_EPS, seed=10)
        assert est.lam2 == pytest.approx(second_eigenvalue(g), abs=1e-4)

    def test_envelope_contains_true_mixing(self):
        g = gen.beta_barbell(3, 6)
        true = mixing_time(g, 0, DEFAULT_EPS)
        est = spectral_mixing_kempe(g, DEFAULT_EPS, seed=11)
        assert est.mixing_lower / 4 - 2 <= true <= 4 * est.mixing_upper + 2

    def test_rounds_model_scales_with_iterations(self):
        g = gen.complete_graph(16)
        est = spectral_mixing_kempe(g, DEFAULT_EPS, seed=12)
        assert est.rounds_model == est.iterations * (1 + math.ceil(math.log2(16)))

    def test_expander_fast(self):
        g = gen.random_regular(32, 6, seed=13)
        est = spectral_mixing_kempe(g, DEFAULT_EPS, seed=13)
        assert est.lam2 < 0.95
        assert est.mixing_upper < 150  # polylog-scale, not poly(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            spectral_mixing_kempe(gen.complete_graph(8), 0.0)
