"""Tests for the async serving subsystem (repro.service).

The load-bearing property is the serving-equivalence guarantee: every
answer the service produces — under any coalescing batch composition,
cache state, in-flight deduplication, executor configuration and client
concurrency — is **bitwise identical** (``LocalMixingResult`` equality:
time, set size, bitwise deviation, threshold, both counters) to the
direct :func:`batched_local_mixing_times` call for that
``(graph, source, knobs)`` triple.  On top sit the subsystem's own
contracts: canonical knob keys, cache/coalescer/dedup counters, dynamic
invalidation touching only dirty sources, and leak-free shutdown.

No pytest-asyncio in the image — each test drives its own event loop via
``asyncio.run``.
"""

import asyncio
import threading
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    barbell_bridge_schedule,
    edit_distance_bounds,
)
from repro.engine import (
    batched_local_mixing_times,
    canonical_times_key,
    shared_spectral_propagator,
)
from repro.errors import ConvergenceError
from repro.graphs import generators as gen
from repro.service import (
    GraphRegistry,
    MixingQuery,
    MixingService,
    QueryCoalescer,
    ResultCache,
)

BETA = 4.0
EPS = 0.25
T_MAX = 3000


@pytest.fixture(scope="module")
def expander():
    return gen.random_regular(24, 4, seed=7)


@pytest.fixture(scope="module")
def expander_direct(expander):
    return batched_local_mixing_times(expander, BETA, EPS)


def queries(graph_ref, sources, **overrides):
    kw = dict(beta=BETA, eps=EPS)
    kw.update(overrides)
    return [MixingQuery(graph_ref, s, **kw) for s in sources]


# --------------------------------------------------------------------- #
# Canonical knob keys (the engine head)
# --------------------------------------------------------------------- #


class TestCanonicalKey:
    def test_equivalent_spellings_share_a_key(self, expander):
        n = expander.n
        base = canonical_times_key(expander, BETA, EPS)
        explicit_sizes = list(range(int(np.ceil(n / BETA)), n + 1))
        assert canonical_times_key(expander, BETA, EPS, sizes=explicit_sizes) == base
        assert canonical_times_key(expander, BETA, EPS, grid_factor=EPS) == base
        # Execution-only knobs never enter the key.
        assert canonical_times_key(expander, BETA, EPS, batch_size=3) == base
        assert (
            canonical_times_key(expander, BETA, EPS, prefilter="per_size")
            == base
        )
        # threshold_factor folds into the threshold exactly like a larger
        # eps with rescaled grid would.
        assert base.threshold == EPS

    def test_semantic_knobs_split_keys(self, expander):
        base = canonical_times_key(expander, BETA, EPS)
        assert canonical_times_key(expander, BETA, EPS, lazy=True) != base
        assert (
            canonical_times_key(expander, BETA, EPS, require_source=True)
            != base
        )
        assert canonical_times_key(expander, BETA, 0.3) != base
        assert (
            canonical_times_key(expander, BETA, EPS, t_schedule="doubling")
            != base
        )

    def test_validation_is_fail_fast(self, expander):
        with pytest.raises(ValueError):
            canonical_times_key(expander, BETA, 1.5)
        with pytest.raises(ValueError):
            canonical_times_key(expander, 0.5, EPS)
        with pytest.raises(ValueError):
            canonical_times_key(expander, BETA, EPS, prefilter="nope")
        with pytest.raises(ValueError):
            canonical_times_key(expander, BETA, EPS, batch_size=0)


# --------------------------------------------------------------------- #
# Serving equivalence under concurrency
# --------------------------------------------------------------------- #


class TestServingEquivalence:
    @pytest.mark.parametrize("n_clients", [1, 8, 64])
    def test_concurrent_clients_bitwise_equal(
        self, expander, expander_direct, n_clients
    ):
        """N concurrent clients (wrapping around the sources) get exactly
        the per-source answers of the direct engine call."""
        srcs = [i % expander.n for i in range(n_clients)]

        async def main():
            async with MixingService(window=0.001, max_batch=16) as svc:
                return await svc.submit_many(queries(expander, srcs))

        res = asyncio.run(main())
        assert res == [expander_direct[s] for s in srcs]

    @pytest.mark.parametrize("max_batch", [1, 5, 64])
    def test_batch_composition_is_invisible(
        self, expander, expander_direct, max_batch
    ):
        """Any max_batch (1 = per-query dispatch) serves identical results."""

        async def main():
            async with MixingService(window=0.0, max_batch=max_batch) as svc:
                return await svc.submit_many(
                    queries(expander, range(expander.n))
                )

        assert asyncio.run(main()) == expander_direct

    def test_mixed_knob_spellings_coalesce_and_agree(self, expander):
        """Queries spelled differently but canonically equal are answered
        in one batch, each bitwise equal to its own direct call."""
        n = expander.n
        explicit = list(range(int(np.ceil(n / BETA)), n + 1))

        async def main():
            async with MixingService(window=0.001, max_batch=64) as svc:
                plain = svc.submit_many(queries(expander, range(0, n, 2)))
                spelled = svc.submit_many(
                    queries(
                        expander,
                        range(1, n, 2),
                        sizes=explicit,
                        grid_factor=EPS,
                        batch_size=7,
                    )
                )
                r_plain, r_spelled = await asyncio.gather(plain, spelled)
                return r_plain, r_spelled, svc.stats()

        r_plain, r_spelled, stats = asyncio.run(main())
        direct = batched_local_mixing_times(expander, BETA, EPS)
        assert r_plain == [direct[s] for s in range(0, n, 2)]
        assert r_spelled == [direct[s] for s in range(1, n, 2)]
        assert stats["coalescer"]["queries"] == n

    def test_full_knob_matrix_equivalence(self, expander):
        """Serving covers the engine's whole knob space untouched."""
        combos = [
            dict(require_source=True),
            dict(target="degree"),
            dict(t_schedule="doubling", t_max=T_MAX),
            dict(lazy=True),
            dict(threshold_factor=1.5),
            dict(prefilter="per_size", batch_size=5),
        ]
        for knobs in combos:
            direct = batched_local_mixing_times(expander, BETA, EPS, **{
                k: v for k, v in knobs.items()
            })

            async def main():
                async with MixingService(window=0.001) as svc:
                    return await svc.submit_many(
                        queries(expander, range(expander.n), **knobs)
                    )

            assert asyncio.run(main()) == direct, f"knobs {knobs} diverged"

    def test_engine_errors_propagate_to_every_waiter(self, expander):
        async def main():
            async with MixingService(window=0.001) as svc:
                results = await asyncio.gather(
                    *(
                        svc.submit(q)
                        for q in queries(
                            expander, range(6), eps=0.01, t_max=1
                        )
                    ),
                    return_exceptions=True,
                )
                return results

        results = asyncio.run(main())
        assert len(results) == 6
        assert all(isinstance(r, ConvergenceError) for r in results)

    def test_invalid_queries_fail_fast(self, expander):
        async def bad_source():
            async with MixingService() as svc:
                await svc.submit(MixingQuery(expander, expander.n, beta=BETA))

        async def bad_knob():
            async with MixingService() as svc:
                await svc.submit(
                    MixingQuery(expander, 0, beta=BETA, eps=EPS, target="nope")
                )

        with pytest.raises(ValueError):
            asyncio.run(bad_source())
        with pytest.raises(ValueError):
            asyncio.run(bad_knob())


# --------------------------------------------------------------------- #
# Cache, in-flight dedup and coalescer counters
# --------------------------------------------------------------------- #


class TestCountersAndDedup:
    def test_cache_hit_miss_counters(self, expander, expander_direct):
        async def main():
            async with MixingService(window=0.0) as svc:
                first = await svc.submit_many(
                    queries(expander, range(expander.n))
                )
                mid = svc.stats()["cache"]
                second = await svc.submit_many(
                    queries(expander, range(expander.n))
                )
                return first, mid, second, svc.stats()

        first, mid, second, final = asyncio.run(main())
        assert first == expander_direct and second == expander_direct
        assert mid["misses"] == expander.n and mid["hits"] == 0
        assert final["cache"]["hits"] == expander.n
        assert final["cache"]["misses"] == expander.n  # none added in round 2
        # Round 2 never touched the engine.
        assert final["coalescer"]["queries"] == expander.n

    def test_inflight_dedup_single_solve(self, expander, expander_direct):
        """A thundering herd on one source is served by one computation."""

        async def main():
            async with MixingService(window=0.005, max_batch=64) as svc:
                herd = await asyncio.gather(
                    *(svc.submit(q) for q in queries(expander, [3] * 40))
                )
                return herd, svc.stats()

        herd, stats = asyncio.run(main())
        assert all(r == expander_direct[3] for r in herd)
        assert stats["cache"]["inflight_hits"] == 39
        assert stats["coalescer"]["queries"] == 1
        assert stats["coalescer"]["batches"] == 1

    def test_size_trigger_flushes_immediately(self, expander, expander_direct):
        async def main():
            # Window far too long to fire in-test: only the size trigger
            # (and the shutdown drain for the remainder) flushes.
            async with MixingService(window=30.0, max_batch=8) as svc:
                res = await svc.submit_many(
                    queries(expander, range(expander.n))
                )
                stats = svc.stats()
                return res, stats

        res, stats = asyncio.run(main())
        assert res == expander_direct
        assert stats["coalescer"]["size_flushes"] == expander.n // 8
        assert stats["coalescer"]["largest_batch"] == 8

    def test_drain_answers_pending_window(self, expander, expander_direct):
        """Shutdown must drain, not drop: queries still waiting in an
        unexpired window are solved during aclose()."""

        async def main():
            svc = MixingService(window=30.0, max_batch=64)
            pending = [
                asyncio.ensure_future(svc.submit(q))
                for q in queries(expander, range(6))
            ]
            await asyncio.sleep(0)  # let submits reach the coalescer
            await svc.aclose()
            res = await asyncio.gather(*pending)
            return res, svc.stats()

        res, stats = asyncio.run(main())
        assert res == [expander_direct[s] for s in range(6)]
        assert stats["coalescer"]["drain_flushes"] == 1

    def test_carry_forward_matches_structural_equals(self, expander):
        """Entries inserted under a distinct-but-equal Graph object carry
        forward too — the cache key contract is structural, not identity."""
        import numpy as np
        from repro.graphs.base import Graph

        twin = Graph.from_csr(expander.indptr, expander.indices)
        assert twin == expander and twin is not expander
        cache = ResultCache()
        key = canonical_times_key(expander, BETA, EPS)
        result = batched_local_mixing_times(
            expander, BETA, EPS, sources=[0]
        )[0]
        cache.put(twin, 0, key, result)  # stored under the twin object
        target = gen.random_regular(24, 4, seed=8)
        dmin = np.full(expander.n, result.time, dtype=np.int64)
        carried = cache.carry_forward(
            expander, target, dmin, degrees_equal=True
        )
        assert carried == 1
        assert cache.get(target, 0, key) == result

    def test_registry_tracking_is_bounded(self):
        reg = GraphRegistry(max_tracked=2)
        dyns = [
            DynamicGraph(gen.random_regular(10, 4, seed=s)) for s in range(4)
        ]
        for d in dyns:
            reg.resolve(d)
        assert reg.stats()["tracked"] == 2
        with pytest.raises(ValueError):
            GraphRegistry(max_tracked=0)

    def test_result_cache_lru_eviction(self, expander):
        cache = ResultCache(maxsize=2)
        key = canonical_times_key(expander, BETA, EPS)
        cache.put(expander, 0, key, "r0")
        cache.put(expander, 1, key, "r1")
        assert cache.get(expander, 0, key) == "r0"  # refresh 0
        cache.put(expander, 2, key, "r2")  # evicts 1
        assert cache.get(expander, 1, key) is None
        assert cache.get(expander, 0, key) == "r0"
        st = cache.stats()
        assert st["evictions"] == 1 and st["size"] == 2
        assert ResultCache(0).stats()["maxsize"] == 0
        with pytest.raises(ValueError):
            ResultCache(-1)


# --------------------------------------------------------------------- #
# Dynamic graphs: registry, carry-forward, dirty sources only
# --------------------------------------------------------------------- #


class TestDynamicServing:
    def _bridge_setup(self):
        base, updates = barbell_bridge_schedule(4, 12, cycles=2, hold=0, seed=5)
        return DynamicGraph(base), updates

    def test_registry_resolves_and_guards(self, expander):
        reg = GraphRegistry()
        reg.register("x", expander)
        assert reg.resolve("x") is expander
        assert reg.resolve(expander) is expander
        with pytest.raises(KeyError):
            reg.resolve("missing")
        with pytest.raises(ValueError):
            reg.register("x", gen.cycle_graph(5))
        reg.register("x", expander)  # same object is fine
        with pytest.raises(TypeError):
            reg.resolve(42)
        reg.unregister("x")
        assert reg.names() == []

    def test_mutation_invalidates_only_dirty_sources(self):
        """After a bridge event, exactly the sources whose τ-radius the
        edit penetrates miss; every clean source is served from the
        carried-forward cache."""
        dyn, updates = self._bridge_setup()
        n = dyn.n
        kw = dict(beta=3.0, eps=0.4, t_max=T_MAX)

        async def main():
            async with MixingService(window=0.0) as svc:
                svc.registry.register("bb", dyn)
                r1 = await svc.submit_many(
                    [MixingQuery("bb", s, **kw) for s in range(n)]
                )
                pre = svc.stats()["cache"]
                prev_g = dyn.snapshot()
                dyn.apply(updates[0])
                new_g = dyn.snapshot()
                r2 = await svc.submit_many(
                    [MixingQuery("bb", s, **kw) for s in range(n)]
                )
                return r1, r2, pre, svc.stats(), prev_g, new_g

        r1, r2, pre, post, prev_g, new_g = asyncio.run(main())
        # Exactness after the event, with a warm (carried) cache.
        direct = batched_local_mixing_times(new_g, 3.0, 0.4, t_max=T_MAX)
        assert r2 == direct
        # The clean set is exactly the locality-pruning keep set.
        dmin = edit_distance_bounds(prev_g, new_g)
        clean = [s for s in range(n) if r1[s].time <= dmin[s]]
        assert clean, "bridge surgery should leave some clique sources clean"
        assert post["cache"]["carried_forward"] == len(clean)
        assert post["cache"]["hits"] - pre["hits"] == len(clean)
        assert post["cache"]["misses"] - pre["misses"] == n - len(clean)
        # Carried answers really are the exact new-snapshot answers.
        for s in clean:
            assert r2[s] == direct[s] == r1[s]

    def test_structural_round_trip_hits_without_carry(self):
        """remove+add round trip returns the same snapshot object, so the
        second query round is pure cache hits — no change event at all."""
        dyn, _ = self._bridge_setup()
        n = dyn.n
        kw = dict(beta=3.0, eps=0.4, t_max=T_MAX)
        e = next(iter(dyn.edges()))

        async def main():
            async with MixingService(window=0.0) as svc:
                svc.registry.register("bb", dyn)
                r1 = await svc.submit_many(
                    [MixingQuery("bb", s, **kw) for s in range(n)]
                )
                dyn.remove_edge(*e)
                dyn.add_edge(*e)
                r2 = await svc.submit_many(
                    [MixingQuery("bb", s, **kw) for s in range(n)]
                )
                return r1, r2, svc.stats()

        r1, r2, stats = asyncio.run(main())
        assert r1 == r2
        assert stats["cache"]["hits"] == len(r1)
        assert stats["registry"]["changes"] == 0
        assert stats["cache"]["carried_forward"] == 0

    def test_degree_target_entries_not_carried_across_degree_change(self):
        """A degree-vector change disqualifies degree-target entries from
        carry-forward (the tracker's soundness guard) while uniform-target
        entries still ride locality pruning."""
        dyn, updates = self._bridge_setup()
        n = dyn.n
        kw_u = dict(beta=3.0, eps=0.4, t_max=T_MAX)
        kw_d = dict(beta=3.0, eps=0.4, t_max=T_MAX, target="degree")

        async def main():
            async with MixingService(window=0.0) as svc:
                svc.registry.register("bb", dyn)
                await svc.submit_many(
                    [MixingQuery("bb", s, **kw_u) for s in range(n)]
                )
                await svc.submit_many(
                    [MixingQuery("bb", s, **kw_d) for s in range(n)]
                )
                prev_g = dyn.snapshot()
                dyn.apply(updates[0])  # bridge add/remove changes degrees
                new_g = dyn.snapshot()
                r_u = await svc.submit_many(
                    [MixingQuery("bb", s, **kw_u) for s in range(n)]
                )
                r_d = await svc.submit_many(
                    [MixingQuery("bb", s, **kw_d) for s in range(n)]
                )
                # The carry-forward fires on the first resolve after the
                # mutation (inside the r_u round).
                carried = svc.stats()["cache"]["carried_forward"]
                return prev_g, new_g, carried, r_u, r_d

        prev_g, new_g, carried, r_u, r_d = asyncio.run(main())
        assert not np.array_equal(prev_g.degrees, new_g.degrees)
        # Carried entries exist (uniform) but none of them is degree-target:
        # re-check by counting the uniform clean set only.
        dmin = edit_distance_bounds(prev_g, new_g)
        direct_prev_u = batched_local_mixing_times(prev_g, 3.0, 0.4, t_max=T_MAX)
        clean_u = sum(direct_prev_u[s].time <= dmin[s] for s in range(n))
        assert carried == clean_u
        # And both targets remain exact on the new snapshot.
        assert r_u == batched_local_mixing_times(new_g, 3.0, 0.4, t_max=T_MAX)
        assert r_d == batched_local_mixing_times(
            new_g, 3.0, 0.4, t_max=T_MAX, target="degree"
        )

    def test_node_churn_is_served_exactly(self):
        """n-changing events (no carry-forward possible) still serve
        exact answers and are counted as n_changes."""
        dyn = DynamicGraph(gen.random_regular(16, 4, seed=3))
        kw = dict(beta=BETA, eps=0.4, t_max=T_MAX)

        async def main():
            async with MixingService(window=0.0) as svc:
                svc.registry.register("churn", dyn)
                await svc.submit_many(
                    [MixingQuery("churn", s, **kw) for s in range(dyn.n)]
                )
                dyn.add_node(neighbors=[0, 1, 2])
                res = await svc.submit_many(
                    [MixingQuery("churn", s, **kw) for s in range(dyn.n)]
                )
                return res, dyn.snapshot(), svc.stats()

        res, snap, stats = asyncio.run(main())
        assert res == batched_local_mixing_times(snap, BETA, 0.4, t_max=T_MAX)
        assert stats["registry"]["n_changes"] == 1
        assert stats["cache"]["carried_forward"] == 0

    def test_direct_dynamic_graph_is_tracked(self):
        """Passing the DynamicGraph object (no name) gets the same change
        tracking as a registered one."""
        dyn, updates = self._bridge_setup()
        kw = dict(beta=3.0, eps=0.4, t_max=T_MAX)
        n = dyn.n

        async def main():
            async with MixingService(window=0.0) as svc:
                await svc.submit_many(
                    [MixingQuery(dyn, s, **kw) for s in range(n)]
                )
                dyn.apply(updates[0])
                await svc.submit_many(
                    [MixingQuery(dyn, s, **kw) for s in range(n)]
                )
                return svc.stats()

        stats = asyncio.run(main())
        assert stats["registry"]["changes"] == 1
        assert stats["cache"]["carried_forward"] > 0


# --------------------------------------------------------------------- #
# Executor integration + clean shutdown
# --------------------------------------------------------------------- #


class TestExecutorAndShutdown:
    def test_sharded_serving_identical(self, expander, expander_direct):
        async def main():
            async with MixingService(window=0.001, n_workers=2) as svc:
                res = await svc.submit_many(
                    queries(expander, range(expander.n))
                )
                return res, svc.stats()

        res, stats = asyncio.run(main())
        assert res == expander_direct
        ex = stats["executor"]
        assert ex["calls"] >= 1 and ex["items_processed"] >= expander.n
        assert sum(ex["per_worker_solves"].values()) == ex["tasks_dispatched"]

    def test_concurrent_groups_share_one_executor(self, expander):
        """Two graphs' batches flushing concurrently drive the shared pool
        from two engine threads at once — publication and stats must stay
        consistent, and answers exact for both."""
        other = gen.random_regular(20, 4, seed=11)

        async def main():
            async with MixingService(window=0.001, n_workers=2) as svc:
                r_a, r_b = await asyncio.gather(
                    svc.submit_many(queries(expander, range(expander.n))),
                    svc.submit_many(queries(other, range(other.n))),
                )
                return r_a, r_b, svc.stats()["executor"]

        r_a, r_b, ex = asyncio.run(main())
        assert r_a == batched_local_mixing_times(expander, BETA, EPS)
        assert r_b == batched_local_mixing_times(other, BETA, EPS)
        assert ex["published_graphs"] == 2
        assert sum(ex["per_worker_solves"].values()) == ex["tasks_dispatched"]

    def test_owned_pool_closed_and_segments_unlinked(self, expander):
        """aclose() tears down the owned pool; its shared segments cannot
        be re-attached afterwards (no leaked shared memory)."""

        async def main():
            svc = MixingService(window=0.0, n_workers=1)
            await svc.submit_many(queries(expander, range(4)))
            ex = svc._executor
            name = ex.publish(expander).shm_name
            await svc.aclose()
            return ex, name

        ex, name = asyncio.run(main())
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        with pytest.raises(RuntimeError):
            ex.publish(expander)

    def test_caller_supplied_executor_stays_open(self, expander):
        from repro.parallel import ShardExecutor

        with ShardExecutor(1) as ex:

            async def main():
                async with MixingService(window=0.0, executor=ex) as svc:
                    return await svc.submit_many(queries(expander, range(4)))

            res = asyncio.run(main())
            # Still usable after the service closed.
            assert ex.stats()["calls"] >= 1
            ex.publish(expander)
        assert res == batched_local_mixing_times(
            expander, BETA, EPS, sources=range(4)
        )

    def test_closed_service_refuses_submits(self, expander):
        async def main():
            svc = MixingService()
            await svc.aclose()
            await svc.aclose()  # idempotent
            with pytest.raises(RuntimeError):
                await svc.submit(MixingQuery(expander, 0, beta=BETA, eps=EPS))

        asyncio.run(main())

    def test_executor_and_workers_are_exclusive(self):
        with pytest.raises(ValueError):
            MixingService(executor=object(), n_workers=2)
        with pytest.raises(ValueError):
            MixingService(n_workers=0)


# --------------------------------------------------------------------- #
# Thread safety of the shared spectral cache (serving satellite)
# --------------------------------------------------------------------- #


class TestPropagatorCacheThreadSafety:
    def test_concurrent_threads_share_consistent_cache(self):
        """Hammer the shared spectral-propagator cache from many threads
        (the serving layer's execution model): no exceptions, a bounded
        cache, and per-graph results identical to the serial path."""
        from repro.engine import (
            clear_propagator_cache,
            propagator_cache_info,
            set_propagator_cache_maxsize,
        )

        graphs = [gen.random_regular(12, 4, seed=s) for s in range(6)]
        clear_propagator_cache()
        set_propagator_cache_maxsize(4)
        expected = {
            id(g): shared_spectral_propagator(g).propagate(
                np.eye(g.n)[:, :1], 3
            )
            for g in graphs
        }
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(25):
                    g = graphs[int(rng.integers(len(graphs)))]
                    p = shared_spectral_propagator(g).propagate(
                        np.eye(g.n)[:, :1], 3
                    )
                    assert np.array_equal(p, expected[id(g)])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = propagator_cache_info()
        assert info.currsize <= 4
        set_propagator_cache_maxsize(8)
        clear_propagator_cache()


class TestQueryCoalescerStandalone:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QueryCoalescer(lambda *a: [], window=-1)
        with pytest.raises(ValueError):
            QueryCoalescer(lambda *a: [], max_batch=0)
