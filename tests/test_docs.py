"""Satellite: the docs gate runs inside tier-1.

Wraps ``tools/check_docs.py`` so a broken intra-repo link, an undocumented
public API in ``repro.engine``/``repro.dynamic``, or a broken README
quickstart fails the ordinary test suite, not just the CI docs job.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import check_docs


def test_required_docs_exist():
    root = check_docs.ROOT
    for rel in ("README.md", "docs/architecture.md", "docs/paper_map.md"):
        assert (root / rel).is_file(), f"missing {rel}"


def test_intra_repo_links_resolve():
    assert check_docs.check_links() == []


def test_engine_and_dynamic_public_api_docstrings():
    assert check_docs.check_docstrings() == []


def test_readme_quickstart_runs():
    assert check_docs.check_quickstart() == []
