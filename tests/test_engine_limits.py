"""Tests for the lifted batched-engine limits (ISSUE 3 tentpole).

Three limits used to force the batched drivers back onto the per-source
loop: ``target="degree"``, ``require_source=True``, and the per-``R``
bracket prefilter in ``_solve_chunk``.  These tests pin the load-bearing
property of every lifted limit: **identical** outputs (LocalMixingResult
equality — time, set size, bitwise deviation, threshold, both counters) to
the per-source reference, on regular *and* irregular graphs, including
node-churned dynamic snapshots, plus the degree-target
:class:`~repro.dynamic.MixingTracker` against its from-scratch reference.
"""

import numpy as np
import pytest

from repro.dynamic import (
    DynamicGraph,
    MixingTracker,
    edge_markovian_churn,
    node_churn,
    track_local_mixing,
)
from repro.engine import (
    BatchedDegreeDeviationOracle,
    batched_local_mixing_profiles,
    batched_local_mixing_spectra,
    batched_local_mixing_times,
)
from repro.graphs import generators as gen
from repro.walks.distribution import distribution_trajectory
from repro.walks.local_mixing import (
    UniformDeviationOracle,
    _candidate_sizes,
    _degree_target_best,
    local_mixing_spectrum,
    local_mixing_time,
)

EPS = 0.4
T_MAX = 3000

# Irregular graphs are where the degree target differs from the uniform
# one: a star (maximal degree skew; bipartite, so lazy), a lollipop, and
# the β-barbell (bridge endpoints have degree d+1).
IRREGULAR = [
    (gen.star_graph(10), 2.0, True),
    (gen.lollipop(7, 5), 2.0, True),
    (gen.beta_barbell(3, 6), 3.0, False),
]


def _loop(g, beta, lazy, srcs=None, **kw):
    srcs = range(g.n) if srcs is None else srcs
    return [
        local_mixing_time(g, int(s), beta, EPS, lazy=lazy, t_max=T_MAX, **kw)
        for s in srcs
    ]


def _batch(g, beta, lazy, srcs=None, **kw):
    return batched_local_mixing_times(
        g, beta, EPS, sources=srcs, lazy=lazy, t_max=T_MAX, **kw
    )


class TestBatchedDegreeOracle:
    """The vectorized transcript must be bitwise equal to the scalar
    fixed-point heuristic, tie cases included."""

    def test_bitwise_matches_scalar_heuristic(self):
        rng = np.random.default_rng(3)
        for trial in range(12):
            n = int(rng.integers(6, 40))
            k = int(rng.integers(1, 7))
            d = rng.integers(1, 6, size=n).astype(np.float64)
            P = rng.dirichlet(np.ones(n), size=k).T
            if trial % 3 == 0:  # exact ties across rows and columns
                P[: n // 2] = P[0]
                P /= P.sum(axis=0)
            srcs = rng.integers(0, n, size=k)
            oracle = BatchedDegreeDeviationOracle(P, d, sources=srcs)
            for R in {1, 2, n // 2, n}:
                if R < 1:
                    continue
                for rs in (False, True):
                    got = oracle.best_sums(R, require_source=rs)
                    for j in range(k):
                        ref = _degree_target_best(
                            P[:, j], d, R, int(srcs[j]), rs
                        )
                        assert got[j] == ref

    def test_grid_rows_match_per_size(self):
        rng = np.random.default_rng(4)
        P = rng.dirichlet(np.ones(20), size=5).T
        d = rng.integers(1, 5, size=20).astype(np.float64)
        oracle = BatchedDegreeDeviationOracle(P, d)
        Rs = np.arange(1, 21)
        grid = oracle.best_sums_grid(Rs)
        for i, R in enumerate(Rs):
            assert np.array_equal(grid[i], oracle.best_sums(int(R)))

    def test_reduces_to_uniform_on_regular_graph(self):
        g = gen.random_regular(18, 4, seed=5)
        a = _batch(g, 3.0, False, target="degree")
        b = _batch(g, 3.0, False, target="uniform")
        assert [r.time for r in a] == [r.time for r in b]

    def test_validation(self):
        P = np.ones((6, 2)) / 6
        d = np.ones(6)
        with pytest.raises(ValueError, match="block"):
            BatchedDegreeDeviationOracle(np.ones(6), d)
        with pytest.raises(ValueError, match="length-n"):
            BatchedDegreeDeviationOracle(P, np.ones(5))
        with pytest.raises(ValueError, match="one source per column"):
            BatchedDegreeDeviationOracle(P, d, sources=[0])
        with pytest.raises(ValueError, match="out of range"):
            BatchedDegreeDeviationOracle(P, d, sources=[0, 9])
        oracle = BatchedDegreeDeviationOracle(P, d)
        with pytest.raises(ValueError, match="out of range"):
            oracle.best_sums(7)
        with pytest.raises(ValueError, match="without sources"):
            oracle.best_sums(2, require_source=True)
        with pytest.raises(ValueError, match="non-empty"):
            oracle.best_sums_grid(np.array([], dtype=np.int64))


class TestDegreeTargetEquivalence:
    """Satellite: batched vs engine="loop" on irregular graphs."""

    @pytest.mark.parametrize("g,beta,lazy", IRREGULAR, ids=lambda v: str(v))
    def test_identical_to_loop_all_sources(self, g, beta, lazy):
        assert _batch(g, beta, lazy, target="degree") == _loop(
            g, beta, lazy, target="degree"
        )

    def test_node_churned_snapshots_identical(self):
        # Node churn produces irregular intermediate topologies — exactly
        # the workload the degree target exists for.
        g = gen.random_regular(14, 4, seed=7)
        dyn = DynamicGraph(g)
        for upd in node_churn(g, 6, seed=9, attach=3):
            dyn.apply(upd)
            snap = dyn.snapshot()
            assert _batch(snap, 3.0, False, target="degree") == _loop(
                snap, 3.0, False, target="degree"
            )

    def test_degree_with_require_source(self):
        g = gen.lollipop(6, 4)
        got = _batch(g, 2.0, True, target="degree", require_source=True)
        assert got == _loop(
            g, 2.0, True, target="degree", require_source=True
        )

    def test_chunked_degree_equals_unchunked(self):
        g = gen.star_graph(12)
        full = _batch(g, 2.0, True, target="degree")
        chunked = batched_local_mixing_times(
            g, 2.0, EPS, lazy=True, t_max=T_MAX, target="degree", batch_size=5
        )
        assert full == chunked


class TestRequireSourceEquivalence:
    CASES = [
        (gen.random_regular(24, 4, seed=2), 3.0, False),
        (gen.beta_barbell(4, 8), 4.0, False),
        (gen.cycle_graph(15), 3.0, False),
        (gen.path_graph(12), 4.0, True),
    ]

    @pytest.mark.parametrize("g,beta,lazy", CASES, ids=lambda v: str(v))
    def test_identical_to_loop_all_sources(self, g, beta, lazy):
        assert _batch(g, beta, lazy, require_source=True) == _loop(
            g, beta, lazy, require_source=True
        )

    def test_algorithm2_knobs(self):
        g = gen.beta_barbell(3, 6)
        kw = dict(
            sizes="grid", threshold_factor=4.0, t_schedule="doubling",
            require_source=True,
        )
        assert _batch(g, 3.0, False, **kw) == _loop(g, 3.0, False, **kw)

    def test_spectra_require_source_identical(self):
        g = gen.beta_barbell(3, 6)
        spectra = batched_local_mixing_spectra(
            g, EPS, t_max=400, require_source=True
        )
        for s in range(g.n):
            assert spectra[s] == local_mixing_spectrum(
                g, s, EPS, t_max=400, require_source=True
            )

    def test_profiles_require_source_identical(self):
        g = gen.beta_barbell(3, 6)
        srcs = [0, 2, 17]
        out = batched_local_mixing_profiles(
            g, 3.0, sources=srcs, t_max=20, require_source=True
        )
        from repro.constants import DEFAULT_EPS

        cand = _candidate_sizes(g.n, 3.0, "all", DEFAULT_EPS)
        for j, s in enumerate(srcs):
            ref = np.empty(21)
            for t, p in distribution_trajectory(g, s, t_max=20):
                uo = UniformDeviationOracle(p, source=s)
                ref[t] = min(
                    uo.best_sum(R, require_source=True)[0] for R in cand
                )
            assert np.array_equal(out[j], ref)


class TestPrefilterEquivalence:
    """The fused lower-bound prefilter and the PR-2 per-size bracket must
    produce identical results (both verify hits exactly)."""

    CASES = [
        (gen.random_regular(24, 4, seed=6), 3.0, False, {}),
        (gen.beta_barbell(3, 6), 3.0, False, {}),
        (gen.cycle_graph(15), 3.0, False, {}),
        (gen.beta_barbell(3, 6), 3.0, False, {"require_source": True}),
    ]

    @pytest.mark.parametrize("g,beta,lazy,kw", CASES, ids=lambda v: str(v))
    def test_fused_equals_per_size(self, g, beta, lazy, kw):
        fused = _batch(g, beta, lazy, prefilter="fused", **kw)
        bracket = _batch(g, beta, lazy, prefilter="per_size", **kw)
        assert fused == bracket

    def test_validation(self):
        g = gen.cycle_graph(9)
        with pytest.raises(ValueError, match="prefilter"):
            batched_local_mixing_times(g, 2.0, prefilter="psychic")
        with pytest.raises(ValueError, match="target"):
            batched_local_mixing_times(g, 2.0, target="entropy")


class TestDegreeTracker:
    """Satellite: MixingTracker(target="degree") vs from-scratch."""

    def _assert_trace_matches(self, base, updates, beta, **kw):
        trace = track_local_mixing(
            base, updates, beta, EPS, t_max=T_MAX, **kw
        )
        dyn = DynamicGraph(base)
        snaps = iter(trace.snapshots)
        ref = batched_local_mixing_times(
            dyn.snapshot(), beta, EPS, t_max=T_MAX, **kw
        )
        assert list(next(snaps).results) == ref
        for upd in updates:
            dyn.apply(upd)
            ref = batched_local_mixing_times(
                dyn.snapshot(), beta, EPS, t_max=T_MAX, **kw
            )
            assert list(next(snaps).results) == ref, upd
        return trace

    def test_degree_churn_trace_matches_from_scratch(self):
        # Edge churn changes the degree vector, exercising the tracker's
        # full-re-solve guard for the degree target.
        g = gen.random_regular(16, 4, seed=21)
        updates = edge_markovian_churn(g, 8, seed=23)
        trace = self._assert_trace_matches(
            g, updates, 3.0, target="degree"
        )
        assert trace.stats["snapshots"] == 9

    def test_degree_tracker_memo_still_hits(self):
        # add/remove round trip: same structure — the structural memo is
        # target-safe (same graph → same degree vector → same results).
        from repro.dynamic.graph import GraphUpdate

        g = gen.lollipop(6, 4)
        ups = [GraphUpdate("add", 0, 8), GraphUpdate("remove", 0, 8)]
        trace = track_local_mixing(
            g, ups, 2.0, EPS, lazy=True, t_max=T_MAX, target="degree"
        )
        assert trace.stats["memo_hits"] >= 1
        assert list(trace.snapshots[2].results) == list(
            trace.snapshots[0].results
        )

    def test_require_source_tracker_matches_from_scratch(self):
        g = gen.random_regular(16, 4, seed=25)
        updates = edge_markovian_churn(g, 6, seed=27)
        self._assert_trace_matches(g, updates, 3.0, require_source=True)

    def test_tracker_target_validation(self):
        with pytest.raises(ValueError, match="target"):
            MixingTracker(2.0, target="entropy")
