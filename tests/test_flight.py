"""Flight recorder tests: the ring contracts, the service feed, and the
stable JSON export.

Three layers, matching the module split:

* :class:`repro.obs.flight.FlightRecorder` in isolation — exact record
  accounting through wraparound and a multi-thread hammer, the slow-ring
  admission/ordering rules, trace-id lookup across both rings, filters,
  and the ``capacity=0`` kill switch.
* The :class:`~repro.service.MixingService` feed — every completed query
  (successes *and* typed failures) leaves exactly one record with the
  right outcome / cache disposition, stage timings and batch facts
  appear when tracing is on, and **results are bitwise identical with
  the recorder on or off** (the purity half of the contract).
* :mod:`repro.obs.export` — the dict → JSON → dict round trip is bitwise
  over awkward floats, listing payloads are bounded server-side, and the
  trace payload embeds the span timeline.

No pytest-asyncio in the image — service tests drive their own event
loop via ``asyncio.run``.
"""

import asyncio
import json
import threading
from collections import namedtuple

import pytest

from repro.engine import batched_local_mixing_times
from repro.graphs import generators as gen
from repro.obs import (
    FlightRecorder,
    QueryRecord,
    flight_payload,
    graph_key,
    observability,
    record_to_dict,
    slow_payload,
    trace_payload,
)
from repro.obs.export import (
    DEFAULT_EXPORT_RECORDS,
    EXPORT_VERSION,
    MAX_EXPORT_RECORDS,
    knobs_to_dict,
)
from repro.service import (
    DeadlineExceededError,
    GraphRegistry,
    MixingQuery,
    MixingService,
)

BETA = 4.0
EPS = 0.25


def make_rec(i, *, duration=0.0, graph="g", backend=None, outcome="ok"):
    return QueryRecord(
        trace_id=f"q-{i}",
        graph=graph,
        source=i,
        outcome=outcome,
        duration=duration,
        backend=backend,
    )


@pytest.fixture(scope="module")
def expander():
    return gen.random_regular(24, 4, seed=7)


@pytest.fixture(scope="module")
def expander_direct(expander):
    return batched_local_mixing_times(expander, BETA, EPS)


def make_registry(graph):
    reg = GraphRegistry()
    reg.register("g", graph)
    return reg


def query(source, **overrides):
    kw = dict(beta=BETA, eps=EPS)
    kw.update(overrides)
    return MixingQuery("g", source, **kw)


# --------------------------------------------------------------------- #
# The ring in isolation
# --------------------------------------------------------------------- #


class TestRing:
    def test_wraparound_keeps_newest_and_counts_everything(self):
        fr = FlightRecorder(8)
        for i in range(20):
            fr.record(make_rec(i))
        got = fr.records()
        assert [r.source for r in got] == list(range(19, 11, -1))
        st = fr.stats()
        assert st["records"] == 20
        assert st["retained"] == 8
        assert st["capacity"] == 8

    def test_capacity_zero_disables_everything(self):
        fr = FlightRecorder(0)
        assert not fr.enabled
        fr.record(make_rec(0, duration=99.0, outcome="bad_request"))
        st = fr.stats()
        assert st["records"] == 0
        assert st["slow"] == 0
        assert st["errors"] == 0
        assert fr.records() == []
        assert fr.slow_records() == []
        assert fr.get("q-0") is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(-1)
        with pytest.raises(ValueError):
            FlightRecorder(4, slow_capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(4, slow_threshold=-0.1)

    def test_slow_ring_admission_ordering_and_bound(self):
        fr = FlightRecorder(64, slow_threshold=0.5, slow_capacity=3)
        fr.record(make_rec(0, duration=0.4))  # below threshold
        fr.record(make_rec(1, duration=0.5))  # edge: admitted (>=)
        fr.record(make_rec(2, duration=2.0))
        fr.record(make_rec(3, duration=1.0))
        fr.record(make_rec(4, duration=1.0))  # tie with 3: newer first
        # slow_capacity=3 evicted the oldest slow record (source 1).
        slow = fr.slow_records()
        assert [r.source for r in slow] == [2, 4, 3]
        st = fr.stats()
        assert st["slow"] == 4  # the counter saw all admissions
        assert st["slow_retained"] == 3
        assert [r.source for r in fr.slow_records(2)] == [2, 4]

    def test_filters_and_limits(self):
        fr = FlightRecorder(32)
        fr.record(make_rec(0, graph="a", backend="reference"))
        fr.record(make_rec(1, graph="b", backend="float32"))
        fr.record(make_rec(2, graph="a", backend="float32",
                           outcome="deadline_exceeded"))
        assert [r.source for r in fr.records(graph="a")] == [2, 0]
        assert [r.source for r in fr.records(backend="float32")] == [2, 1]
        assert [r.source for r in fr.records(outcome="ok")] == [1, 0]
        assert [r.source for r in fr.records(1, graph="a")] == [2]
        assert fr.stats()["errors"] == 1

    def test_get_covers_both_rings(self):
        fr = FlightRecorder(2, slow_threshold=0.5, slow_capacity=8)
        fr.record(make_rec(0, duration=1.0))
        fr.record(make_rec(1))
        fr.record(make_rec(2))  # source 0 rolls off the main ring...
        assert fr.get("q-1").source == 1
        assert fr.get("q-0").duration == 1.0  # ...but survives in slow
        assert fr.get("q-999") is None
        fr.clear()
        assert fr.records() == [] and fr.slow_records() == []
        assert fr.stats()["records"] == 3  # totals are monotonic

    def test_thread_hammer_exact_accounting(self):
        """8 threads × 200 appends racing reads: totals exact, retention
        at the bound, every retained record intact."""
        fr = FlightRecorder(64, slow_threshold=0.5)
        n_threads, per_thread = 8, 200
        start = threading.Barrier(n_threads)

        def writer(t):
            start.wait()
            for j in range(per_thread):
                # Every 4th record is slow — deterministic slow count.
                dur = 1.0 if j % 4 == 0 else 0.0
                fr.record(make_rec(t * per_thread + j, duration=dur))
                if j % 32 == 0:  # readers race the appends
                    fr.records(8)
                    fr.slow_records(8)
                    fr.stats()

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        st = fr.stats()
        assert st["records"] == n_threads * per_thread
        assert st["slow"] == n_threads * per_thread // 4
        assert st["retained"] == 64
        got = fr.records()
        assert len(got) == 64
        for rec in got:
            assert rec.trace_id == f"q-{rec.source}"

    def test_graph_key_is_structural_and_memoized(self, expander):
        key = graph_key(expander)
        assert key.startswith(f"{expander.n}n:")
        assert graph_key(expander) is key  # memoized on the object
        twin = gen.random_regular(24, 4, seed=7)
        assert graph_key(twin) == key  # equal structure, equal key
        other = gen.random_regular(24, 4, seed=8)
        assert graph_key(other) != key


# --------------------------------------------------------------------- #
# The service feed
# --------------------------------------------------------------------- #


class TestServiceFeed:
    def test_outcomes_and_cache_dispositions(self, expander, expander_direct):
        """miss → hit → inflight_dedup, plus typed failures: every
        completed query leaves exactly one record with the right outcome
        and disposition."""

        async def main():
            reg = make_registry(expander)
            async with MixingService(registry=reg, window=0.02) as svc:
                r0 = await svc.submit(query(0))        # miss
                r0b = await svc.submit(query(0))       # hit
                herd = await asyncio.gather(           # 1 miss + dedup
                    *(svc.submit(query(1)) for _ in range(4))
                )
                with pytest.raises(KeyError):
                    await svc.submit(
                        MixingQuery("nope", 0, beta=BETA, eps=EPS)
                    )
                with pytest.raises(DeadlineExceededError):
                    await svc.submit(query(2, deadline=-1.0))
                return r0, r0b, herd, svc.flight.records(), svc.stats()

        r0, r0b, herd, records, stats = asyncio.run(main())
        assert r0 == r0b == expander_direct[0]
        assert all(r == expander_direct[1] for r in herd)
        # One record per completed query, newest first.
        assert len(records) == 8
        by_outcome = {}
        for rec in records:
            by_outcome.setdefault(rec.outcome, []).append(rec)
        assert len(by_outcome["ok"]) == 6
        assert len(by_outcome["not_found"]) == 1
        assert len(by_outcome["deadline_exceeded"]) == 1
        dispositions = [r.cache for r in by_outcome["ok"]]
        assert dispositions.count("miss") == 2
        assert dispositions.count("hit") == 1
        assert dispositions.count("inflight_dedup") == 3
        gkey = graph_key(expander)
        for rec in by_outcome["ok"]:
            assert rec.graph == gkey
            assert rec.trace_id.startswith("q-")
            assert rec.knobs is not None
            assert rec.duration >= 0.0 and rec.unix_ts > 0.0
            if rec.cache == "miss":  # only a solve resolves a backend
                assert rec.backend is not None
        # The typed failures resolved their graph (or didn't) as far as
        # they got before raising.
        assert by_outcome["not_found"][0].graph is None
        assert stats["flight"]["records"] == 8
        assert stats["flight"]["errors"] == 2

    def test_stages_batch_and_span_under_tracing(
        self, expander, expander_direct
    ):
        async def main():
            reg = make_registry(expander)
            async with MixingService(registry=reg, window=0.02) as svc:
                with observability(True):
                    r = await svc.submit(query(3))
                return r, svc.flight.records(1)[0]

        r, rec = asyncio.run(main())
        assert r == expander_direct[3]
        assert rec.span is not None and rec.span.name == "query"
        assert "coalesced_batch" in rec.stages
        assert "engine_solve" in rec.stages
        assert rec.batch is not None and rec.batch["sources"] == 1
        assert all(v >= 0.0 for v in rec.stages.values())

    def test_tracing_off_records_are_lean(self, expander):
        async def main():
            reg = make_registry(expander)
            async with MixingService(registry=reg, window=0.0) as svc:
                await svc.submit(query(5))
                return svc.flight.records(1)[0]

        rec = asyncio.run(main())
        assert rec.span is None
        assert rec.stages == {} and rec.kernels == {}
        assert rec.batch is None
        assert rec.outcome == "ok" and rec.cache == "miss"

    @pytest.mark.parametrize("overrides", [{}, {"backend": "float32"}])
    def test_recorder_on_off_bitwise_identity(
        self, expander, expander_direct, overrides
    ):
        """flight_capacity=0 (recorder off) vs the default: the answers
        are bitwise identical — recording never touches the
        computation."""

        async def run(flight_capacity):
            reg = make_registry(expander)
            async with MixingService(
                registry=reg, window=0.0, cache_size=0,
                flight_capacity=flight_capacity,
            ) as svc:
                results = [
                    await svc.submit(query(s, **overrides))
                    for s in range(8)
                ]
                return results, svc.flight.stats()["records"]

        on, n_on = asyncio.run(run(1024))
        off, n_off = asyncio.run(run(0))
        assert on == off
        assert n_on == 8 and n_off == 0
        if not overrides:
            assert on == expander_direct[:8]


# --------------------------------------------------------------------- #
# Export schema
# --------------------------------------------------------------------- #


class TestExport:
    def test_record_dict_json_round_trip_is_bitwise(self):
        Knobs = namedtuple("Knobs", ["beta", "eps", "sizes"])
        rec = QueryRecord(
            trace_id="q-7",
            graph="24n:deadbeef",
            source=3,
            outcome="ok",
            duration=0.1 + 0.2,  # 0.30000000000000004: repr must survive
            knobs=Knobs(beta=4.0, eps=1e-17, sizes=(1, 2, 4)),
            backend="reference",
            cache="miss",
            batch={"sources": 2, "trigger": "window_flushes"},
            kernels={"reference/step": {"calls": 3, "seconds": 2**-29}},
            stages={"engine_solve": 5e-324},  # smallest subnormal
            priority=2,
            deadline=0.25,
            unix_ts=1.7e308,
        )
        d = record_to_dict(rec)
        back = json.loads(json.dumps(d))
        assert back == d  # == on floats is bitwise for non-NaN values
        assert back["duration"] == 0.30000000000000004
        assert back["knobs"] == {
            "beta": 4.0, "eps": 1e-17, "sizes": [1, 2, 4],
        }
        assert back["stages"]["engine_solve"] == 5e-324
        assert "spans" not in d  # bulk listings never embed the timeline

    def test_knobs_to_dict_passthrough_and_none(self):
        assert knobs_to_dict(None) is None
        assert knobs_to_dict({"beta": 4.0}) == {"beta": 4.0}

    def test_listing_payloads_are_bounded(self):
        fr = FlightRecorder(2 * MAX_EXPORT_RECORDS)
        for i in range(2 * MAX_EXPORT_RECORDS):
            fr.record(make_rec(i, duration=1.0))
        default = flight_payload(fr)
        assert default["v"] == EXPORT_VERSION and default["kind"] == "flight"
        assert len(default["records"]) == DEFAULT_EXPORT_RECORDS
        assert default["stats"]["records"] == 2 * MAX_EXPORT_RECORDS
        greedy = flight_payload(fr, limit=10 ** 9)
        assert len(greedy["records"]) == MAX_EXPORT_RECORDS
        assert len(flight_payload(fr, limit=-5)["records"]) == 0
        slow = slow_payload(fr, limit=10 ** 9)
        assert slow["kind"] == "slow"
        assert len(slow["records"]) == MAX_EXPORT_RECORDS
        json.dumps(default), json.dumps(slow)  # JSON-ready end to end

    def test_trace_payload_embeds_spans_or_none(self, expander):
        async def main():
            reg = make_registry(expander)
            async with MixingService(registry=reg, window=0.0) as svc:
                with observability(True):
                    await svc.submit(query(4))
                return svc.flight

        flight = asyncio.run(main())
        rec = flight.records(1)[0]
        payload = trace_payload(flight, rec.trace_id)
        assert payload["v"] == EXPORT_VERSION and payload["kind"] == "trace"
        spans = payload["record"]["spans"]
        assert spans["name"] == "query"
        assert any(
            child["name"] == "coalesced_batch" for child in spans["children"]
        )
        json.dumps(payload)
        assert trace_payload(flight, "q-unknown") is None
