"""Unit tests for conductance and weak conductance."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.spectral import (
    graph_conductance_exact,
    set_conductance,
    sweep_cut_conductance,
    weak_conductance_exact,
    weak_conductance_lower_bound,
    barbell_weak_conductance,
)
from repro.spectral.conductance import cut_edges


class TestCutEdges:
    def test_single_node(self):
        g = gen.cycle_graph(6)
        assert cut_edges(g, [0]) == 2

    def test_half_cycle(self):
        g = gen.cycle_graph(6)
        assert cut_edges(g, [0, 1, 2]) == 2

    def test_barbell_clique_cut(self):
        g = gen.beta_barbell(2, 5)
        assert cut_edges(g, range(5)) == 1  # the single bridge


class TestSetConductance:
    def test_known_values(self):
        g = gen.cycle_graph(8)
        # S = arc of 4 nodes: boundary 2, vol 8 -> phi = 1/4
        assert set_conductance(g, [0, 1, 2, 3]) == pytest.approx(0.25)

    def test_uses_smaller_side_volume(self):
        g = gen.star_graph(6)
        # S = leaves {1..5}: vol(S)=5, vol(rest)=5, boundary=5
        assert set_conductance(g, [1, 2, 3, 4, 5]) == pytest.approx(1.0)

    def test_barbell_bridge_cut_is_tiny(self):
        g = gen.beta_barbell(2, 8)
        phi = set_conductance(g, range(8))
        assert phi < 0.02

    def test_rejects_trivial_subsets(self):
        g = gen.cycle_graph(5)
        with pytest.raises(ValueError):
            set_conductance(g, [])
        with pytest.raises(ValueError):
            set_conductance(g, range(5))


class TestExactConductance:
    def test_complete_graph(self):
        # K_n balanced cut: phi = ceil(n/2)/ (n-1)
        g = gen.complete_graph(6)
        assert graph_conductance_exact(g) == pytest.approx(3 * 3 / (3 * 5))

    def test_cycle(self):
        # C_n: best cut = half arc, phi = 2/n
        g = gen.cycle_graph(10)
        assert graph_conductance_exact(g) == pytest.approx(2 / 10)

    def test_barbell_bottleneck(self):
        g = gen.beta_barbell(2, 6)
        phi = graph_conductance_exact(g)
        # Exactly the bridge cut: 1 / vol(one clique side)
        assert phi == pytest.approx(set_conductance(g, range(6)))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            graph_conductance_exact(gen.cycle_graph(30))


class TestSweepCut:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: gen.cycle_graph(10),
            lambda: gen.beta_barbell(2, 6),
            lambda: gen.complete_graph(8),
            lambda: gen.random_regular(14, 4, seed=5),
        ],
    )
    def test_upper_bounds_exact(self, maker):
        g = maker()
        phi_sweep, cut = sweep_cut_conductance(g)
        phi_true = graph_conductance_exact(g)
        assert phi_sweep >= phi_true - 1e-9
        # and the returned cut achieves the reported value
        assert set_conductance(g, cut) == pytest.approx(phi_sweep)

    def test_finds_barbell_bottleneck_exactly(self):
        g = gen.beta_barbell(2, 6)
        phi_sweep, cut = sweep_cut_conductance(g)
        assert phi_sweep == pytest.approx(graph_conductance_exact(g))
        assert sorted(cut.tolist()) in (list(range(6)), list(range(6, 12)))


class TestWeakConductance:
    def test_exact_small_barbell(self):
        # 2-barbell with cliques of 4 (n=8): phi_2 via home cliques >= 1/2
        g = gen.beta_barbell(2, 4)
        w = weak_conductance_exact(g, 2.0)
        assert w >= 0.5

    def test_weak_ge_strong(self):
        g = gen.beta_barbell(2, 5)
        w = weak_conductance_exact(g, 2.0)
        phi = graph_conductance_exact(g)
        assert w >= phi - 1e-12

    def test_c_one_equals_global_conductance(self):
        # c=1 forces S=V, so phi_1 = Phi(G)
        g = gen.cycle_graph(8)
        assert weak_conductance_exact(g, 1.0) == pytest.approx(
            graph_conductance_exact(g)
        )

    def test_monotone_in_c(self):
        g = gen.beta_barbell(2, 4)
        w2 = weak_conductance_exact(g, 2.0)
        w1 = weak_conductance_exact(g, 1.0)
        assert w2 >= w1 - 1e-12

    def test_size_guard(self):
        with pytest.raises(ValueError):
            weak_conductance_exact(gen.cycle_graph(20), 2.0)

    def test_lower_bound_from_clique_cover(self):
        g = gen.beta_barbell(3, 5)
        cover = [np.arange(5), np.arange(5, 10), np.arange(10, 15)]
        lb = weak_conductance_lower_bound(g, 3.0, cover)
        assert lb >= 0.5

    def test_lower_bound_default_cover(self):
        g = gen.beta_barbell(3, 5)
        lb = weak_conductance_lower_bound(g, 3.0)
        assert lb > 0

    def test_lower_bound_rejects_bad_cover(self):
        g = gen.beta_barbell(3, 5)
        with pytest.raises(ValueError):
            weak_conductance_lower_bound(g, 3.0, [np.arange(5)])  # not a cover
        with pytest.raises(ValueError):
            weak_conductance_lower_bound(g, 3.0, [np.arange(2)] * 8)  # too small

    def test_barbell_closed_form(self):
        # phi(K_k) balanced cut: ceil(k/2)/(k-1)
        assert barbell_weak_conductance(4, 4) == pytest.approx(2 / 3)
        assert barbell_weak_conductance(4, 8) == pytest.approx(4 / 7)
        assert barbell_weak_conductance(3, 5) == pytest.approx(0.75)
        # always at least 1/2
        for k in range(2, 20):
            assert barbell_weak_conductance(2, k) >= 0.5

    def test_closed_form_matches_exact_conductance_of_clique(self):
        for k in (4, 5, 6):
            got = barbell_weak_conductance(2, k)
            want = graph_conductance_exact(gen.complete_graph(k))
            assert got == pytest.approx(want)
