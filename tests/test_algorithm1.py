"""Algorithm 1 (ESTIMATE-RW-PROBABILITY): Lemma 2 error bound, CONGEST
compliance, incremental stepping, and layer agreement."""

import numpy as np
import pytest

from repro.algorithms import FloodingEstimator, estimate_rw_probability
from repro.congest import CongestNetwork, fixed_point_bits
from repro.errors import CongestViolationError
from repro.graphs import generators as gen
from repro.walks import distribution_at


GRAPHS = [
    ("barbell", lambda: gen.beta_barbell(3, 5)),
    ("cycle", lambda: gen.cycle_graph(9)),
    ("K8", lambda: gen.complete_graph(8)),
    ("rr16", lambda: gen.random_regular(16, 4, seed=2)),
]


@pytest.mark.parametrize("name,maker", GRAPHS, ids=[g[0] for g in GRAPHS])
class TestLemma2:
    """|p̃_t(u) − p_t(u)| < t · n^{-c} for every node and time."""

    @pytest.mark.parametrize("c", [4, 6])
    def test_error_bound(self, name, maker, c):
        g = maker()
        net = CongestNetwork(g)
        est = FloodingEstimator(net, 0, c=c)
        for t in range(1, 12):
            p_tilde = est.step(1)
            p = distribution_at(g, 0, t)
            err = float(np.abs(p_tilde - p).max())
            assert err <= t * float(g.n) ** (-c) + 1e-15

    def test_values_on_grid(self, name, maker):
        g = maker()
        net = CongestNetwork(g)
        p_tilde = estimate_rw_probability(net, 0, 6, c=4)
        grid = float(g.n) ** 4
        np.testing.assert_allclose(p_tilde * grid, np.rint(p_tilde * grid),
                                   atol=1e-6)


class TestCosts:
    def test_one_round_per_step(self):
        g = gen.cycle_graph(9)
        net = CongestNetwork(g)
        estimate_rw_probability(net, 0, 5)
        assert net.ledger.rounds == 5
        assert net.ledger.phase_rounds("flooding") == 5

    def test_message_bits_are_fixed_point(self):
        g = gen.cycle_graph(9)
        net = CongestNetwork(g)
        estimate_rw_probability(net, 0, 1)
        # round 1: only the source sends, to its 2 neighbors
        assert net.ledger.messages == 2
        assert net.ledger.bits == 2 * fixed_point_bits(9, 6)

    def test_only_nonzero_nodes_send(self):
        g = gen.path_graph(9)
        # simple walk on path is bipartite but Algorithm 1 itself is
        # walk-agnostic; message counting is what we check here
        net = CongestNetwork(g)
        est = FloodingEstimator(net, 0)
        est.step(1)
        r1 = net.ledger.messages
        est.step(1)
        r2 = net.ledger.messages - r1
        assert r1 == 1   # source (degree 1) sends 1 message
        assert r2 == 2   # node 1 (degree 2) has the mass now

    def test_c_too_large_violates_congest(self):
        g = gen.cycle_graph(9)
        net = CongestNetwork(g, bandwidth_factor=4)
        with pytest.raises(CongestViolationError):
            FloodingEstimator(net, 0, c=6)

    def test_c_validation(self):
        net = CongestNetwork(gen.cycle_graph(9))
        with pytest.raises(ValueError):
            FloodingEstimator(net, 0, c=0)
        with pytest.raises(ValueError):
            FloodingEstimator(net, 9)


class TestIncremental:
    def test_step_equals_one_shot(self):
        g = gen.beta_barbell(3, 5)
        net = CongestNetwork(g)
        est = FloodingEstimator(net, 0)
        for t in (1, 2, 5, 9):
            est.run(t)
            fresh = estimate_rw_probability(CongestNetwork(g), 0, t)
            np.testing.assert_array_equal(est.w, fresh)

    def test_rewind_rejected(self):
        net = CongestNetwork(gen.cycle_graph(9))
        est = FloodingEstimator(net, 0)
        est.run(5)
        with pytest.raises(ValueError):
            est.run(3)

    def test_w_property_is_copy(self):
        net = CongestNetwork(gen.cycle_graph(9))
        est = FloodingEstimator(net, 0)
        w = est.w
        w[:] = 99
        assert est.w[0] == 1.0

    def test_t_zero_is_one_hot(self):
        net = CongestNetwork(gen.cycle_graph(9))
        est = FloodingEstimator(net, 4)
        assert est.t == 0
        np.testing.assert_array_equal(
            est.w, np.eye(9)[4]
        )


@pytest.mark.parametrize("name,maker", GRAPHS, ids=[g[0] for g in GRAPHS])
class TestLayerAgreement:
    @pytest.mark.parametrize("ell", [0, 1, 4, 9])
    def test_bitwise_equal(self, name, maker, ell):
        g = maker()
        fast = CongestNetwork(g, mode="fast")
        slow = CongestNetwork(g, mode="faithful")
        pf = estimate_rw_probability(fast, 0, ell)
        ps = estimate_rw_probability(slow, 0, ell)
        np.testing.assert_array_equal(pf, ps)
        assert fast.ledger.rounds == slow.ledger.rounds
        assert fast.ledger.messages == slow.ledger.messages
        assert fast.ledger.bits == slow.ledger.bits

    def test_incremental_faithful(self, name, maker):
        g = maker()
        slow = CongestNetwork(g, mode="faithful")
        est = FloodingEstimator(slow, 0)
        est.step(3)
        fresh = estimate_rw_probability(CongestNetwork(g), 0, 3)
        np.testing.assert_array_equal(est.w, fresh)
