"""The observability layer: metrics registry, tracing, kernel profiling.

Two contracts dominate:

1. **Purity** — observability never changes results.  Every
   result-producing path (times / profiles / spectra drivers, every
   backend, serial and sharded) is bitwise identical with the switch
   enabled and disabled, and the instrumentation wrappers delegate
   kernel calls untouched.
2. **Fidelity** — what the registry reports is exactly what happened:
   counters survive a multi-thread hammer with exact totals, histogram
   buckets follow Prometheus ``le`` (inclusive) semantics, spans nest in
   call order, and worker-process spans/kernel profiles aggregate into
   the parent trace at every worker count under both start methods.
"""

from __future__ import annotations

import asyncio
import re
import threading

import numpy as np
import pytest

from repro.engine import (
    batched_local_mixing_profiles,
    batched_local_mixing_spectra,
    batched_local_mixing_times,
)
from repro.engine.backends import available_backends, get_backend
from repro.graphs import random_regular
from repro.obs import (
    BenchReporter,
    CounterDict,
    MetricsRegistry,
    ProfiledBackend,
    Span,
    attach_or_record,
    clear_traces,
    current_span,
    default_registry,
    diff_kernel_snapshots,
    kernel_profiler,
    maybe_profile,
    observability,
    observability_enabled,
    recent_traces,
    set_observability,
    start_span,
    trace,
    use_span,
)
from repro.parallel import ShardExecutor, parallel_local_mixing_times
from repro.service import MixingQuery, MixingService

BETA = 4.0


@pytest.fixture(autouse=True)
def _obs_reset():
    """Every test starts disabled with an empty trace sink, and leaves
    the global switch the way it found it."""
    prev = set_observability(False)
    clear_traces()
    yield
    set_observability(prev)
    clear_traces()


@pytest.fixture(scope="module")
def small_graph():
    return random_regular(40, 4, seed=3)


# --------------------------------------------------------------------- #
# Metrics primitives
# --------------------------------------------------------------------- #


def test_counter_monotone():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_events_total", "Test events.")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    # Idempotent get-or-create returns the same object.
    assert reg.counter("repro_test_events_total") is c


def test_gauge_set_inc_and_high_water():
    reg = MetricsRegistry()
    g = reg.gauge("repro_test_depth", "Test depth.")
    g.set(3.0)
    g.inc(-1.5)
    assert g.value == 1.5
    g.set_max(7)
    g.set_max(2)  # lower values never win
    assert g.value == 7


def test_histogram_bucket_boundaries_are_le_inclusive():
    reg = MetricsRegistry()
    h = reg.histogram(
        "repro_test_seconds", "Test latency.", buckets=(1.0, 2.0)
    )
    h.observe(1.0)  # exactly on the edge: counts into le=1.0
    h.observe(1.5)
    h.observe(9.0)  # beyond the last bucket: +Inf only
    assert h.count == 3
    assert h.sum == pytest.approx(11.5)
    # Cumulative per-bucket counts, trailing +Inf included.
    assert h.cumulative_counts() == [1, 2, 3]
    snap = reg.snapshot()["repro_test_seconds"]["series"][0]
    assert snap["buckets"] == {"1.0": 1, "2.0": 2, "+Inf": 3}
    with pytest.raises(ValueError):
        reg.histogram(
            "repro_test_bad", "Not increasing.", buckets=(2.0, 1.0)
        )


def test_histogram_exemplars_last_wins_snapshot_only():
    reg = MetricsRegistry()
    h = reg.histogram(
        "repro_test_tagged_seconds", "Ex.", buckets=(1.0, 2.0)
    )
    h.observe(0.5)  # exemplar-less observations are untagged
    h.observe(0.7, exemplar="q-1")
    h.observe(0.9, exemplar="q-2")  # same bucket: last observation wins
    h.observe(1.5, exemplar="q-3")
    h.observe(9.0, exemplar="q-4")  # overflow bucket
    assert h.exemplars() == {"1.0": "q-2", "2.0": "q-3", "+Inf": "q-4"}
    assert h.count == 5  # tagging never perturbs the counts
    snap = reg.snapshot()["repro_test_tagged_seconds"]["series"][0]
    assert snap["exemplars"] == {"1.0": "q-2", "2.0": "q-3", "+Inf": "q-4"}
    # Exemplars live in the JSON view only: the Prometheus text render
    # carries no trace ids and still parses clean.
    text = reg.render()
    assert "q-2" not in text and 'le="1.0"} 3' in text
    _assert_prometheus_parseable(text)
    # A histogram that never saw an exemplar omits the key entirely.
    h2 = reg.histogram("repro_test_noex_seconds", "Plain.", buckets=(1.0,))
    h2.observe(0.5)
    assert "exemplars" not in reg.snapshot()[
        "repro_test_noex_seconds"
    ]["series"][0]
    assert h2.exemplars() == {}


def test_registry_rejects_kind_and_label_mismatch():
    reg = MetricsRegistry()
    reg.counter("repro_test_things_total", "Things.")
    with pytest.raises(ValueError):
        reg.gauge("repro_test_things_total")
    reg.counter("repro_test_labeled_total", "Labeled.", labels=("kind",))
    with pytest.raises(ValueError):
        reg.counter("repro_test_labeled_total", labels=("other",))
    with pytest.raises(ValueError):
        reg.counter("0bad name")


def test_labeled_children_and_series():
    reg = MetricsRegistry()
    fam = reg.counter(
        "repro_test_calls_total", "Calls.", labels=("backend", "kernel")
    )
    fam.labels(backend="f32", kernel="step").inc(2)
    fam.labels(backend="ref", kernel="step").inc()
    # Same label values → same child.
    assert fam.labels(backend="f32", kernel="step").value == 2
    with pytest.raises(ValueError):
        fam.labels(backend="f32")  # incomplete label set
    series = fam.series()
    assert [lv for lv, _ in series] == [("f32", "step"), ("ref", "step")]
    text = reg.render()
    assert 'repro_test_calls_total{backend="f32",kernel="step"} 2' in text


def test_counterdict_is_a_counter_view():
    reg = MetricsRegistry()
    stats = CounterDict(reg, "repro_test_", keys=("hits", "misses"))
    stats["hits"] += 3
    stats["misses"] = 2
    assert stats["hits"] == 3
    assert dict(stats) == {"hits": 3, "misses": 2}
    assert stats.get("absent", 0) == 0
    # The view is backed by real registry counters.
    assert reg.counter("repro_test_hits_total").value == 3


def test_include_composes_and_dedups():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("repro_test_a_total", "A.").inc()
    b.counter("repro_test_b_total", "B.").inc(2)
    a.include(b)
    a.include(b)  # idempotent
    b.include(a)  # cycles are safe
    text = a.render()
    assert "repro_test_a_total 1" in text
    assert "repro_test_b_total 2" in text
    assert text.count("# HELP repro_test_b_total") == 1
    snap = a.snapshot()
    assert set(snap) >= {"repro_test_a_total", "repro_test_b_total"}
    with pytest.raises(TypeError):
        a.include({})


def test_registry_thread_hammer_exact_totals():
    reg = MetricsRegistry()
    plain = reg.counter("repro_test_hammer_total", "Hammered.")
    fam = reg.counter(
        "repro_test_hammer_labeled_total", "Hammered children.",
        labels=("worker",),
    )
    n_threads, per_thread = 8, 5000

    def pound(i):
        child = fam.labels(worker=str(i % 2))
        for _ in range(per_thread):
            plain.inc()
            child.inc()

    threads = [
        threading.Thread(target=pound, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert plain.value == n_threads * per_thread
    assert sum(v.value for _, v in fam.series()) == n_threads * per_thread


_PROM_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    rf"(\{{{_PROM_LABEL}(,{_PROM_LABEL})*\}})?"  # optional label set
    r" [0-9eE.+-]+(inf)?$"  # value
)


def _assert_prometheus_parseable(text: str) -> None:
    """Every non-comment line must be a well-formed sample line."""
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_LINE.match(line), f"unparseable sample line: {line!r}"


def test_render_is_parseable_prometheus_text():
    reg = MetricsRegistry()
    reg.counter("repro_test_c_total", "C.").inc()
    reg.gauge("repro_test_g", "G.").set(1.25)
    h = reg.histogram("repro_test_h_seconds", "H.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(2.0)
    fam = reg.counter("repro_test_l_total", "L.", labels=("k",))
    fam.labels(k='quo"te\\n').inc()
    text = reg.render()
    _assert_prometheus_parseable(text)
    assert '_bucket{le="+Inf"} 2' in text
    assert "repro_test_h_seconds_count 2" in text


# --------------------------------------------------------------------- #
# The switch
# --------------------------------------------------------------------- #


def test_observability_switch_and_context():
    assert not observability_enabled()
    prev = set_observability(True)
    assert prev is False and observability_enabled()
    with observability(False):
        assert not observability_enabled()
        with observability(True):
            assert observability_enabled()
        assert not observability_enabled()
    assert observability_enabled()
    set_observability(prev)


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #


def test_trace_disabled_is_free_and_yields_none():
    with trace("query") as span:
        assert span is None
    assert start_span("anything") is None
    assert current_span() is None
    assert recent_traces() == []


def test_span_nesting_and_ordering():
    with observability(True):
        with trace("root", source=7) as root:
            with trace("first"):
                with trace("inner"):
                    pass
            with trace("second"):
                pass
    assert root.meta["source"] == 7
    assert [c.name for c in root.children] == ["first", "second"]
    assert [c.name for c in root.children[0].children] == ["inner"]
    assert root.duration is not None and root.duration >= 0
    roots = recent_traces()
    assert roots[-1] is root  # only the root lands in the sink
    assert all(s.name == "root" for s in roots)
    clear_traces()
    assert recent_traces() == []


def test_detached_span_adoption():
    with observability(True):
        shared = start_span("coalesced_batch", detached=True, sources=3)
        shared.finish()
        with trace("query_a") as qa:
            attach_or_record(shared)
        with trace("query_b") as qb:
            attach_or_record(shared)
        attach_or_record(None)  # no-op
    # Both queries adopted the same span object; it never became a root.
    assert qa.children == [shared] and qb.children == [shared]
    assert shared not in recent_traces()


def test_span_dict_roundtrip():
    with observability(True):
        with trace("parent", pid=123) as span:
            with trace("child", kind="times"):
                pass
    clone = Span.from_dict(span.to_dict())
    assert clone.name == "parent" and clone.meta == {"pid": 123}
    assert clone.duration == span.duration
    assert clone.find("child").meta == {"kind": "times"}
    assert clone.to_dict() == span.to_dict()


def test_use_span_reparents_across_threads_via_to_thread():
    async def main():
        with observability(True):
            shared = start_span("batch", detached=True)
            with use_span(shared):
                await asyncio.to_thread(probe)
            shared.finish()
        return shared

    def probe():
        with trace("work"):
            pass

    shared = asyncio.run(main())
    assert [c.name for c in shared.children] == ["work"]


# --------------------------------------------------------------------- #
# Kernel profiling
# --------------------------------------------------------------------- #


def test_maybe_profile_is_identity_when_disabled():
    be = get_backend("reference")
    assert maybe_profile(be) is be
    with observability(True):
        prof = maybe_profile(be)
        assert isinstance(prof, ProfiledBackend)
        assert prof.wrapped is be and prof.name == be.name
        # Already-profiled backends are not wrapped twice.
        assert maybe_profile(prof) is prof


def test_profiler_records_engine_kernel_calls(small_graph):
    profiler = kernel_profiler()
    before = profiler.snapshot()
    with observability(True):
        batched_local_mixing_times(small_graph, BETA, sources=range(8))
    delta = diff_kernel_snapshots(before, kernel_profiler().snapshot())
    kernels = {k.split("/")[1] for k in delta["kernels"]}
    assert "step_block" in kernels
    assert "deviation_lower_bounds" in kernels
    for entry in delta["kernels"].values():
        assert entry["calls"] > 0 and entry["seconds"] >= 0


def test_float32_screening_rate_is_recorded(small_graph):
    profiler = kernel_profiler()
    before = profiler.snapshot()
    with observability(True):
        batched_local_mixing_times(
            small_graph, BETA, sources=range(8), backend="float32"
        )
    delta = diff_kernel_snapshots(before, kernel_profiler().snapshot())
    screen = delta["screen"]["float32"]
    assert screen["pairs"] > 0
    assert 0 <= screen["flagged"] <= screen["pairs"]


# --------------------------------------------------------------------- #
# Purity: identical results with observability on and off
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", sorted(available_backends()))
@pytest.mark.parametrize("kind", ["times", "profiles", "spectra"])
def test_results_identical_enabled_vs_disabled(small_graph, kind, backend):
    g = small_graph

    def solve():
        if kind == "times":
            return batched_local_mixing_times(g, BETA, backend=backend)
        if kind == "profiles":
            return batched_local_mixing_profiles(
                g, BETA, t_max=40, backend=backend
            )
        return batched_local_mixing_spectra(g, t_max=40, backend=backend)

    with observability(False):
        base = solve()
    with observability(True):
        instrumented = solve()
    if kind == "profiles":  # profiles are a dense ndarray
        assert np.array_equal(instrumented, base)
    else:
        assert instrumented == base


# --------------------------------------------------------------------- #
# Cross-process span aggregation
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
@pytest.mark.parametrize("w", [1, 2, 4])
def test_worker_spans_aggregate_into_parent_trace(w, start_method):
    g = random_regular(30, 4, seed=5)
    serial = batched_local_mixing_times(g, BETA)
    profiler = kernel_profiler()
    with ShardExecutor(w, start_method=start_method) as ex:
        before = profiler.snapshot()
        with observability(True):
            with trace("parent") as parent:
                par = parallel_local_mixing_times(g, BETA, executor=ex)
    assert par == serial
    shard_spans = [c for c in parent.children if c.name == "shard_solve"]
    assert len(shard_spans) == w
    assert sum(s.meta["sources"] for s in shard_spans) == g.n
    for s in shard_spans:
        assert s.meta["kind"] == "times" and s.meta["pid"] > 0
        assert s.duration is not None
        # The worker's own engine span ships back nested in place.
        assert s.find("engine_solve") is not None
    # Worker kernel profiles merged into the parent's profiler.
    delta = diff_kernel_snapshots(before, profiler.snapshot())
    assert any(
        k.endswith("/step_block") for k in delta["kernels"]
    ), delta


def test_sharded_results_identical_when_disabled():
    """The collect flag is off with observability off, and the executor
    still returns serial-identical results through the 3-tuple channel."""
    g = random_regular(30, 4, seed=5)
    serial = batched_local_mixing_times(g, BETA)
    with ShardExecutor(2) as ex:
        par = parallel_local_mixing_times(g, BETA, executor=ex)
    assert par == serial
    assert recent_traces() == []


# --------------------------------------------------------------------- #
# Service-level composition
# --------------------------------------------------------------------- #


def test_service_metrics_render_covers_every_tier():
    g = random_regular(30, 4, seed=5)
    direct = batched_local_mixing_times(g, BETA)

    async def main():
        async with MixingService(window=0.005, n_workers=2) as svc:
            first = await svc.submit_many(
                [MixingQuery(g, s, beta=BETA) for s in range(6)]
            )
            again = await svc.submit(MixingQuery(g, 0, beta=BETA))
            return first, again, svc.metrics.render(), svc.stats()

    with observability(True):
        results, again, rendered, stats = asyncio.run(main())
    assert results == [direct[s] for s in range(6)]
    assert again == direct[0]
    _assert_prometheus_parseable(rendered)
    for name in (
        "repro_cache_hits_total",
        "repro_cache_misses_total",
        "repro_coalescer_batches_total",
        "repro_registry_resolves_total",
        "repro_executor_tasks_dispatched_total",
        "repro_kernel_calls_total",
        "repro_engine_solve_seconds",
    ):
        assert name in rendered, f"missing {name} in render()"
    assert stats["cache"]["hits"] == 1
    # Every query produced a root trace with its pipeline children.
    queries = [s for s in recent_traces() if s.name == "query"]
    assert len(queries) == 7
    solved = [q for q in queries if q.meta.get("outcome") == "solved"]
    assert solved and all(
        q.find("coalesced_batch") is not None for q in solved
    )
    assert all(q.find("cache_lookup") is not None for q in queries[:6])


def test_bench_reporter_sections_always_record():
    rep = BenchReporter("unit")
    with rep.section("outer"):
        with rep.section("inner"):
            pass
    assert set(rep.timings) == {"outer", "inner"}
    assert rep.seconds("outer") >= rep.seconds("inner") >= 0
    snap = rep.snapshot()
    assert snap["bench"] == "unit"
    assert set(snap["sections"]) == {"outer", "inner"}
    assert "repro_bench_section_seconds" in snap["metrics"]
    with pytest.raises(KeyError):
        rep.seconds("never_ran")
